//! Execution backends: who actually runs the matmul/bmm/conv and fused
//! map-reduce kernels.
//!
//! The [`Backend`] trait owns kernel execution, in the style of
//! autograph's `Device`-parameterized tensors and dfdx's split between
//! op definition and op registration: [`Tensor`](crate::Tensor) methods
//! validate shapes and allocate outputs, then dispatch the inner loops
//! to the backend both operands resolve to.
//!
//! Two backends exist:
//!
//! - [`BackendKind::Reference`] is the original scalar code of this
//!   crate, extracted verbatim. It is the semantic baseline: every
//!   convergence result in the workspace is defined by this backend,
//!   and it must never change numerically.
//! - [`BackendKind::Blocked`] adds register-tiled and cache-blocked
//!   GEMM kernels, fused transposed-GEMM variants (so backward passes
//!   skip materializing `Aᵀ`/`Bᵀ` copies), buffer-reusing convolution,
//!   and a multithreaded outer loop on the shared scoped worker pool
//!   (`mlperf-pool`, the same pool the submission ingest uses).
//!
//! # Numerical contract
//!
//! `Blocked` preserves the *per-output-element summation order* of
//! `Reference` in every kernel: each output element accumulates its
//! `k` products in ascending-`k` order into an accumulator that starts
//! at `+0.0`, exactly like the reference `ikj` loop. Tiling changes
//! which elements are computed near each other in time, never the
//! order of additions within one element, so for finite inputs the two
//! backends are **bit-identical**. The only divergence is non-finite
//! propagation: the reference GEMM skips `a` values that equal zero
//! (so `0 × ∞` never happens), while the blocked kernels multiply
//! through (yielding `NaN`); this is unobservable for finite data.
//!
//! # Selection
//!
//! Every tensor carries a [`BackendKind`] tag. Freshly constructed
//! tensors take the process-global default (see
//! [`set_default_backend`]); binary operations resolve to
//! [`BackendKind::join`] of their operands, so a model whose weights
//! were initialized on `Blocked` pulls the whole training step onto
//! `Blocked` without any per-callsite changes — activations, gradients
//! and optimizer state inherit the tag through the ops that produce
//! them.

use crate::conv::{col2im_one, im2col_into, im2col_one, nchw, Conv2dSpec};
use crate::tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Which execution backend a tensor's kernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum BackendKind {
    /// The original scalar kernels, verbatim — the numerical baseline.
    Reference = 0,
    /// Register-tiled, cache-blocked, pool-parallel kernels that are
    /// bit-identical to [`BackendKind::Reference`] on finite inputs.
    Blocked = 1,
}

impl BackendKind {
    /// Every backend, for parity sweeps.
    pub const ALL: [BackendKind; 2] = [BackendKind::Reference, BackendKind::Blocked];

    /// The implementation behind this kind.
    pub fn imp(self) -> &'static dyn Backend {
        match self {
            BackendKind::Reference => &Reference,
            BackendKind::Blocked => &Blocked,
        }
    }

    /// Stable lower-case label (`"reference"` / `"blocked"`), also
    /// accepted by [`BackendKind::parse`] — the CLI `--backend` flag
    /// round-trips through these.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Blocked => "blocked",
        }
    }

    /// Parses a [`BackendKind::label`]; `None` for anything else.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "reference" => Some(BackendKind::Reference),
            "blocked" => Some(BackendKind::Blocked),
            _ => None,
        }
    }

    /// Backend a binary op resolves to: `Blocked` wins, so a single
    /// `Blocked` operand (typically the model weights) is infectious.
    pub fn join(self, other: BackendKind) -> BackendKind {
        if self == BackendKind::Blocked || other == BackendKind::Blocked {
            BackendKind::Blocked
        } else {
            BackendKind::Reference
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Process-global default backend for freshly constructed tensors.
/// Global (not thread-local) because the harness fans seeds out across
/// OS threads and all of them must honor one selection.
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(BackendKind::Reference as u8);

/// Sets the backend newly constructed tensors (and [`crate::TensorRng`]
/// streams) default to. The CLI `--backend` flag calls this once at
/// startup; tests that need a specific backend on one tensor should
/// prefer [`Tensor::on`], which cannot race with other tests in the
/// same process.
pub fn set_default_backend(kind: BackendKind) {
    DEFAULT_BACKEND.store(kind as u8, Ordering::Relaxed);
}

/// The current process-global default backend.
pub fn default_backend() -> BackendKind {
    if DEFAULT_BACKEND.load(Ordering::Relaxed) == BackendKind::Blocked as u8 {
        BackendKind::Blocked
    } else {
        BackendKind::Reference
    }
}

/// Kernel executor: the inner loops of matrix multiplication,
/// convolution, and the fused row-wise map-reduce ops.
///
/// All GEMM-family methods assume `out` is zero-filled (callers
/// allocate with `vec![0.0; ..]`) and may either accumulate into it or
/// overwrite it — the two are indistinguishable under that contract.
pub trait Backend: Sync {
    /// The backend's [`BackendKind::label`].
    fn name(&self) -> &'static str;

    /// `out += a[m,k] · b[k,n]`, `out` pre-zeroed.
    fn gemm(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out = a[m,k] · b[n,k]ᵀ` (`b` row-major `[n, k]`), `out`
    /// pre-zeroed. The backward-pass form `grad · Bᵀ` without the
    /// transpose copy.
    fn gemm_abt(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out = a[k,m]ᵀ · b[k,n]` (`a` row-major `[k, m]`), `out`
    /// pre-zeroed. The backward-pass form `Aᵀ · grad` without the
    /// transpose copy.
    fn gemm_atb(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Batched [`Backend::gemm`] over `batch` independent problems.
    #[allow(clippy::too_many_arguments)]
    fn bmm(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    );

    /// Batched [`Backend::gemm_abt`].
    #[allow(clippy::too_many_arguments)]
    fn bmm_abt(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    );

    /// Batched [`Backend::gemm_atb`].
    #[allow(clippy::too_many_arguments)]
    fn bmm_atb(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    );

    /// Fused `out = a[m,k] · b[k,n] + bias[n]` (bias broadcast over
    /// rows), `out` pre-zeroed. One pass and zero intermediate
    /// allocations where `matmul` + broadcast-add needed two.
    #[allow(clippy::too_many_arguments)]
    fn gemm_bias(
        &self,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Full conv2d forward (`input` NCHW, `weight` `[oc, c, k, k]`).
    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor;

    /// Full conv2d backward: `(grad_input, grad_weight, grad_bias)`.
    fn conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: Conv2dSpec,
    ) -> (Tensor, Tensor, Tensor);

    /// Row-wise fused softmax: `rows` rows of `inner` elements.
    fn softmax_rows(&self, src: &[f32], out: &mut [f32], rows: usize, inner: usize);

    /// Row-wise fused log-softmax.
    fn log_softmax_rows(&self, src: &[f32], out: &mut [f32], rows: usize, inner: usize);

    /// Axis sum: `src` viewed as `[outer, extent, inner]`, reduced over
    /// `extent` into `out` of `outer * inner` zeros.
    fn sum_axis(&self, src: &[f32], out: &mut [f32], outer: usize, extent: usize, inner: usize);
}

// ---------------------------------------------------------------------
// Reference backend: the original scalar kernels, verbatim.
// ---------------------------------------------------------------------

/// The original scalar kernels of this crate, extracted verbatim.
pub struct Reference;

/// The reference accumulating GEMM kernel, exactly as it was before
/// backends existed: i-k-j loop order with a zero-skip on `a`.
pub(crate) fn reference_gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            let orow = &mut out[i * n..i * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// The reference 2-D transpose loop (as in `Tensor::transpose`),
/// operating on raw buffers so the reference transposed-GEMM variants
/// compose it with [`reference_gemm`] exactly like the pre-backend
/// call sites did.
fn reference_transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = src[i * cols + j];
        }
    }
    out
}

impl Backend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn gemm(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        reference_gemm(a, b, out, m, k, n);
    }

    fn gemm_abt(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        // Verbatim composition of the pre-backend call sites:
        // `a.matmul(&b.transpose())`.
        let bt = reference_transpose(b, n, k); // [n,k] -> [k,n]
        reference_gemm(a, &bt, out, m, k, n);
    }

    fn gemm_atb(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        // Verbatim composition of `a.transpose().matmul(b)`.
        let at = reference_transpose(a, k, m); // [k,m] -> [m,k]
        reference_gemm(&at, b, out, m, k, n);
    }

    fn bmm(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        for bi in 0..batch {
            reference_gemm(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * k * n..(bi + 1) * k * n],
                &mut out[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    fn bmm_abt(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        for bi in 0..batch {
            self.gemm_abt(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * n * k..(bi + 1) * n * k],
                &mut out[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    fn bmm_atb(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        for bi in 0..batch {
            self.gemm_atb(
                &a[bi * k * m..(bi + 1) * k * m],
                &b[bi * k * n..(bi + 1) * k * n],
                &mut out[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    fn gemm_bias(
        &self,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        reference_gemm(a, b, out, m, k, n);
        for i in 0..m {
            for (o, &bv) in out[i * n..i * n + n].iter_mut().zip(bias.iter()) {
                *o += bv;
            }
        }
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor {
        let (n, c, h, w) = nchw(input);
        let ws = weight.shape();
        assert_eq!(ws.len(), 4, "conv2d weight must be 4-D, got {:?}", ws);
        let (oc, wc, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        assert_eq!(wc, c, "conv2d channel mismatch: input {c}, weight {wc}");
        assert_eq!(kh, spec.kernel, "weight kernel height disagrees with spec");
        assert_eq!(kw, spec.kernel, "weight kernel width disagrees with spec");
        let oh = spec.out_extent(h);
        let ow = spec.out_extent(w);
        let wmat = weight.reshape(&[oc, c * kh * kw]);
        let mut out = Vec::with_capacity(n * oc * oh * ow);
        for ni in 0..n {
            let cols = im2col_one(input, ni, spec, oh, ow);
            let mut prod = vec![0.0f32; oc * oh * ow];
            reference_gemm(wmat.data(), cols.data(), &mut prod, oc, c * kh * kw, oh * ow);
            out.extend_from_slice(&prod);
        }
        let mut out = Tensor::from_vec(out, &[n, oc, oh, ow]);
        if let Some(b) = bias {
            assert_eq!(b.shape(), &[oc], "conv2d bias must be [{oc}]");
            let data = out.data_mut();
            for ni in 0..n {
                for o in 0..oc {
                    let bv = b.data()[o];
                    let base = (ni * oc + o) * oh * ow;
                    for v in &mut data[base..base + oh * ow] {
                        *v += bv;
                    }
                }
            }
        }
        out
    }

    fn conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: Conv2dSpec,
    ) -> (Tensor, Tensor, Tensor) {
        let (n, c, h, w) = nchw(input);
        let ws = weight.shape();
        let (oc, _, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        let oh = spec.out_extent(h);
        let ow = spec.out_extent(w);
        assert_eq!(
            grad_out.shape(),
            &[n, oc, oh, ow],
            "grad_out shape mismatch in conv2d_backward"
        );
        let wmat = weight.reshape(&[oc, c * kh * kw]);
        let wmat_t = wmat.transpose(); // [c*kh*kw, oc]
        let mut grad_w = Tensor::zeros(&[oc, c * kh * kw]);
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let mut grad_b = Tensor::zeros(&[oc]);
        for ni in 0..n {
            let go = grad_out.narrow(0, ni, 1).reshape(&[oc, oh * ow]);
            let cols = im2col_one(input, ni, spec, oh, ow); // [c*kh*kw, oh*ow]
            grad_w.axpy(1.0, &{
                let mut prod = vec![0.0f32; oc * c * kh * kw];
                let cols_t = reference_transpose(cols.data(), c * kh * kw, oh * ow);
                reference_gemm(go.data(), &cols_t, &mut prod, oc, oh * ow, c * kh * kw);
                Tensor::from_vec(prod, &[oc, c * kh * kw])
            });
            let mut dcols = vec![0.0f32; c * kh * kw * oh * ow];
            reference_gemm(wmat_t.data(), go.data(), &mut dcols, c * kh * kw, oc, oh * ow);
            let dcols = Tensor::from_vec(dcols, &[c * kh * kw, oh * ow]);
            col2im_one(&dcols, &mut grad_in, ni, c, h, w, spec, oh, ow);
            for o in 0..oc {
                let s: f32 = go.data()[o * oh * ow..(o + 1) * oh * ow].iter().sum();
                grad_b.data_mut()[o] += s;
            }
        }
        (grad_in, grad_w.reshape(&[oc, c, kh, kw]), grad_b)
    }

    fn softmax_rows(&self, src: &[f32], out: &mut [f32], rows: usize, inner: usize) {
        for r in 0..rows {
            let row = &src[r * inner..(r + 1) * inner];
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut z = 0.0;
            for (i, &v) in row.iter().enumerate() {
                let e = (v - m).exp();
                out[r * inner + i] = e;
                z += e;
            }
            for slot in &mut out[r * inner..(r + 1) * inner] {
                *slot /= z;
            }
        }
    }

    fn log_softmax_rows(&self, src: &[f32], out: &mut [f32], rows: usize, inner: usize) {
        for r in 0..rows {
            let row = &src[r * inner..(r + 1) * inner];
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
            for (i, &v) in row.iter().enumerate() {
                out[r * inner + i] = v - lse;
            }
        }
    }

    fn sum_axis(&self, src: &[f32], out: &mut [f32], outer: usize, extent: usize, inner: usize) {
        for o in 0..outer {
            for e in 0..extent {
                let base = (o * extent + e) * inner;
                for i in 0..inner {
                    out[o * inner + i] += src[base + i];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Blocked backend: register-tiled, cache-blocked, pool-parallel.
// ---------------------------------------------------------------------

/// Register-tiled, cache-blocked kernels with a pooled outer loop.
pub struct Blocked;

/// Microkernel tile height (rows of `a` held in registers).
const MR: usize = 4;
/// Microkernel tile width (columns of `b` held in registers).
const NR: usize = 16;
/// Use the direct (unpacked) kernel while `b` fits in L1; above this,
/// pack `b` into `k × NR` panels first.
const PACK_B_ABOVE: usize = 8 * 1024;
/// Rows of `a` below which packing cannot amortize: each packed panel
/// is streamed only `m / MR` times before being rebuilt.
const PACK_MIN_M: usize = 32;
/// Minimum multiply-add count before a kernel fans out on the worker
/// pool; below this the pool overhead dwarfs the work.
const PARALLEL_MIN_FLOPS: usize = 1 << 18;

// ---------------------------------------------------------------------
// Optional kernel dispatch counters.
//
// Process-global and off by default: the GEMM hot path pays exactly one
// relaxed bool load until `enable_kernel_stats()` flips them on (the
// profiler and `round_pipeline --metrics` do). They answer the tuning
// questions the dispatch constants above raise — which path did real
// workloads actually take, how much packing did they pay for, how wide
// did the pool fan-out go.
// ---------------------------------------------------------------------

static KERNEL_STATS_ON: AtomicBool = AtomicBool::new(false);
static GEMM_REFERENCE: AtomicU64 = AtomicU64::new(0);
static GEMM_DIRECT: AtomicU64 = AtomicU64::new(0);
static GEMM_PACKED: AtomicU64 = AtomicU64::new(0);
static PACKED_BYTES: AtomicU64 = AtomicU64::new(0);
static GEMM_FANOUTS: AtomicU64 = AtomicU64::new(0);
static FANOUT_WIDTH_PEAK: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the `Blocked` backend's dispatch
/// counters (all zero until [`enable_kernel_stats`] is called).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Serial GEMM calls that took the reference row kernel
    /// (`n < NR`).
    pub gemm_reference: u64,
    /// Serial GEMM calls that took the direct register-tile kernel.
    pub gemm_direct: u64,
    /// Serial GEMM calls that took the packed-panel kernel.
    pub gemm_packed: u64,
    /// Bytes copied into packed `b` panels.
    pub packed_bytes: u64,
    /// GEMM calls that fanned out on the worker pool.
    pub gemm_fanouts: u64,
    /// Widest pool fan-out (bands) of any single GEMM.
    pub fanout_width_peak: u64,
}

/// Turns the kernel dispatch counters on (they stay on for the life of
/// the process).
pub fn enable_kernel_stats() {
    KERNEL_STATS_ON.store(true, Ordering::Relaxed);
}

/// Reads the kernel dispatch counters.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        gemm_reference: GEMM_REFERENCE.load(Ordering::Relaxed),
        gemm_direct: GEMM_DIRECT.load(Ordering::Relaxed),
        gemm_packed: GEMM_PACKED.load(Ordering::Relaxed),
        packed_bytes: PACKED_BYTES.load(Ordering::Relaxed),
        gemm_fanouts: GEMM_FANOUTS.load(Ordering::Relaxed),
        fanout_width_peak: FANOUT_WIDTH_PEAK.load(Ordering::Relaxed),
    }
}

/// Zeroes the kernel dispatch counters (the profiler resets between
/// backends to attribute counts per run).
pub fn reset_kernel_stats() {
    for cell in [
        &GEMM_REFERENCE,
        &GEMM_DIRECT,
        &GEMM_PACKED,
        &PACKED_BYTES,
        &GEMM_FANOUTS,
        &FANOUT_WIDTH_PEAK,
    ] {
        cell.store(0, Ordering::Relaxed);
    }
}

#[inline]
fn bump(cell: &AtomicU64, n: u64) {
    if KERNEL_STATS_ON.load(Ordering::Relaxed) {
        cell.fetch_add(n, Ordering::Relaxed);
    }
}

/// Serial blocked GEMM: register-tiled microkernel, packing `b` into
/// L1-resident panels when it is large. Per output element the `k`
/// products accumulate in ascending order from `+0.0`, matching the
/// reference kernel bit-for-bit on finite inputs.
///
/// Outputs narrower than one `NR` tile never fill a register tile, so
/// they dispatch to the reference row kernel instead — bit-identical
/// (the reference zero-skip can never flip an accumulator bit on
/// finite inputs, because an accumulator seeded at `+0.0` can never
/// become `-0.0`), and faster than the tile remainder path.
fn blocked_gemm_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if n < NR {
        bump(&GEMM_REFERENCE, 1);
        reference_gemm(a, b, out, m, k, n);
    } else if k * n <= PACK_B_ABOVE || m < PACK_MIN_M {
        bump(&GEMM_DIRECT, 1);
        blocked_gemm_direct(a, b, out, m, k, n);
    } else {
        bump(&GEMM_PACKED, 1);
        blocked_gemm_packed(a, b, out, m, k, n);
    }
}

/// Direct microkernel: `MR × NR` register tiles over the full `k`
/// extent, reading `b` rows in place.
fn blocked_gemm_direct(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + MR <= m {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let brow = &b[kk * n + j..kk * n + j + NR];
                for r in 0..MR {
                    let av = a[(i + r) * k + kk];
                    let accr = &mut acc[r];
                    for c in 0..NR {
                        accr[c] += av * brow[c];
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(accr);
            }
            j += NR;
        }
        if j < n {
            let w = n - j;
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let brow = &b[kk * n + j..kk * n + j + w];
                for r in 0..MR {
                    let av = a[(i + r) * k + kk];
                    for (c, &bv) in brow.iter().enumerate() {
                        acc[r][c] += av * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + n].copy_from_slice(&accr[..w]);
            }
        }
        i += MR;
    }
    for r in i..m {
        blocked_row_times_matrix(&a[r * k..(r + 1) * k], b, &mut out[r * n..(r + 1) * n], n);
    }
}

/// One output row: `orow = arow · b`, `NR`-tiled.
fn blocked_row_times_matrix(arow: &[f32], b: &[f32], orow: &mut [f32], n: usize) {
    let mut j = 0;
    while j < n {
        let w = NR.min(n - j);
        let mut acc = [0.0f32; NR];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n + j..kk * n + j + w];
            for (c, &bv) in brow.iter().enumerate() {
                acc[c] += av * bv;
            }
        }
        orow[j..j + w].copy_from_slice(&acc[..w]);
        j += NR;
    }
}

/// Packed-panel GEMM for large `b`: each `k × NR` column panel of `b`
/// is copied contiguous once, then streamed through the register
/// microkernel for every row block — turning the strided `b` accesses
/// of the direct kernel into sequential L1 reads.
fn blocked_gemm_packed(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut panel = vec![0.0f32; k * NR];
    // All of `b` is copied into panels exactly once.
    bump(&PACKED_BYTES, (k * n * std::mem::size_of::<f32>()) as u64);
    let mut j = 0;
    while j < n {
        let w = NR.min(n - j);
        for kk in 0..k {
            panel[kk * NR..kk * NR + w].copy_from_slice(&b[kk * n + j..kk * n + j + w]);
            panel[kk * NR + w..(kk + 1) * NR].fill(0.0);
        }
        let mut i = 0;
        while i + MR <= m {
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let bv = &panel[kk * NR..(kk + 1) * NR];
                for r in 0..MR {
                    let av = a[(i + r) * k + kk];
                    let accr = &mut acc[r];
                    for c in 0..NR {
                        accr[c] += av * bv[c];
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + w].copy_from_slice(&accr[..w]);
            }
            i += MR;
        }
        for r in i..m {
            let mut acc = [0.0f32; NR];
            for kk in 0..k {
                let av = a[r * k + kk];
                let bv = &panel[kk * NR..(kk + 1) * NR];
                for c in 0..NR {
                    acc[c] += av * bv[c];
                }
            }
            out[r * n + j..r * n + j + w].copy_from_slice(&acc[..w]);
        }
        j += NR;
    }
}

/// `out = a[m,k] · b[n,k]ᵀ`: packs `bᵀ` into a scratch buffer, then
/// runs the dispatching GEMM core. A strided no-copy tile kernel was
/// tried first and lost on every training shape — reading `b` with
/// stride `k` defeats vectorization, while the transpose costs one
/// linear pass. Accumulation stays ascending-`kk`, so the result is
/// bit-identical to the reference transpose-then-GEMM.
fn blocked_gemm_abt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut bt = vec![0.0f32; k * n];
    for j in 0..n {
        for (kk, &v) in b[j * k..(j + 1) * k].iter().enumerate() {
            bt[kk * n + j] = v;
        }
    }
    blocked_gemm_serial(a, &bt, out, m, k, n);
}

/// `out = a[k,m]ᵀ · b[k,n]`: packs `aᵀ` into a scratch buffer, then
/// runs the dispatching GEMM core (same rationale and bit-identity
/// argument as [`blocked_gemm_abt`]).
fn blocked_gemm_atb(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut at = vec![0.0f32; m * k];
    for kk in 0..k {
        for (i, &v) in a[kk * m..(kk + 1) * m].iter().enumerate() {
            at[i * k + kk] = v;
        }
    }
    blocked_gemm_serial(&at, b, out, m, k, n);
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let row_blocks = m.div_ceil(MR);
        if 2 * m * k * n >= PARALLEL_MIN_FLOPS && mlperf_pool::workers_for(row_blocks) > 1 {
            // Fan row blocks out on the pool: each worker computes a
            // disjoint band of output rows, so results are identical
            // to the serial kernel.
            let workers = mlperf_pool::workers_for(row_blocks);
            let rows_per = m.div_ceil(workers).next_multiple_of(MR);
            bump(&GEMM_FANOUTS, 1);
            if KERNEL_STATS_ON.load(Ordering::Relaxed) {
                let bands = (m * n).div_ceil(rows_per * n) as u64;
                FANOUT_WIDTH_PEAK.fetch_max(bands, Ordering::Relaxed);
            }
            mlperf_pool::parallel_chunks_mut(out, rows_per * n, |blk, chunk| {
                let i0 = blk * rows_per;
                let rows = chunk.len() / n;
                blocked_gemm_serial(&a[i0 * k..(i0 + rows) * k], b, chunk, rows, k, n);
            });
        } else {
            blocked_gemm_serial(a, b, out, m, k, n);
        }
    }

    fn gemm_abt(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        blocked_gemm_abt(a, b, out, m, k, n);
    }

    fn gemm_atb(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        blocked_gemm_atb(a, b, out, m, k, n);
    }

    fn bmm(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if 2 * batch * m * k * n >= PARALLEL_MIN_FLOPS && mlperf_pool::workers_for(batch) > 1 {
            mlperf_pool::parallel_chunks_mut(out, m * n, |bi, chunk| {
                blocked_gemm_serial(
                    &a[bi * m * k..(bi + 1) * m * k],
                    &b[bi * k * n..(bi + 1) * k * n],
                    chunk,
                    m,
                    k,
                    n,
                );
            });
        } else {
            for bi in 0..batch {
                blocked_gemm_serial(
                    &a[bi * m * k..(bi + 1) * m * k],
                    &b[bi * k * n..(bi + 1) * k * n],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
    }

    fn bmm_abt(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if 2 * batch * m * k * n >= PARALLEL_MIN_FLOPS && mlperf_pool::workers_for(batch) > 1 {
            mlperf_pool::parallel_chunks_mut(out, m * n, |bi, chunk| {
                blocked_gemm_abt(
                    &a[bi * m * k..(bi + 1) * m * k],
                    &b[bi * n * k..(bi + 1) * n * k],
                    chunk,
                    m,
                    k,
                    n,
                );
            });
        } else {
            for bi in 0..batch {
                blocked_gemm_abt(
                    &a[bi * m * k..(bi + 1) * m * k],
                    &b[bi * n * k..(bi + 1) * n * k],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
    }

    fn bmm_atb(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if 2 * batch * m * k * n >= PARALLEL_MIN_FLOPS && mlperf_pool::workers_for(batch) > 1 {
            mlperf_pool::parallel_chunks_mut(out, m * n, |bi, chunk| {
                blocked_gemm_atb(
                    &a[bi * k * m..(bi + 1) * k * m],
                    &b[bi * k * n..(bi + 1) * k * n],
                    chunk,
                    m,
                    k,
                    n,
                );
            });
        } else {
            for bi in 0..batch {
                blocked_gemm_atb(
                    &a[bi * k * m..(bi + 1) * k * m],
                    &b[bi * k * n..(bi + 1) * k * n],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
    }

    fn gemm_bias(
        &self,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.gemm(a, b, out, m, k, n);
        for i in 0..m {
            for (o, &bv) in out[i * n..i * n + n].iter_mut().zip(bias.iter()) {
                *o += bv;
            }
        }
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor {
        let (n, c, h, w) = nchw(input);
        let ws = weight.shape();
        assert_eq!(ws.len(), 4, "conv2d weight must be 4-D, got {:?}", ws);
        let (oc, wc, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        assert_eq!(wc, c, "conv2d channel mismatch: input {c}, weight {wc}");
        assert_eq!(kh, spec.kernel, "weight kernel height disagrees with spec");
        assert_eq!(kw, spec.kernel, "weight kernel width disagrees with spec");
        if let Some(b) = bias {
            assert_eq!(b.shape(), &[oc], "conv2d bias must be [{oc}]");
        }
        let oh = spec.out_extent(h);
        let ow = spec.out_extent(w);
        let (ckk, ohow) = (c * kh * kw, oh * ow);
        let wmat = weight.reshape(&[oc, ckk]);
        let mut out = vec![0.0f32; n * oc * ohow];
        // One sample per chunk; each worker reuses one im2col scratch
        // buffer across all the samples it claims.
        mlperf_pool::parallel_chunks_mut_with(
            &mut out,
            oc * ohow,
            || vec![0.0f32; ckk * ohow],
            |cols, ni, chunk| {
                im2col_into(input, ni, spec, oh, ow, cols);
                blocked_gemm_serial(wmat.data(), cols, chunk, oc, ckk, ohow);
                if let Some(b) = bias {
                    for o in 0..oc {
                        let bv = b.data()[o];
                        for v in &mut chunk[o * ohow..(o + 1) * ohow] {
                            *v += bv;
                        }
                    }
                }
            },
        );
        Tensor::from_vec(out, &[n, oc, oh, ow])
    }

    fn conv2d_backward(
        &self,
        input: &Tensor,
        weight: &Tensor,
        grad_out: &Tensor,
        spec: Conv2dSpec,
    ) -> (Tensor, Tensor, Tensor) {
        let (n, c, h, w) = nchw(input);
        let ws = weight.shape();
        let (oc, _, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        let oh = spec.out_extent(h);
        let ow = spec.out_extent(w);
        assert_eq!(
            grad_out.shape(),
            &[n, oc, oh, ow],
            "grad_out shape mismatch in conv2d_backward"
        );
        let (ckk, ohow) = (c * kh * kw, oh * ow);
        let wmat = weight.reshape(&[oc, ckk]);
        let mut grad_w = Tensor::zeros(&[oc, ckk]);
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let mut grad_b = Tensor::zeros(&[oc]);
        // Serial over samples — the per-sample `grad_w` accumulation
        // order is part of the numerical contract — but with all four
        // scratch buffers reused and both transposes fused away.
        let mut cols = vec![0.0f32; ckk * ohow];
        let mut gw = vec![0.0f32; oc * ckk];
        let mut dcols = Tensor::zeros(&[ckk, ohow]);
        for ni in 0..n {
            let go = &grad_out.data()[ni * oc * ohow..(ni + 1) * oc * ohow];
            im2col_into(input, ni, spec, oh, ow, &mut cols);
            gw.fill(0.0);
            blocked_gemm_abt(go, &cols, &mut gw, oc, ohow, ckk);
            for (acc, &g) in grad_w.data_mut().iter_mut().zip(gw.iter()) {
                *acc += g;
            }
            dcols.data_mut().fill(0.0);
            blocked_gemm_atb(wmat.data(), go, dcols.data_mut(), ckk, oc, ohow);
            col2im_one(&dcols, &mut grad_in, ni, c, h, w, spec, oh, ow);
            for o in 0..oc {
                let s: f32 = go[o * ohow..(o + 1) * ohow].iter().sum();
                grad_b.data_mut()[o] += s;
            }
        }
        (grad_in, grad_w.reshape(&[oc, c, kh, kw]), grad_b)
    }

    fn softmax_rows(&self, src: &[f32], out: &mut [f32], rows: usize, inner: usize) {
        if rows * inner >= PARALLEL_MIN_FLOPS && mlperf_pool::workers_for(rows) > 1 {
            mlperf_pool::parallel_chunks_mut(out, inner, |r, orow| {
                softmax_one_row(&src[r * inner..(r + 1) * inner], orow);
            });
        } else {
            for r in 0..rows {
                softmax_one_row(
                    &src[r * inner..(r + 1) * inner],
                    &mut out[r * inner..(r + 1) * inner],
                );
            }
        }
    }

    fn log_softmax_rows(&self, src: &[f32], out: &mut [f32], rows: usize, inner: usize) {
        if rows * inner >= PARALLEL_MIN_FLOPS && mlperf_pool::workers_for(rows) > 1 {
            mlperf_pool::parallel_chunks_mut(out, inner, |r, orow| {
                log_softmax_one_row(&src[r * inner..(r + 1) * inner], orow);
            });
        } else {
            for r in 0..rows {
                log_softmax_one_row(
                    &src[r * inner..(r + 1) * inner],
                    &mut out[r * inner..(r + 1) * inner],
                );
            }
        }
    }

    fn sum_axis(&self, src: &[f32], out: &mut [f32], outer: usize, extent: usize, inner: usize) {
        if outer * extent * inner >= PARALLEL_MIN_FLOPS && mlperf_pool::workers_for(outer) > 1 {
            mlperf_pool::parallel_chunks_mut(out, inner, |o, chunk| {
                for e in 0..extent {
                    let base = (o * extent + e) * inner;
                    for (slot, &v) in chunk.iter_mut().zip(src[base..base + inner].iter()) {
                        *slot += v;
                    }
                }
            });
        } else {
            Reference.sum_axis(src, out, outer, extent, inner);
        }
    }
}

/// Fused stable softmax of one row (same op order as the reference
/// row loop: max, exp/accumulate, divide).
fn softmax_one_row(row: &[f32], out: &mut [f32]) {
    let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut z = 0.0;
    for (slot, &v) in out.iter_mut().zip(row.iter()) {
        let e = (v - m).exp();
        *slot = e;
        z += e;
    }
    for slot in out.iter_mut() {
        *slot /= z;
    }
}

/// Fused stable log-softmax of one row.
fn log_softmax_one_row(row: &[f32], out: &mut [f32]) {
    let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
    for (slot, &v) in out.iter_mut().zip(row.iter()) {
        *slot = v - lse;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::TensorRng;

    /// Deterministic pseudo-random buffer without burning TensorRng
    /// state (exercises negatives, zeros and magnitude spread).
    fn buf(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = TensorRng::new(seed);
        let mut v: Vec<f32> = rng.uniform(&[len.max(1)], -1.5, 1.5).into_vec();
        // Sprinkle exact zeros so the reference zero-skip path runs.
        for i in (0..len).step_by(7) {
            v[i] = 0.0;
        }
        v.truncate(len);
        v
    }

    fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} differs: {x} vs {y}");
        }
    }

    #[test]
    fn kernel_stats_count_dispatch_paths() {
        // The counters are process-global and sticky-on, and other
        // tests exercise GEMMs concurrently, so assert deltas with >=.
        enable_kernel_stats();
        let before = kernel_stats();

        // n < NR: reference row kernel.
        let (a, b) = (buf(4 * 8, 3), buf(8 * 4, 5));
        let mut out = vec![0.0f32; 4 * 4];
        blocked_gemm_serial(&a, &b, &mut out, 4, 8, 4);

        // Small k*n, n >= NR: direct kernel.
        let (a, b) = (buf(8 * 8, 7), buf(8 * 16, 11));
        let mut out = vec![0.0f32; 8 * 16];
        blocked_gemm_serial(&a, &b, &mut out, 8, 8, 16);

        // k*n > PACK_B_ABOVE and m >= PACK_MIN_M: packed kernel.
        let (m, k, n) = (33, 200, 65);
        let (a, b) = (buf(m * k, 13), buf(k * n, 17));
        let mut out = vec![0.0f32; m * n];
        blocked_gemm_serial(&a, &b, &mut out, m, k, n);

        let after = kernel_stats();
        assert!(after.gemm_reference >= before.gemm_reference + 1);
        assert!(after.gemm_direct >= before.gemm_direct + 1);
        assert!(after.gemm_packed >= before.gemm_packed + 1);
        let pack = (k * n * std::mem::size_of::<f32>()) as u64;
        assert!(after.packed_bytes >= before.packed_bytes + pack, "all of b is packed once");
    }

    #[test]
    fn blocked_gemm_bit_identical_across_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 16),
            (5, 3, 17),
            (13, 1, 33),
            (192, 16, 16),
            (64, 48, 96),
            (33, 200, 65), // k*n > PACK_B_ABOVE: packed path
        ] {
            let a = buf(m * k, 11);
            let b = buf(k * n, 23);
            let mut r = vec![0.0f32; m * n];
            let mut bl = vec![0.0f32; m * n];
            Reference.gemm(&a, &b, &mut r, m, k, n);
            Blocked.gemm(&a, &b, &mut bl, m, k, n);
            assert_bits_equal(&r, &bl, &format!("gemm {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_transposed_gemms_bit_identical() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 7), (16, 12, 20), (37, 9, 5)] {
            let a = buf(m * k, 31);
            let b = buf(n * k, 41);
            let mut r = vec![0.0f32; m * n];
            let mut bl = vec![0.0f32; m * n];
            Reference.gemm_abt(&a, &b, &mut r, m, k, n);
            Blocked.gemm_abt(&a, &b, &mut bl, m, k, n);
            assert_bits_equal(&r, &bl, &format!("gemm_abt {m}x{k}x{n}"));

            let a = buf(k * m, 51);
            let b = buf(k * n, 61);
            let mut r = vec![0.0f32; m * n];
            let mut bl = vec![0.0f32; m * n];
            Reference.gemm_atb(&a, &b, &mut r, m, k, n);
            Blocked.gemm_atb(&a, &b, &mut bl, m, k, n);
            assert_bits_equal(&r, &bl, &format!("gemm_atb {m}x{k}x{n}"));
        }
    }

    #[test]
    fn join_prefers_blocked() {
        let (r, b) = (BackendKind::Reference, BackendKind::Blocked);
        assert_eq!(r.join(r), r);
        assert_eq!(r.join(b), b);
        assert_eq!(b.join(r), b);
        assert_eq!(b.join(b), b);
    }

    #[test]
    fn labels_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.imp().name(), kind.label());
        }
        assert_eq!(BackendKind::parse("gpu"), None);
    }
}
