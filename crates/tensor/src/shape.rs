//! Shape arithmetic: element counts, strides, index linearization and
//! NumPy-style broadcasting rules.

use std::fmt;

/// The extents of a tensor along each dimension.
///
/// A thin wrapper over `Vec<usize>` providing stride and broadcasting
/// helpers. A zero-dimensional shape (`[]`) denotes a scalar with one
/// element.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for a scalar shape).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linearizes a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.0.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.0[d],
                "index {i} out of bounds for dimension {d} of extent {}",
                self.0[d]
            );
            off += i * s;
        }
        off
    }

    /// Converts a linear offset back into a multi-dimensional index.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut idx = vec![0; self.0.len()];
        for (i, &s) in self.strides().iter().enumerate() {
            idx[i] = offset / s;
            offset %= s;
        }
        idx
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Computes the broadcast of two shapes under NumPy rules: trailing
/// dimensions must be equal or one of them must be 1; missing leading
/// dimensions are treated as 1.
///
/// Returns `None` when the shapes are incompatible.
///
/// ```
/// use mlperf_tensor::broadcast_shapes;
/// assert_eq!(broadcast_shapes(&[4, 1], &[3]), Some(vec![4, 3]));
/// assert_eq!(broadcast_shapes(&[2, 3], &[4]), None);
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let ndim = a.len().max(b.len());
    let mut out = vec![0; ndim];
    for i in 0..ndim {
        let da = if i < ndim - a.len() { 1 } else { a[i - (ndim - a.len())] };
        let db = if i < ndim - b.len() { 1 } else { b[i - (ndim - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        for lin in 0..s.len() {
            let idx = s.unravel(lin);
            assert_eq!(s.offset(&idx), lin);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn broadcast_compatible() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[], &[2, 3]), Some(vec![2, 3]));
    }

    #[test]
    fn broadcast_incompatible() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3, 2]), None);
        assert_eq!(broadcast_shapes(&[4], &[5]), None);
    }
}
