//! Image classification: ResNet-50 v1.5 on (synthetic) ImageNet to
//! 74.9% top-1 accuracy.

use crate::harness::Benchmark;
use crate::suite::{BenchmarkId, SuiteVersion};
use mlperf_data::{epoch_batches, Compose, ImageNetConfig, PackedImages, SyntheticImageNet};
use mlperf_models::{ResNetConfig, ResNetMini};
use mlperf_nn::Module;
use mlperf_optim::{linear_scaled_lr, LrSchedule, MultiStepDecay, Optimizer, SgdTorch};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

/// Seed defining the dataset (shared by every run, like ImageNet).
const DATASET_SEED: u64 = 0x1357_9bdf;
/// The reference batch size the learning rate is calibrated for.
const REFERENCE_BATCH: usize = 32;

/// The image-classification benchmark.
#[derive(Debug)]
pub struct ResNetBenchmark {
    data_config: ImageNetConfig,
    batch_size: usize,
    backend: BackendKind,
    data: Option<SyntheticImageNet>,
    packed: Option<PackedImages>,
    model: Option<ResNetMini>,
    optimizer: Option<SgdTorch>,
    schedule: MultiStepDecay,
    data_rng: Option<TensorRng>,
    augment: Compose,
    max_epochs: usize,
    version: SuiteVersion,
}

impl ResNetBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        ResNetBenchmark::with_batch_size(REFERENCE_BATCH)
    }

    /// Same workload at a different minibatch size, with the linear
    /// learning-rate scaling rule applied (§3.4) — used by the
    /// batch-scaling experiment.
    pub fn with_batch_size(batch_size: usize) -> Self {
        let base_lr = linear_scaled_lr(0.08, batch_size, REFERENCE_BATCH);
        ResNetBenchmark {
            data_config: ImageNetConfig::default(),
            batch_size,
            backend: default_backend(),
            data: None,
            packed: None,
            model: None,
            optimizer: None,
            schedule: MultiStepDecay { base: base_lr, gamma: 0.2, milestones: vec![12, 18] },
            data_rng: None,
            augment: Compose::standard(1, 0.1),
            max_epochs: 30,
            version: SuiteVersion::V05,
        }
    }

    /// Runs against a different suite round's quality target (v0.6
    /// raised ResNet's to 75.9% — §6).
    pub fn with_version(mut self, version: SuiteVersion) -> Self {
        self.version = version;
        self
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// The per-epoch learning-rate schedule in effect.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.schedule.lr(epoch)
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl Default for ResNetBenchmark {
    fn default() -> Self {
        ResNetBenchmark::new()
    }
}

impl Benchmark for ResNetBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::ImageClassification
    }

    fn prepare(&mut self) {
        let data = SyntheticImageNet::generate(self.data_config, DATASET_SEED);
        // One-time reformatting: pack training images into record form
        // (excluded from timing by the harness).
        let (packed, _stats) = PackedImages::pack(data.train.images());
        self.packed = Some(packed);
        self.data = Some(data);
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = ResNetMini::new(
            ResNetConfig {
                in_channels: self.data_config.channels,
                input_size: self.data_config.image_size,
                classes: self.data_config.classes,
                base_width: 8,
                blocks_per_stage: 1,
            },
            &mut rng,
        );
        self.optimizer = Some(SgdTorch::new(model.params(), 0.9, 1e-4));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let packed = self.packed.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        let lr = self.schedule.lr(epoch);
        let labels = data.train.labels();
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let images = packed.read_batch(batch);
            let images = self.augment.apply_batch(&images, rng);
            let batch_labels: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            opt.zero_grad();
            model.loss(&images, &batch_labels).backward();
            opt.step(lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        model.accuracy(data.val.images(), data.val.labels()) as f64
    }

    fn target(&self) -> f64 {
        self.id().quality_for(self.version).expect("resnet exists in every round").value
    }

    fn max_epochs(&self) -> usize {
        self.max_epochs
    }

    fn hyperparameters(&self) -> Vec<(String, f64)> {
        vec![
            ("batch_size".into(), self.batch_size as f64),
            ("learning_rate".into(), self.schedule.base as f64),
            ("momentum".into(), 0.9),
            ("weight_decay".into(), 1e-4),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_target_within_budget() {
        let clock = RealClock::new();
        let mut bench = ResNetBenchmark::new();
        let result = run_benchmark(&mut bench, 42, &clock);
        assert!(
            result.reached_target,
            "resnet benchmark failed to reach {} (got {} after {} epochs)",
            bench.target(),
            result.quality,
            result.epochs
        );
        assert!(result.epochs >= 2, "threshold reached suspiciously fast");
    }

    #[test]
    fn linear_scaling_rule_applied() {
        let b32 = ResNetBenchmark::with_batch_size(32);
        let b128 = ResNetBenchmark::with_batch_size(128);
        assert!((b128.lr_at(0) / b32.lr_at(0) - 4.0).abs() < 1e-5);
    }
}
