//! Recurrent translation: GNMT on the synthetic language pair to 21.8
//! BLEU.

use crate::harness::Benchmark;
use crate::metrics::bleu;
use crate::suite::BenchmarkId;
use mlperf_data::{epoch_batches, SyntheticTranslation, TranslationConfig, TranslationPair};
use mlperf_models::{GnmtConfig, GnmtMini};
use mlperf_nn::Module;
use mlperf_optim::{clip_grad_norm, Adam, LrSchedule, MultiStepDecay, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x48d1_59e2; // same corpus as the Transformer row (both use WMT EN-DE)

/// The recurrent translation benchmark.
#[derive(Debug)]
pub struct GnmtBenchmark {
    data_config: TranslationConfig,
    batch_size: usize,
    schedule: MultiStepDecay,
    grad_clip: f32,
    backend: BackendKind,
    data: Option<SyntheticTranslation>,
    model: Option<GnmtMini>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
}

impl GnmtBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        GnmtBenchmark {
            data_config: TranslationConfig::default(),
            batch_size: 32,
            // Adam oscillates near the BLEU target at a flat rate; the
            // staircase settles it (the reference similarly decays).
            schedule: MultiStepDecay { base: 0.012, gamma: 0.4, milestones: vec![50, 70] },
            grad_clip: 5.0,
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
        }
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for GnmtBenchmark {
    fn default() -> Self {
        GnmtBenchmark::new()
    }
}

impl Benchmark for GnmtBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::TranslationRecurrent
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticTranslation::generate(self.data_config, DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = GnmtMini::new(
            GnmtConfig {
                vocab: self.data_config.vocab,
                max_len: self.data_config.max_len + 2,
                embed_dim: 24,
                hidden: 48,
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        let lr = self.schedule.lr(epoch);
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let pairs: Vec<&TranslationPair> = batch.iter().map(|&i| &data.train[i]).collect();
            let padded = SyntheticTranslation::pad_batch(&pairs, self.data_config.max_len);
            opt.zero_grad();
            model.loss(&padded).backward();
            clip_grad_norm(&model.params(), self.grad_clip);
            opt.step(lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let candidates: Vec<Vec<usize>> =
            data.val.iter().map(|p| model.greedy_translate(&p.source)).collect();
        let references: Vec<Vec<usize>> = data.val.iter().map(|p| p.target.clone()).collect();
        bleu(&candidates, &references)
    }

    fn target(&self) -> f64 {
        self.id().spec().quality.value
    }

    fn max_epochs(&self) -> usize {
        90
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_bleu_target() {
        let clock = RealClock::new();
        let mut bench = GnmtBenchmark::new();
        let result = run_benchmark(&mut bench, 13, &clock);
        assert!(
            result.reached_target,
            "gnmt failed: BLEU {} after {} epochs",
            result.quality, result.epochs
        );
    }
}
