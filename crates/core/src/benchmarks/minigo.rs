//! Reinforcement learning: MiniGo — train the policy/value network on
//! engine-generated games to 40% reference-move prediction.
//!
//! Mirroring the reference benchmark's structure, the training data is
//! *generated* (self-play-style games between engine players) rather
//! than read from a fixed corpus, and quality is measured against
//! held-out games from the fixed "professional" heuristic players.
//! §2.2.3 and Figure 2b note that MiniGo shows the largest run-to-run
//! variance in the suite — with game generation in the loop, small seed
//! differences compound.

use crate::harness::Benchmark;
use crate::suite::BenchmarkId;
use mlperf_data::{epoch_batches, reference_games, GoDataset};
use mlperf_models::{MiniGoConfig, MiniGoNet};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x6b1d_4e87;

/// The MiniGo benchmark.
#[derive(Debug)]
pub struct MiniGoBenchmark {
    board_size: usize,
    batch_size: usize,
    lr: f32,
    games_per_epoch: usize,
    backend: BackendKind,
    eval_data: Option<GoDataset>,
    model: Option<MiniGoNet>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
    run_seed: u64,
    /// Replay buffer of recently generated games' samples.
    pool: Vec<mlperf_data::GoSample>,
    pool_cap: usize,
}

impl MiniGoBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        MiniGoBenchmark {
            board_size: 9,
            batch_size: 32,
            lr: 0.005,
            games_per_epoch: 4,
            backend: default_backend(),
            eval_data: None,
            model: None,
            optimizer: None,
            data_rng: None,
            run_seed: 0,
            pool: Vec::new(),
            pool_cap: 1400,
        }
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for MiniGoBenchmark {
    fn default() -> Self {
        MiniGoBenchmark::new()
    }
}

impl Benchmark for MiniGoBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::ReinforcementLearning
    }

    fn prepare(&mut self) {
        // The held-out "professional" games defining the quality
        // metric; fixed across runs.
        let games = reference_games(6, self.board_size, DATASET_SEED);
        self.eval_data = Some(GoDataset::from_games(&games));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = MiniGoNet::new(MiniGoConfig::default(), &mut rng);
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
        self.run_seed = seed;
        self.pool.clear();
    }

    fn train_epoch(&mut self, epoch: usize) {
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        // Data generation is part of the timed run — the paper keeps
        // MiniGo "ML oriented" precisely because data comes from the
        // engine/model loop, not a simulator corpus. Games are played
        // by the same (noisy) engine players that define the quality
        // metric, under run-seed-derived seeds, so the supervision
        // matches the evaluation distribution.
        let fresh = reference_games(
            self.games_per_epoch,
            self.board_size,
            self.run_seed.wrapping_mul(31).wrapping_add(epoch as u64 + 1),
        );
        let ds = GoDataset::from_games(&fresh);
        // Fresh games enter a bounded replay buffer; each epoch trains
        // on the whole buffer (the MiniGo reference similarly trains on
        // a sliding window of recent self-play games).
        self.pool.extend(ds.samples);
        if self.pool.len() > self.pool_cap {
            let excess = self.pool.len() - self.pool_cap;
            self.pool.drain(..excess);
        }
        let buffer = GoDataset { samples: self.pool.clone(), size: self.board_size };
        for batch in epoch_batches(buffer.len(), self.batch_size, rng).iter() {
            let (features, moves, outcomes) = buffer.batch(batch);
            opt.zero_grad();
            model.loss(&features, &moves, &outcomes).backward();
            opt.step(self.lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let eval = self.eval_data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        model.move_match_accuracy(eval) as f64
    }

    fn target(&self) -> f64 {
        self.id().spec().quality.value
    }

    fn max_epochs(&self) -> usize {
        60
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_move_prediction_target() {
        let clock = RealClock::new();
        let mut bench = MiniGoBenchmark::new();
        let result = run_benchmark(&mut bench, 3, &clock);
        assert!(
            result.reached_target,
            "minigo failed: move match {} after {} epochs",
            result.quality, result.epochs
        );
    }
}
