//! Non-recurrent translation: Transformer on the synthetic language
//! pair to 25.0 BLEU.

use crate::harness::Benchmark;
use crate::metrics::bleu;
use crate::suite::BenchmarkId;
use mlperf_data::{epoch_batches, SyntheticTranslation, TranslationConfig, TranslationPair};
use mlperf_models::{TransformerConfig, TransformerMini};
use mlperf_nn::Module;
use mlperf_optim::{Adam, LrSchedule, MultiStepDecay, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x48d1_59e2;

/// The Transformer translation benchmark.
#[derive(Debug)]
pub struct TransformerBenchmark {
    data_config: TranslationConfig,
    batch_size: usize,
    schedule: MultiStepDecay,
    backend: BackendKind,
    data: Option<SyntheticTranslation>,
    model: Option<TransformerMini>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
}

impl TransformerBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        TransformerBenchmark {
            data_config: TranslationConfig::default(),
            batch_size: 32,
            schedule: MultiStepDecay { base: 0.01, gamma: 0.5, milestones: vec![45] },
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
        }
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for TransformerBenchmark {
    fn default() -> Self {
        TransformerBenchmark::new()
    }
}

impl Benchmark for TransformerBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::TranslationNonRecurrent
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticTranslation::generate(self.data_config, DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = TransformerMini::new(
            TransformerConfig {
                vocab: self.data_config.vocab,
                max_len: self.data_config.max_len + 2,
                ..Default::default()
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        let lr = self.schedule.lr(epoch);
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let pairs: Vec<&TranslationPair> = batch.iter().map(|&i| &data.train[i]).collect();
            let padded = SyntheticTranslation::pad_batch(&pairs, self.data_config.max_len);
            opt.zero_grad();
            model.loss(&padded).backward();
            opt.step(lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let candidates: Vec<Vec<usize>> =
            data.val.iter().map(|p| model.greedy_translate(&p.source)).collect();
        let references: Vec<Vec<usize>> = data.val.iter().map(|p| p.target.clone()).collect();
        bleu(&candidates, &references)
    }

    fn target(&self) -> f64 {
        self.id().spec().quality.value
    }

    fn max_epochs(&self) -> usize {
        70
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_bleu_target() {
        let clock = RealClock::new();
        let mut bench = TransformerBenchmark::new();
        let result = run_benchmark(&mut bench, 5, &clock);
        assert!(
            result.reached_target,
            "transformer failed: BLEU {} after {} epochs",
            result.quality, result.epochs
        );
    }
}
