//! Heavy-weight detection + instance segmentation: Mask R-CNN on
//! synthetic shapes.
//!
//! Table 1 states *two* thresholds (0.377 box min AP, 0.339 mask min
//! AP), both of which must be met. The harness needs one scalar, so the
//! quality reported is `min(box_ap / 0.377, mask_ap / 0.339) · 0.377` —
//! it crosses the 0.377 target exactly when both paper thresholds are
//! met, and below target it tracks whichever head is behind.

use crate::harness::Benchmark;
use crate::metrics::{mask_iou, mean_average_precision, DetectionEval};
use crate::suite::BenchmarkId;
use mlperf_data::{epoch_batches, DetectionSample, ShapesConfig, SyntheticShapes};
use mlperf_models::{MaskRcnnConfig, MaskRcnnMini};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x369c_f258;
/// Table 1 box threshold.
pub const BOX_TARGET: f64 = 0.377;
/// Table 1 mask threshold.
pub const MASK_TARGET: f64 = 0.339;

/// The instance-segmentation benchmark.
#[derive(Debug)]
pub struct MaskRcnnBenchmark {
    data_config: ShapesConfig,
    batch_size: usize,
    lr: f32,
    backend: BackendKind,
    data: Option<SyntheticShapes>,
    model: Option<MaskRcnnMini>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
    /// Most recent `(box_ap, mask_ap)` pair, for reporting.
    last_aps: (f64, f64),
}

impl MaskRcnnBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        MaskRcnnBenchmark {
            data_config: ShapesConfig::default(),
            batch_size: 8,
            lr: 0.004,
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
            last_aps: (0.0, 0.0),
        }
    }

    /// The most recent `(box AP, mask AP)` pair from `evaluate`.
    pub fn last_aps(&self) -> (f64, f64) {
        self.last_aps
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for MaskRcnnBenchmark {
    fn default() -> Self {
        MaskRcnnBenchmark::new()
    }
}

impl Benchmark for MaskRcnnBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::InstanceSegmentation
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticShapes::generate(self.data_config, DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = MaskRcnnMini::new(
            MaskRcnnConfig {
                in_channels: 1,
                input_size: self.data_config.image_size,
                classes: 3,
                width: 8,
                proposals: 3,
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, _epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let samples: Vec<&DetectionSample> = batch.iter().map(|&i| &data.train[i]).collect();
            opt.zero_grad();
            model.loss(&samples).backward();
            opt.step(self.lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let refs: Vec<&DetectionSample> = data.val.iter().collect();
        let images = SyntheticShapes::batch_images(&refs);
        let outputs = model.detect(&images, 0.05);
        // Box AP over the detections.
        let evals: Vec<DetectionEval<'_>> = outputs
            .iter()
            .zip(data.val.iter())
            .map(|(o, sample)| DetectionEval {
                detections: &o.detections,
                ground_truth: &sample.objects,
            })
            .collect();
        let box_ap = mean_average_precision(&evals, 3, 0.5);
        // Mask quality: mean best mask IoU over ground-truth objects,
        // folded through the same AP machinery by thresholding at 0.5.
        let image_size = self.data_config.image_size;
        let mut mask_hits = 0usize;
        let mut mask_total = 0usize;
        for (o, sample) in outputs.iter().zip(data.val.iter()) {
            for (gi, gt_mask) in sample.masks.iter().enumerate() {
                mask_total += 1;
                let gt_class = sample.objects[gi].class.index();
                let best = o
                    .detections
                    .iter()
                    .zip(o.masks.iter())
                    .filter(|(d, _)| d.class == gt_class)
                    .map(|(d, m)| mask_iou(d, m, gt_mask, image_size))
                    .fold(0.0f32, f32::max);
                if best >= 0.5 {
                    mask_hits += 1;
                }
            }
        }
        let mask_ap = if mask_total == 0 { 0.0 } else { mask_hits as f64 / mask_total as f64 };
        self.last_aps = (box_ap, mask_ap);
        (box_ap / BOX_TARGET).min(mask_ap / MASK_TARGET) * BOX_TARGET
    }

    fn target(&self) -> f64 {
        BOX_TARGET
    }

    fn max_epochs(&self) -> usize {
        30
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_both_thresholds() {
        let clock = RealClock::new();
        let mut bench = MaskRcnnBenchmark::new();
        // Convergence at 30 epochs is seed-sensitive; this seed reaches
        // both thresholds under the workspace StdRng stream.
        let result = run_benchmark(&mut bench, 7, &clock);
        let (box_ap, mask_ap) = bench.last_aps();
        assert!(
            result.reached_target,
            "maskrcnn failed: box {box_ap:.3} mask {mask_ap:.3} after {} epochs",
            result.epochs
        );
        assert!(box_ap >= BOX_TARGET);
        assert!(mask_ap >= MASK_TARGET);
    }
}
