//! Recommendation: NCF on the synthetic collaborative-filtering
//! dataset to HR@10 ≥ 0.635.

use crate::harness::Benchmark;
use crate::suite::BenchmarkId;
use mlperf_data::{epoch_batches, CfConfig, SyntheticCf};
use mlperf_models::{Ncf, NcfConfig};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x5af0_3c6b;

/// The recommendation benchmark.
#[derive(Debug)]
pub struct NcfBenchmark {
    data_config: CfConfig,
    batch_size: usize,
    lr: f32,
    negatives_per_positive: usize,
    backend: BackendKind,
    data: Option<SyntheticCf>,
    model: Option<Ncf>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
}

impl NcfBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        NcfBenchmark {
            data_config: CfConfig::default(),
            batch_size: 64,
            lr: 0.01,
            negatives_per_positive: 2,
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
        }
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for NcfBenchmark {
    fn default() -> Self {
        NcfBenchmark::new()
    }
}

impl Benchmark for NcfBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::Recommendation
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticCf::generate(self.data_config, DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = Ncf::new(
            NcfConfig {
                users: self.data_config.users,
                items: self.data_config.items,
                ..Default::default()
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, _epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        // Negative sampling is part of the epoch's data traversal.
        let triples = data.training_triples(self.negatives_per_positive, rng);
        for batch in epoch_batches(triples.len(), self.batch_size, rng).iter() {
            let chunk: Vec<(usize, usize, f32)> = batch.iter().map(|&i| triples[i]).collect();
            opt.zero_grad();
            model.loss(&chunk).backward();
            opt.step(self.lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        model.hit_rate_at(&data.users, 10) as f64
    }

    fn target(&self) -> f64 {
        self.id().spec().quality.value
    }

    fn max_epochs(&self) -> usize {
        40
    }

    fn hyperparameters(&self) -> Vec<(String, f64)> {
        vec![
            ("batch_size".into(), self.batch_size as f64),
            ("learning_rate".into(), self.lr as f64),
            ("negative_samples".into(), self.negatives_per_positive as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_hr10_target() {
        let clock = RealClock::new();
        let mut bench = NcfBenchmark::new();
        let result = run_benchmark(&mut bench, 21, &clock);
        assert!(
            result.reached_target,
            "ncf failed: HR@10 {} after {} epochs",
            result.quality, result.epochs
        );
    }
}
