//! Language modeling (v0.7): BERT on the synthetic masked phrase
//! corpus to masked-LM accuracy ≥ 0.712.

use crate::harness::Benchmark;
use crate::suite::BenchmarkId;
use mlperf_data::{epoch_batches, MaskedLmConfig, MaskedSentence, SyntheticMaskedLm};
use mlperf_models::{BertConfig, BertMini};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x7be2_91a4;

/// The language-modeling benchmark.
#[derive(Debug)]
pub struct BertBenchmark {
    data_config: MaskedLmConfig,
    batch_size: usize,
    lr: f32,
    warmup_steps: usize,
    backend: BackendKind,
    data: Option<SyntheticMaskedLm>,
    model: Option<BertMini>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
    step: usize,
}

impl BertBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        BertBenchmark {
            data_config: MaskedLmConfig::default(),
            batch_size: 16,
            lr: 0.01,
            warmup_steps: 12,
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
            step: 0,
        }
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for BertBenchmark {
    fn default() -> Self {
        BertBenchmark::new()
    }
}

impl Benchmark for BertBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::LanguageModeling
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticMaskedLm::generate(self.data_config, DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = BertMini::new(
            BertConfig {
                vocab: self.data_config.vocab,
                max_len: self.data_config.sentence_len(),
                ..Default::default()
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
        self.step = 0;
    }

    fn train_epoch(&mut self, _epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let chunk: Vec<&MaskedSentence> = batch.iter().map(|&i| &data.train[i]).collect();
            self.step += 1;
            // Linear warmup, BERT's usual schedule in miniature.
            let lr = if self.step < self.warmup_steps {
                self.lr * self.step as f32 / self.warmup_steps as f32
            } else {
                self.lr
            };
            opt.zero_grad();
            model.loss(&chunk).backward();
            opt.step(lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let eval: Vec<&MaskedSentence> = data.eval.iter().collect();
        model.masked_accuracy(&eval)
    }

    fn target(&self) -> f64 {
        self.id().spec().quality.value
    }

    fn max_epochs(&self) -> usize {
        48
    }

    fn hyperparameters(&self) -> Vec<(String, f64)> {
        vec![
            ("batch_size".into(), self.batch_size as f64),
            ("learning_rate".into(), self.lr as f64),
            ("warmup_steps".into(), self.warmup_steps as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_masked_lm_target() {
        let clock = RealClock::new();
        let mut bench = BertBenchmark::new();
        let result = run_benchmark(&mut bench, 21, &clock);
        assert!(
            result.reached_target,
            "bert failed: masked-LM accuracy {} after {} epochs",
            result.quality, result.epochs
        );
    }
}
