//! Speech recognition (v0.7): RNN-T on the synthetic frame stream to
//! 1 − WER ≥ 0.942 (the paper's 0.058 WER target).

use crate::harness::Benchmark;
use crate::suite::BenchmarkId;
use mlperf_data::{epoch_batches, SpeechConfig, SyntheticSpeech, Utterance};
use mlperf_models::{RnnTConfig, RnnTMini};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x93aa_07d1;

/// The speech-recognition benchmark.
#[derive(Debug)]
pub struct RnnTBenchmark {
    data_config: SpeechConfig,
    batch_size: usize,
    lr: f32,
    hidden: usize,
    backend: BackendKind,
    data: Option<SyntheticSpeech>,
    model: Option<RnnTMini>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
}

impl RnnTBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        RnnTBenchmark {
            data_config: SpeechConfig::default(),
            batch_size: 16,
            lr: 0.01,
            hidden: 16,
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
        }
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for RnnTBenchmark {
    fn default() -> Self {
        RnnTBenchmark::new()
    }
}

impl Benchmark for RnnTBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::SpeechRecognition
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticSpeech::generate(self.data_config, DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = RnnTMini::new(
            RnnTConfig {
                frame_dim: self.data_config.frame_dim,
                hidden: self.hidden,
                classes: self.data_config.classes(),
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, _epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let chunk: Vec<&Utterance> = batch.iter().map(|&i| &data.train[i]).collect();
            opt.zero_grad();
            model.loss(&chunk).backward();
            opt.step(self.lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let eval: Vec<&Utterance> = data.eval.iter().collect();
        1.0 - model.wer(&eval)
    }

    fn target(&self) -> f64 {
        self.id().spec().quality.value
    }

    fn max_epochs(&self) -> usize {
        48
    }

    fn hyperparameters(&self) -> Vec<(String, f64)> {
        vec![
            ("batch_size".into(), self.batch_size as f64),
            ("learning_rate".into(), self.lr as f64),
            ("hidden_size".into(), self.hidden as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_wer_target() {
        let clock = RealClock::new();
        let mut bench = RnnTBenchmark::new();
        let result = run_benchmark(&mut bench, 21, &clock);
        assert!(
            result.reached_target,
            "rnnt failed: 1-WER {} after {} epochs",
            result.quality, result.epochs
        );
    }
}
