//! Light-weight object detection: SSD on synthetic shapes to the mAP
//! threshold.

use crate::harness::Benchmark;
use crate::metrics::{mean_average_precision, DetectionEval};
use crate::suite::{BenchmarkId, SuiteVersion};
use mlperf_data::{epoch_batches, DetectionSample, ShapesConfig, SyntheticShapes};
use mlperf_models::{SsdConfig, SsdMini};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x2468_ace0;

/// The single-shot detection benchmark.
#[derive(Debug)]
pub struct SsdBenchmark {
    data_config: ShapesConfig,
    batch_size: usize,
    lr: f32,
    backend: BackendKind,
    data: Option<SyntheticShapes>,
    model: Option<SsdMini>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
    version: SuiteVersion,
}

impl SsdBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        SsdBenchmark {
            data_config: ShapesConfig::default(),
            batch_size: 16,
            lr: 0.004,
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
            version: SuiteVersion::V05,
        }
    }

    /// Runs against a different suite round's quality target (v0.6
    /// raised SSD's to 23.0 mAP — §6).
    pub fn with_version(mut self, version: SuiteVersion) -> Self {
        self.version = version;
        self
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for SsdBenchmark {
    fn default() -> Self {
        SsdBenchmark::new()
    }
}

impl Benchmark for SsdBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::ObjectDetection
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticShapes::generate(self.data_config, DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = SsdMini::new(
            SsdConfig {
                in_channels: 1,
                input_size: self.data_config.image_size,
                classes: 3,
                width: 8,
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, _epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let samples: Vec<&DetectionSample> = batch.iter().map(|&i| &data.train[i]).collect();
            opt.zero_grad();
            model.loss(&samples).backward();
            opt.step(self.lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let refs: Vec<&DetectionSample> = data.val.iter().collect();
        let images = SyntheticShapes::batch_images(&refs);
        let detections = model.detect(&images, 0.2);
        let evals: Vec<DetectionEval<'_>> = detections
            .iter()
            .zip(data.val.iter())
            .map(|(dets, sample)| DetectionEval { detections: dets, ground_truth: &sample.objects })
            .collect();
        mean_average_precision(&evals, 3, 0.5)
    }

    fn target(&self) -> f64 {
        self.id().quality_for(self.version).expect("ssd exists in every round").value
    }

    fn max_epochs(&self) -> usize {
        // The raised v0.6 target needs more headroom.
        match self.version {
            SuiteVersion::V05 => 35,
            SuiteVersion::V06 | SuiteVersion::V07 => 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_map_target() {
        let clock = RealClock::new();
        let mut bench = SsdBenchmark::new();
        let result = run_benchmark(&mut bench, 7, &clock);
        assert!(
            result.reached_target,
            "ssd failed: mAP {} after {} epochs (target {})",
            result.quality,
            result.epochs,
            bench.target()
        );
    }
}
