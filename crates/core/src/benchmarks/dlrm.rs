//! Recommendation (v0.7): DLRM on the synthetic click log to
//! AUC ≥ 0.8025.

use crate::harness::Benchmark;
use crate::suite::BenchmarkId;
use mlperf_data::{auc, epoch_batches, ClickLogConfig, Impression, SyntheticClickLog};
use mlperf_models::{DlrmConfig, DlrmMini};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer};
use mlperf_tensor::{default_backend, BackendKind, TensorRng};

const DATASET_SEED: u64 = 0x1c9d_44f7;

/// The click-through-rate recommendation benchmark.
#[derive(Debug)]
pub struct DlrmBenchmark {
    data_config: ClickLogConfig,
    batch_size: usize,
    lr: f32,
    embed_dim: usize,
    backend: BackendKind,
    data: Option<SyntheticClickLog>,
    model: Option<DlrmMini>,
    optimizer: Option<Adam>,
    data_rng: Option<TensorRng>,
}

impl DlrmBenchmark {
    /// Default (miniaturized) scale.
    pub fn new() -> Self {
        DlrmBenchmark {
            data_config: ClickLogConfig::default(),
            batch_size: 64,
            lr: 0.01,
            embed_dim: 8,
            backend: default_backend(),
            data: None,
            model: None,
            optimizer: None,
            data_rng: None,
        }
    }

    /// Pins the run to a tensor backend: the model's weights are minted
    /// on it, so every op in the training step inherits it by tag.
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }
}

impl Default for DlrmBenchmark {
    fn default() -> Self {
        DlrmBenchmark::new()
    }
}

impl Benchmark for DlrmBenchmark {
    fn id(&self) -> BenchmarkId {
        BenchmarkId::RecommendationDlrm
    }

    fn prepare(&mut self) {
        self.data = Some(SyntheticClickLog::generate(self.data_config.clone(), DATASET_SEED));
    }

    fn create_model(&mut self, seed: u64) {
        let mut rng = TensorRng::new(seed).with_backend(self.backend);
        let model = DlrmMini::new(
            DlrmConfig {
                dense_dim: self.data_config.dense_dim,
                categorical_vocabs: self.data_config.categorical_vocabs.clone(),
                bag_vocab: self.data_config.bag_vocab,
                embed_dim: self.embed_dim,
                ..Default::default()
            },
            &mut rng,
        );
        self.optimizer = Some(Adam::with_defaults(model.params()));
        self.model = Some(model);
        self.data_rng = Some(rng.split());
    }

    fn train_epoch(&mut self, _epoch: usize) {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let opt = self.optimizer.as_mut().expect("create_model not called");
        let rng = self.data_rng.as_mut().expect("create_model not called");
        for batch in epoch_batches(data.train.len(), self.batch_size, rng).iter() {
            let chunk: Vec<&Impression> = batch.iter().map(|&i| &data.train[i]).collect();
            opt.zero_grad();
            model.loss(&chunk).backward();
            opt.step(self.lr);
        }
    }

    fn evaluate(&mut self) -> f64 {
        let data = self.data.as_ref().expect("prepare not called");
        let model = self.model.as_ref().expect("create_model not called");
        let eval: Vec<&Impression> = data.eval.iter().collect();
        let labels: Vec<f32> = eval.iter().map(|i| i.label).collect();
        auc(&model.scores(&eval), &labels)
    }

    fn target(&self) -> f64 {
        self.id().spec().quality.value
    }

    fn max_epochs(&self) -> usize {
        48
    }

    fn hyperparameters(&self) -> Vec<(String, f64)> {
        vec![
            ("batch_size".into(), self.batch_size as f64),
            ("learning_rate".into(), self.lr as f64),
            ("embedding_dim".into(), self.embed_dim as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_benchmark;
    use crate::timing::RealClock;

    #[test]
    fn reaches_auc_target() {
        let clock = RealClock::new();
        let mut bench = DlrmBenchmark::new();
        let result = run_benchmark(&mut bench, 21, &clock);
        assert!(
            result.reached_target,
            "dlrm failed: AUC {} after {} epochs",
            result.quality, result.epochs
        );
    }
}
