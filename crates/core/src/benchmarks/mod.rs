//! The seven concrete benchmark implementations — Table 1 wired into
//! the [`crate::harness::Benchmark`] trait.
//!
//! Each follows the same lifecycle: `prepare` generates the (seeded,
//! fixed) synthetic dataset and performs the one-time reformatting,
//! `create_model` builds the reference model from the *run* seed, and
//! `train_epoch`/`evaluate` run the reference training procedure until
//! the Table 1 quality threshold is reached.
//!
//! Dataset seeds are fixed constants — the dataset plays the role of
//! ImageNet/COCO/WMT: identical for every run and every submitter. The
//! run seed controls weight initialization and data traversal only,
//! exactly the stochasticity §2.2.3 studies.

mod gnmt;
mod maskrcnn;
mod minigo;
mod ncf;
mod resnet;
mod ssd;
mod transformer;

pub use gnmt::GnmtBenchmark;
pub use maskrcnn::MaskRcnnBenchmark;
pub use minigo::MiniGoBenchmark;
pub use ncf::NcfBenchmark;
pub use resnet::ResNetBenchmark;
pub use ssd::SsdBenchmark;
pub use transformer::TransformerBenchmark;

use crate::harness::Benchmark;
use crate::suite::BenchmarkId;

/// Builds the default-scale implementation of any suite benchmark.
pub fn build(id: BenchmarkId) -> Box<dyn Benchmark> {
    match id {
        BenchmarkId::ImageClassification => Box::new(ResNetBenchmark::new()),
        BenchmarkId::ObjectDetection => Box::new(SsdBenchmark::new()),
        BenchmarkId::InstanceSegmentation => Box::new(MaskRcnnBenchmark::new()),
        BenchmarkId::TranslationRecurrent => Box::new(GnmtBenchmark::new()),
        BenchmarkId::TranslationNonRecurrent => Box::new(TransformerBenchmark::new()),
        BenchmarkId::Recommendation => Box::new(NcfBenchmark::new()),
        BenchmarkId::ReinforcementLearning => Box::new(MiniGoBenchmark::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_covers_all_ids() {
        for id in BenchmarkId::ALL {
            let b = build(id);
            assert_eq!(b.id(), id);
            assert!(b.target() > 0.0);
            assert!(b.max_epochs() > 0);
        }
    }
}
