//! The concrete benchmark implementations — Table 1 (and the v0.7
//! additions) wired into the [`crate::harness::Benchmark`] trait.
//!
//! Each follows the same lifecycle: `prepare` generates the (seeded,
//! fixed) synthetic dataset and performs the one-time reformatting,
//! `create_model` builds the reference model from the *run* seed, and
//! `train_epoch`/`evaluate` run the reference training procedure until
//! the Table 1 quality threshold is reached.
//!
//! Dataset seeds are fixed constants — the dataset plays the role of
//! ImageNet/COCO/WMT: identical for every run and every submitter. The
//! run seed controls weight initialization and data traversal only,
//! exactly the stochasticity §2.2.3 studies.

mod bert;
mod dlrm;
mod gnmt;
mod maskrcnn;
mod minigo;
mod ncf;
mod resnet;
mod rnnt;
mod ssd;
mod transformer;

pub use bert::BertBenchmark;
pub use dlrm::DlrmBenchmark;
pub use gnmt::GnmtBenchmark;
pub use maskrcnn::MaskRcnnBenchmark;
pub use minigo::MiniGoBenchmark;
pub use ncf::NcfBenchmark;
pub use resnet::ResNetBenchmark;
pub use rnnt::RnnTBenchmark;
pub use ssd::SsdBenchmark;
pub use transformer::TransformerBenchmark;

use crate::harness::Benchmark;
use crate::suite::BenchmarkId;
use mlperf_tensor::BackendKind;

/// Builds the default-scale implementation of any suite benchmark.
pub fn build(id: BenchmarkId) -> Box<dyn Benchmark> {
    match id {
        BenchmarkId::ImageClassification => Box::new(ResNetBenchmark::new()),
        BenchmarkId::ObjectDetection => Box::new(SsdBenchmark::new()),
        BenchmarkId::InstanceSegmentation => Box::new(MaskRcnnBenchmark::new()),
        BenchmarkId::TranslationRecurrent => Box::new(GnmtBenchmark::new()),
        BenchmarkId::TranslationNonRecurrent => Box::new(TransformerBenchmark::new()),
        BenchmarkId::Recommendation => Box::new(NcfBenchmark::new()),
        BenchmarkId::ReinforcementLearning => Box::new(MiniGoBenchmark::new()),
        BenchmarkId::LanguageModeling => Box::new(BertBenchmark::new()),
        BenchmarkId::RecommendationDlrm => Box::new(DlrmBenchmark::new()),
        BenchmarkId::SpeechRecognition => Box::new(RnnTBenchmark::new()),
    }
}

/// Builds the default-scale implementation pinned to a tensor backend,
/// independent of the process default (safe under concurrent tests).
pub fn build_on(id: BenchmarkId, backend: BackendKind) -> Box<dyn Benchmark> {
    match id {
        BenchmarkId::ImageClassification => Box::new(ResNetBenchmark::new().with_backend(backend)),
        BenchmarkId::ObjectDetection => Box::new(SsdBenchmark::new().with_backend(backend)),
        BenchmarkId::InstanceSegmentation => {
            Box::new(MaskRcnnBenchmark::new().with_backend(backend))
        }
        BenchmarkId::TranslationRecurrent => Box::new(GnmtBenchmark::new().with_backend(backend)),
        BenchmarkId::TranslationNonRecurrent => {
            Box::new(TransformerBenchmark::new().with_backend(backend))
        }
        BenchmarkId::Recommendation => Box::new(NcfBenchmark::new().with_backend(backend)),
        BenchmarkId::ReinforcementLearning => {
            Box::new(MiniGoBenchmark::new().with_backend(backend))
        }
        BenchmarkId::LanguageModeling => Box::new(BertBenchmark::new().with_backend(backend)),
        BenchmarkId::RecommendationDlrm => Box::new(DlrmBenchmark::new().with_backend(backend)),
        BenchmarkId::SpeechRecognition => Box::new(RnnTBenchmark::new().with_backend(backend)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full convergence runs on both backends; run in the release CI step"]
    fn blocked_backend_converges_identically() {
        // The Blocked backend preserves per-element summation order, so
        // for the (finite) tensors these workloads produce, whole runs
        // — every weight update, every eval — are bit-identical to
        // Reference: same quality, same epochs-to-target.
        use crate::harness::run_benchmark;
        use crate::timing::RealClock;
        let clock = RealClock::new();
        for id in [BenchmarkId::LanguageModeling, BenchmarkId::RecommendationDlrm] {
            let mut reference = build_on(id, BackendKind::Reference);
            let mut blocked = build_on(id, BackendKind::Blocked);
            let r = run_benchmark(reference.as_mut(), 21, &clock);
            let b = run_benchmark(blocked.as_mut(), 21, &clock);
            assert!(r.reached_target, "{id}: reference run missed its target");
            assert!(b.reached_target, "{id}: blocked run missed its target");
            assert_eq!(r.quality, b.quality, "{id}: converged quality diverged across backends");
            assert_eq!(r.epochs, b.epochs, "{id}: epochs-to-target diverged across backends");
        }
    }

    #[test]
    fn build_covers_all_ids() {
        for id in BenchmarkId::ALL {
            let b = build(id);
            assert_eq!(b.id(), id);
            assert!(b.target() > 0.0);
            assert!(b.max_epochs() > 0);
        }
    }

    #[test]
    fn v07_workloads_vary_run_to_run() {
        // §3.2.2: epochs-to-target varies with the run seed while every
        // run still converges — the motivation for requiring multiple
        // runs and dropping the fastest and slowest before averaging.
        use crate::aggregate::olympic_mean;
        use crate::harness::run_benchmark_set;
        let seeds = [1u64, 2, 3, 4];
        for id in [
            BenchmarkId::LanguageModeling,
            BenchmarkId::RecommendationDlrm,
            BenchmarkId::SpeechRecognition,
        ] {
            let results = run_benchmark_set(|| build(id), &seeds);
            assert!(results.iter().all(|r| r.reached_target), "{id}: a run missed its target");
            let epochs: Vec<usize> = results.iter().map(|r| r.epochs).collect();
            assert!(
                epochs.iter().any(|&e| e != epochs[0]),
                "{id}: no run-to-run variance in epochs-to-target {epochs:?}"
            );
            let times: Vec<f64> = results.iter().map(|r| r.time_to_train.as_secs_f64()).collect();
            let score = olympic_mean(&times);
            let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(lo <= score && score <= hi, "{id}: olympic mean outside run-time range");
        }
    }
}
