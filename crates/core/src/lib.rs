//! The MLPerf Training benchmark methodology — the paper's primary
//! contribution, reproduced end to end.
//!
//! This crate implements everything §3 and §4 of the paper specify:
//!
//! - [`suite`] — the benchmark suite of Table 1: seven tasks with
//!   datasets, models and quality thresholds, plus per-task run-count
//!   requirements;
//! - [`metrics`] — the quality metrics the thresholds are stated in
//!   (top-1 accuracy, mAP for boxes and masks, BLEU, HR@10, move-match
//!   percentage);
//! - [`timing`] — the time-to-train clock with the paper's exclusions
//!   (system init, model creation up to a cap, one-time data
//!   reformatting) — §3.2.1;
//! - [`harness`] — the [`harness::Benchmark`] trait and the
//!   [`harness::run_benchmark`] driver that times a full training
//!   session to its quality target;
//! - [`aggregate`] — the result stabilization rules of §3.2.2 (5 runs
//!   for vision, 10 otherwise; drop fastest and slowest; arithmetic
//!   mean of the rest);
//! - [`mllog`] — structured submission logging, and [`compliance`] —
//!   the rule checker run over submission logs during review (§4.1);
//! - [`equivalence`] — Closed-division architecture-fingerprint
//!   checking (§4.2.1 workload equivalence);
//! - [`rules`] — divisions (Closed/Open), system categories
//!   (Available/Preview/Research), hyperparameter restrictions and
//!   borrowing (§3.4, §4.2);
//! - [`recommend`] — the §6 future-work table mapping system scale to
//!   recommended hyperparameters;
//! - [`report`] — result reporting without a summary score (§4.2.4);
//! - [`benchmarks`] — the seven concrete benchmark implementations
//!   wiring `mlperf-models` and `mlperf-data` into the harness.

#![warn(missing_docs)]

pub mod aggregate;
pub mod benchmarks;
pub mod compliance;
pub mod equivalence;
pub mod harness;
pub mod metrics;
pub mod mllog;
pub mod recommend;
pub mod report;
pub mod rules;
pub mod suite;
pub mod timing;
