//! Recommended hyperparameters by system scale — §6 lists "producing a
//! table that maps system scale and precision to recommended
//! hyperparameters for each benchmark" as planned future work. This
//! module implements that table for the reproduction's suite, encoding
//! the scaling folklore the paper cites: the linear learning-rate rule
//! (Goyal et al.), warmup growing with batch size, and switching to
//! LARS once the batch outgrows plain momentum SGD (the v0.6 ResNet
//! rule change).

use crate::suite::BenchmarkId;
use mlperf_optim::linear_scaled_lr;
use serde::{Deserialize, Serialize};

/// The optimizer family a scale calls for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecommendedOptimizer {
    /// Plain SGD with momentum.
    SgdMomentum,
    /// Layer-wise adaptive rate scaling (large-batch vision).
    Lars,
    /// Adam (attention/embedding-dominated workloads).
    Adam,
}

impl std::fmt::Display for RecommendedOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecommendedOptimizer::SgdMomentum => "sgd+momentum",
            RecommendedOptimizer::Lars => "lars",
            RecommendedOptimizer::Adam => "adam",
        })
    }
}

/// A row of the scale → hyperparameters table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The benchmark.
    pub benchmark: BenchmarkId,
    /// Global minibatch size.
    pub batch: usize,
    /// Peak learning rate.
    pub learning_rate: f64,
    /// Warmup length in epochs.
    pub warmup_epochs: f64,
    /// Which optimizer to use at this scale.
    pub optimizer: RecommendedOptimizer,
}

/// Per-benchmark reference points the scaling rules start from
/// (matching the miniaturized reference implementations).
fn reference_point(id: BenchmarkId) -> (usize, f64, RecommendedOptimizer) {
    match id {
        BenchmarkId::ImageClassification => (32, 0.08, RecommendedOptimizer::SgdMomentum),
        BenchmarkId::ObjectDetection => (16, 0.004, RecommendedOptimizer::Adam),
        BenchmarkId::InstanceSegmentation => (8, 0.004, RecommendedOptimizer::Adam),
        BenchmarkId::TranslationRecurrent => (32, 0.012, RecommendedOptimizer::Adam),
        BenchmarkId::TranslationNonRecurrent => (32, 0.01, RecommendedOptimizer::Adam),
        BenchmarkId::Recommendation => (64, 0.01, RecommendedOptimizer::Adam),
        BenchmarkId::ReinforcementLearning => (32, 0.005, RecommendedOptimizer::Adam),
        BenchmarkId::LanguageModeling => (16, 0.008, RecommendedOptimizer::Adam),
        BenchmarkId::RecommendationDlrm => (64, 0.01, RecommendedOptimizer::Adam),
        BenchmarkId::SpeechRecognition => (16, 0.006, RecommendedOptimizer::Adam),
    }
}

/// The batch size beyond which the vision benchmarks should switch from
/// momentum SGD to LARS (in units of the reference batch).
const LARS_SWITCH_FACTOR: usize = 32;

/// Recommends hyperparameters for running `id` at global batch size
/// `batch`.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn recommend(id: BenchmarkId, batch: usize) -> Recommendation {
    assert!(batch > 0, "batch must be positive");
    let (ref_batch, ref_lr, base_opt) = reference_point(id);
    // Linear LR scaling, softened to sqrt for Adam workloads (the
    // common practice for adaptive optimizers).
    let learning_rate = match base_opt {
        RecommendedOptimizer::SgdMomentum | RecommendedOptimizer::Lars => {
            linear_scaled_lr(ref_lr as f32, batch, ref_batch) as f64
        }
        RecommendedOptimizer::Adam => ref_lr * ((batch as f64 / ref_batch as f64).sqrt()),
    };
    // Warmup grows logarithmically with the scale-up factor.
    let factor = (batch as f64 / ref_batch as f64).max(1.0);
    let warmup_epochs = if factor <= 1.0 { 0.0 } else { factor.log2().ceil() };
    // Large-batch vision switches to LARS.
    let optimizer = if id.is_vision()
        && base_opt == RecommendedOptimizer::SgdMomentum
        && batch >= ref_batch * LARS_SWITCH_FACTOR
    {
        RecommendedOptimizer::Lars
    } else {
        base_opt
    };
    Recommendation { benchmark: id, batch, learning_rate, warmup_epochs, optimizer }
}

/// The full table over a standard set of scales (the §6 deliverable).
pub fn recommendation_table(scales: &[usize]) -> Vec<Recommendation> {
    let mut out = Vec::new();
    for id in BenchmarkId::ALL {
        for &s in scales {
            let (ref_batch, _, _) = reference_point(id);
            out.push(recommend(id, ref_batch * s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_scales_linearly_for_sgd_benchmarks() {
        let base = recommend(BenchmarkId::ImageClassification, 32);
        let big = recommend(BenchmarkId::ImageClassification, 128);
        assert!((big.learning_rate / base.learning_rate - 4.0).abs() < 1e-6);
    }

    #[test]
    fn lr_scales_sqrt_for_adam_benchmarks() {
        let base = recommend(BenchmarkId::Recommendation, 64);
        let big = recommend(BenchmarkId::Recommendation, 256);
        assert!((big.learning_rate / base.learning_rate - 2.0).abs() < 1e-6);
    }

    #[test]
    fn lars_kicks_in_at_large_batch_for_resnet_only() {
        let small = recommend(BenchmarkId::ImageClassification, 256);
        assert_eq!(small.optimizer, RecommendedOptimizer::SgdMomentum);
        let large = recommend(BenchmarkId::ImageClassification, 32 * 64);
        assert_eq!(large.optimizer, RecommendedOptimizer::Lars);
        // Adam workloads never switch.
        let t = recommend(BenchmarkId::TranslationNonRecurrent, 32 * 1024);
        assert_eq!(t.optimizer, RecommendedOptimizer::Adam);
    }

    #[test]
    fn warmup_grows_with_scale() {
        let r1 = recommend(BenchmarkId::ImageClassification, 32);
        let r2 = recommend(BenchmarkId::ImageClassification, 32 * 16);
        assert_eq!(r1.warmup_epochs, 0.0);
        assert_eq!(r2.warmup_epochs, 4.0);
    }

    #[test]
    fn table_covers_all_benchmarks_and_scales() {
        let table = recommendation_table(&[1, 4, 16, 64]);
        assert_eq!(table.len(), BenchmarkId::ALL.len() * 4);
        assert!(table.iter().all(|r| r.learning_rate > 0.0));
        // Monotone lr within each benchmark.
        for id in BenchmarkId::ALL {
            let rows: Vec<&Recommendation> = table.iter().filter(|r| r.benchmark == id).collect();
            for w in rows.windows(2) {
                assert!(w[1].learning_rate >= w[0].learning_rate, "{id}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        recommend(BenchmarkId::Recommendation, 0);
    }
}
