//! Closed-division workload equivalence (§4.2.1).
//!
//! "The Closed division … strives to ensure workload equivalence by
//! requiring submissions to be equivalent to reference implementations.
//! Equivalence includes mathematically equivalent network
//! implementations, parameter initialization, optimizer and training
//! schedule…"
//!
//! Full mathematical equivalence is undecidable in general; what the
//! real suite's reviewers check is the *architecture fingerprint*: the
//! ordered list of parameter tensors and their shapes, which pins down
//! layer structure, widths and counts. This module extracts that
//! fingerprint from any [`Module`] and compares it against the
//! reference model for each benchmark.

use crate::suite::BenchmarkId;
use mlperf_nn::Module;
use mlperf_tensor::TensorRng;
use serde::{Deserialize, Serialize};

/// The architecture fingerprint of a model: its parameter shapes in
/// declaration order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSignature {
    shapes: Vec<Vec<usize>>,
}

impl ModelSignature {
    /// Extracts the signature of any module.
    pub fn of(model: &dyn Module) -> Self {
        ModelSignature { shapes: model.params().iter().map(|p| p.shape()).collect() }
    }

    /// Builds a signature from raw parameter shapes, for submission
    /// bundles that carry a fingerprint without the model behind it.
    pub fn from_shapes(shapes: Vec<Vec<usize>>) -> Self {
        ModelSignature { shapes }
    }

    /// Number of parameter tensors.
    pub fn num_tensors(&self) -> usize {
        self.shapes.len()
    }

    /// Total scalar parameters.
    pub fn num_params(&self) -> usize {
        self.shapes.iter().map(|s| s.iter().product::<usize>()).sum()
    }

    /// The parameter shapes in order.
    pub fn shapes(&self) -> &[Vec<usize>] {
        &self.shapes
    }
}

/// How a submitted model differs from the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceIssue {
    /// Different number of parameter tensors (layers added/removed).
    TensorCountMismatch {
        /// Reference tensor count.
        reference: usize,
        /// Submitted tensor count.
        submitted: usize,
    },
    /// A tensor's shape differs (width/kernel change).
    ShapeMismatch {
        /// Index of the mismatching tensor.
        index: usize,
        /// Reference shape.
        reference: Vec<usize>,
        /// Submitted shape.
        submitted: Vec<usize>,
    },
}

impl Serialize for EquivalenceIssue {
    fn to_value(&self) -> serde_json::Value {
        match self {
            EquivalenceIssue::TensorCountMismatch { reference, submitted } => serde_json::json!({
                "TensorCountMismatch": {"reference": reference, "submitted": submitted}
            }),
            EquivalenceIssue::ShapeMismatch { index, reference, submitted } => serde_json::json!({
                "ShapeMismatch": {"index": index, "reference": reference, "submitted": submitted}
            }),
        }
    }
}

impl Deserialize for EquivalenceIssue {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::de::Error> {
        use crate::compliance::{variant_field, variant_parts};
        let (tag, body) = variant_parts(v)?;
        match tag {
            "TensorCountMismatch" => Ok(EquivalenceIssue::TensorCountMismatch {
                reference: variant_field(body, "reference")?,
                submitted: variant_field(body, "submitted")?,
            }),
            "ShapeMismatch" => Ok(EquivalenceIssue::ShapeMismatch {
                index: variant_field(body, "index")?,
                reference: variant_field(body, "reference")?,
                submitted: variant_field(body, "submitted")?,
            }),
            other => {
                Err(serde::de::Error::custom(format!("unknown EquivalenceIssue variant `{other}`")))
            }
        }
    }
}

impl std::fmt::Display for EquivalenceIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceIssue::TensorCountMismatch { reference, submitted } => write!(
                f,
                "parameter tensor count differs: reference {reference}, submitted {submitted}"
            ),
            EquivalenceIssue::ShapeMismatch { index, reference, submitted } => write!(
                f,
                "parameter {index} shape differs: reference {reference:?}, submitted {submitted:?}"
            ),
        }
    }
}

/// Compares a submission's signature against a reference signature.
/// Empty result = architecturally equivalent.
pub fn check_equivalence(
    reference: &ModelSignature,
    submitted: &ModelSignature,
) -> Vec<EquivalenceIssue> {
    let mut issues = Vec::new();
    if reference.num_tensors() != submitted.num_tensors() {
        issues.push(EquivalenceIssue::TensorCountMismatch {
            reference: reference.num_tensors(),
            submitted: submitted.num_tensors(),
        });
        return issues;
    }
    for (index, (r, s)) in reference.shapes.iter().zip(submitted.shapes.iter()).enumerate() {
        if r != s {
            issues.push(EquivalenceIssue::ShapeMismatch {
                index,
                reference: r.clone(),
                submitted: s.clone(),
            });
        }
    }
    issues
}

/// The reference signature for a benchmark: the fingerprint of the
/// reference model exactly as the default-scale benchmark builds it.
/// (Initialization seeds do not affect the fingerprint — only shapes.)
pub fn reference_signature(id: BenchmarkId) -> ModelSignature {
    let mut rng = TensorRng::new(0);
    match id {
        BenchmarkId::ImageClassification => {
            let cfg = mlperf_data::ImageNetConfig::default();
            ModelSignature::of(&mlperf_models::ResNetMini::new(
                mlperf_models::ResNetConfig {
                    in_channels: cfg.channels,
                    input_size: cfg.image_size,
                    classes: cfg.classes,
                    base_width: 8,
                    blocks_per_stage: 1,
                },
                &mut rng,
            ))
        }
        BenchmarkId::ObjectDetection => ModelSignature::of(&mlperf_models::SsdMini::new(
            mlperf_models::SsdConfig::default(),
            &mut rng,
        )),
        BenchmarkId::InstanceSegmentation => ModelSignature::of(&mlperf_models::MaskRcnnMini::new(
            mlperf_models::MaskRcnnConfig { proposals: 3, ..Default::default() },
            &mut rng,
        )),
        BenchmarkId::TranslationRecurrent => {
            let data = mlperf_data::TranslationConfig::default();
            ModelSignature::of(&mlperf_models::GnmtMini::new(
                mlperf_models::GnmtConfig {
                    vocab: data.vocab,
                    max_len: data.max_len + 2,
                    embed_dim: 24,
                    hidden: 48,
                },
                &mut rng,
            ))
        }
        BenchmarkId::TranslationNonRecurrent => {
            let data = mlperf_data::TranslationConfig::default();
            ModelSignature::of(&mlperf_models::TransformerMini::new(
                mlperf_models::TransformerConfig {
                    vocab: data.vocab,
                    max_len: data.max_len + 2,
                    ..Default::default()
                },
                &mut rng,
            ))
        }
        BenchmarkId::Recommendation => {
            let data = mlperf_data::CfConfig::default();
            ModelSignature::of(&mlperf_models::Ncf::new(
                mlperf_models::NcfConfig {
                    users: data.users,
                    items: data.items,
                    ..Default::default()
                },
                &mut rng,
            ))
        }
        BenchmarkId::ReinforcementLearning => ModelSignature::of(&mlperf_models::MiniGoNet::new(
            mlperf_models::MiniGoConfig::default(),
            &mut rng,
        )),
        BenchmarkId::LanguageModeling => {
            let data = mlperf_data::MaskedLmConfig::default();
            ModelSignature::of(&mlperf_models::BertMini::new(
                mlperf_models::BertConfig {
                    vocab: data.vocab,
                    max_len: data.sentence_len(),
                    ..Default::default()
                },
                &mut rng,
            ))
        }
        BenchmarkId::RecommendationDlrm => {
            let data = mlperf_data::ClickLogConfig::default();
            ModelSignature::of(&mlperf_models::DlrmMini::new(
                mlperf_models::DlrmConfig {
                    dense_dim: data.dense_dim,
                    categorical_vocabs: data.categorical_vocabs.clone(),
                    bag_vocab: data.bag_vocab,
                    ..Default::default()
                },
                &mut rng,
            ))
        }
        BenchmarkId::SpeechRecognition => {
            let data = mlperf_data::SpeechConfig::default();
            ModelSignature::of(&mlperf_models::RnnTMini::new(
                mlperf_models::RnnTConfig {
                    frame_dim: data.frame_dim,
                    classes: data.classes(),
                    ..Default::default()
                },
                &mut rng,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reference_signature_is_nonempty() {
        for id in BenchmarkId::ALL {
            let sig = reference_signature(id);
            assert!(sig.num_tensors() > 0, "{id}");
            assert!(sig.num_params() > 0, "{id}");
        }
    }

    #[test]
    fn reference_signatures_are_distinct() {
        let sigs: Vec<ModelSignature> =
            BenchmarkId::ALL.iter().map(|&id| reference_signature(id)).collect();
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "benchmarks {i} and {j} share a signature");
            }
        }
    }

    #[test]
    fn signature_independent_of_init_seed() {
        let mut r1 = TensorRng::new(1);
        let mut r2 = TensorRng::new(999);
        let a = ModelSignature::of(&mlperf_models::MiniGoNet::new(
            mlperf_models::MiniGoConfig::default(),
            &mut r1,
        ));
        let b = ModelSignature::of(&mlperf_models::MiniGoNet::new(
            mlperf_models::MiniGoConfig::default(),
            &mut r2,
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn matching_model_passes() {
        let reference = reference_signature(BenchmarkId::ReinforcementLearning);
        let mut rng = TensorRng::new(5);
        let candidate =
            mlperf_models::MiniGoNet::new(mlperf_models::MiniGoConfig::default(), &mut rng);
        assert!(check_equivalence(&reference, &ModelSignature::of(&candidate)).is_empty());
    }

    #[test]
    fn widened_model_flagged() {
        let reference = reference_signature(BenchmarkId::ReinforcementLearning);
        let mut rng = TensorRng::new(5);
        let widened = mlperf_models::MiniGoNet::new(
            mlperf_models::MiniGoConfig { width: 32, ..Default::default() },
            &mut rng,
        );
        let issues = check_equivalence(&reference, &ModelSignature::of(&widened));
        assert!(!issues.is_empty());
        assert!(matches!(issues[0], EquivalenceIssue::ShapeMismatch { .. }));
    }

    #[test]
    fn different_architecture_flagged_by_count() {
        let resnet = reference_signature(BenchmarkId::ImageClassification);
        let ncf = reference_signature(BenchmarkId::Recommendation);
        let issues = check_equivalence(&resnet, &ncf);
        assert!(matches!(issues[0], EquivalenceIssue::TensorCountMismatch { .. }));
    }

    #[test]
    fn display_messages_are_informative() {
        let issue = EquivalenceIssue::ShapeMismatch {
            index: 3,
            reference: vec![8, 4, 3, 3],
            submitted: vec![16, 4, 3, 3],
        };
        let msg = issue.to_string();
        assert!(msg.contains("parameter 3"));
        assert!(msg.contains("[8, 4, 3, 3]"));
    }
}
