//! The time-to-train harness: drives a [`Benchmark`] through the
//! lifecycle of §3.2 — untimed preparation, untimed (capped) model
//! creation, then timed epochs with periodic evaluation until the
//! quality target is reached — while emitting the structured log of
//! §4.1.

use crate::mllog::{keys, MlLogger};
use crate::suite::BenchmarkId;
use crate::timing::{Clock, RunTimer};
use mlperf_telemetry::{arg, Telemetry};
use serde_json::{json, Map};
use std::time::Duration;

/// A trainable workload the harness can time.
///
/// Implementations live in [`crate::benchmarks`] — one per Table 1 row.
/// The lifecycle methods are called in order: [`Benchmark::prepare`]
/// (untimed), [`Benchmark::create_model`] (untimed up to the cap), then
/// alternating [`Benchmark::train_epoch`] / [`Benchmark::evaluate`]
/// inside the timed region.
pub trait Benchmark {
    /// Which suite row this is.
    fn id(&self) -> BenchmarkId;

    /// Untimed one-time data generation / reformatting.
    fn prepare(&mut self);

    /// Untimed model creation and initialization for a run seed.
    fn create_model(&mut self, seed: u64);

    /// One timed training epoch (0-based).
    fn train_epoch(&mut self, epoch: usize);

    /// Timed evaluation on held-out data; returns the quality metric.
    fn evaluate(&mut self) -> f64;

    /// The quality threshold that stops the clock.
    fn target(&self) -> f64;

    /// Epoch budget after which the run is declared failed.
    fn max_epochs(&self) -> usize;

    /// The hyperparameter choices this run uses, recorded into the
    /// submission log (§4.1) and validated against the Closed-division
    /// rules during review. The default is an empty list.
    fn hyperparameters(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// The outcome of one timed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which benchmark ran.
    pub benchmark: BenchmarkId,
    /// The run's seed.
    pub seed: u64,
    /// Official time-to-train (timed region + over-cap model creation).
    pub time_to_train: Duration,
    /// Time excluded under the §3.2.1 rules.
    pub excluded: Duration,
    /// Epochs executed.
    pub epochs: usize,
    /// Final quality achieved.
    pub quality: f64,
    /// Whether the target was reached within the epoch budget.
    pub reached_target: bool,
    /// Quality after each evaluation, in epoch order.
    pub quality_history: Vec<f64>,
    /// The structured submission log.
    pub log: MlLogger,
}

/// Runs one complete timed training session under the paper's rules.
pub fn run_benchmark(bench: &mut dyn Benchmark, seed: u64, clock: &dyn Clock) -> RunResult {
    run_benchmark_with(bench, seed, clock, &Telemetry::disabled())
}

/// [`run_benchmark`] with instrumentation: emits one `harness`-layer
/// span per lifecycle stage (`prepare`, `create_model`, each `epoch`
/// and `eval`) under a root `run` span, all timestamped from the run's
/// own `clock`, plus `harness.*` counters. With a disabled handle this
/// is exactly [`run_benchmark`]: no spans, no clock reads beyond the
/// timer's.
pub fn run_benchmark_with(
    bench: &mut dyn Benchmark,
    seed: u64,
    clock: &dyn Clock,
    telemetry: &Telemetry,
) -> RunResult {
    let mut logger = MlLogger::new();
    let mut timer = RunTimer::new(clock);
    let log_time = |logger: &mut MlLogger, clock: &dyn Clock| {
        logger.set_time_ms(clock.now().as_millis() as u64);
    };
    let slug = bench.id().slug();
    let mut scope = telemetry.scope(clock);
    let run_span = scope.start_with("harness", "run", || {
        Map::from([arg("benchmark", json!(slug)), arg("seed", json!(seed))])
    });
    telemetry.counter("harness.runs").incr();

    log_time(&mut logger, clock);
    logger.log(keys::SUBMISSION_BENCHMARK, json!(bench.id().slug()));
    logger.log(keys::SEED, json!(seed));
    logger.log(keys::QUALITY_TARGET, json!(bench.target()));
    for (name, value) in bench.hyperparameters() {
        logger.log(keys::HYPERPARAMETER, json!({"name": name, "value": value}));
    }

    // Untimed: system init + data preparation/reformatting.
    logger.log(keys::INIT_START, json!(null));
    timer.begin_reformatting();
    scope.record("harness", "prepare", || bench.prepare());
    // Untimed (capped): model creation.
    timer.begin_model_creation();
    scope.record("harness", "create_model", || bench.create_model(seed));
    log_time(&mut logger, clock);
    logger.log(keys::INIT_STOP, json!(null));

    // Timed region: begins when training data is first touched.
    timer.begin_timed();
    log_time(&mut logger, clock);
    logger.log(keys::RUN_START, json!(null));
    let target = bench.target();
    let epoch_counter = telemetry.counter("harness.epochs");
    let mut quality = f64::NEG_INFINITY;
    let mut history = Vec::new();
    let mut epochs = 0;
    let mut reached = false;
    while epochs < bench.max_epochs() {
        log_time(&mut logger, clock);
        logger.log(keys::EPOCH_START, json!(epochs));
        let epoch_span =
            scope.start_with("harness", "epoch", || Map::from([arg("epoch", json!(epochs))]));
        bench.train_epoch(epochs);
        scope.end(epoch_span);
        epoch_counter.incr();
        log_time(&mut logger, clock);
        logger.log(keys::EPOCH_STOP, json!(epochs));
        let eval_span = scope.start("harness", "eval");
        quality = bench.evaluate();
        scope.end_with(eval_span, || Map::from([arg("quality", json!(quality))]));
        history.push(quality);
        log_time(&mut logger, clock);
        logger.log(keys::EVAL_ACCURACY, json!(quality));
        epochs += 1;
        if quality >= target {
            reached = true;
            break;
        }
    }
    timer.stop();
    log_time(&mut logger, clock);
    logger.log(keys::RUN_STOP, json!({"status": if reached { "success" } else { "aborted" }}));
    if reached {
        telemetry.counter("harness.epochs_to_target").add(epochs as u64);
    }
    scope.end_with(run_span, || {
        Map::from([
            arg("epochs", json!(epochs)),
            arg("quality", json!(quality)),
            arg("reached_target", json!(reached)),
        ])
    });

    RunResult {
        benchmark: bench.id(),
        seed,
        time_to_train: timer.time_to_train(),
        excluded: timer.excluded(),
        epochs,
        quality,
        reached_target: reached,
        quality_history: history,
        log: logger,
    }
}

/// Runs one timed session per seed, in parallel (one OS thread per
/// run — each run builds its own model, graph and clock, exactly as
/// independent submission runs would on separate machines). Results are
/// returned in seed order.
///
/// `make` is called once per run on the run's own thread.
pub fn run_benchmark_set<F>(make: F, seeds: &[u64]) -> Vec<RunResult>
where
    F: Fn() -> Box<dyn Benchmark> + Sync,
{
    run_benchmark_set_with(make, seeds, &Telemetry::disabled())
}

/// [`run_benchmark_set`] with instrumentation: every run's spans land
/// in the shared `telemetry` sink, each on its own track, with each
/// run's per-thread clock aligned onto the sink timeline.
pub fn run_benchmark_set_with<F>(make: F, seeds: &[u64], telemetry: &Telemetry) -> Vec<RunResult>
where
    F: Fn() -> Box<dyn Benchmark> + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let make = &make;
                scope.spawn(move || {
                    let mut bench = make();
                    let clock = crate::timing::RealClock::new();
                    run_benchmark_with(bench.as_mut(), seed, &clock, telemetry)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("benchmark run thread panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::SimClock;

    /// A scripted benchmark whose quality follows a fixed curve and
    /// whose stages advance a [`SimClock`].
    struct Scripted {
        clock: SimClock,
        curve: Vec<f64>,
        target: f64,
        prepare_secs: u64,
        create_secs: u64,
        epoch_secs: u64,
        prepared: bool,
        created: bool,
        epoch: usize,
    }

    impl Scripted {
        fn new(clock: SimClock, curve: Vec<f64>, target: f64) -> Self {
            Scripted {
                clock,
                curve,
                target,
                prepare_secs: 100,
                create_secs: 50,
                epoch_secs: 10,
                prepared: false,
                created: false,
                epoch: 0,
            }
        }
    }

    impl Benchmark for Scripted {
        fn id(&self) -> BenchmarkId {
            BenchmarkId::Recommendation
        }
        fn prepare(&mut self) {
            self.clock.advance(Duration::from_secs(self.prepare_secs));
            self.prepared = true;
        }
        fn create_model(&mut self, _seed: u64) {
            assert!(self.prepared, "create_model before prepare");
            self.clock.advance(Duration::from_secs(self.create_secs));
            self.created = true;
        }
        fn train_epoch(&mut self, epoch: usize) {
            assert!(self.created, "train before create_model");
            assert_eq!(epoch, self.epoch, "epochs must be sequential");
            self.clock.advance(Duration::from_secs(self.epoch_secs));
            self.epoch += 1;
        }
        fn evaluate(&mut self) -> f64 {
            self.curve[(self.epoch - 1).min(self.curve.len() - 1)]
        }
        fn target(&self) -> f64 {
            self.target
        }
        fn max_epochs(&self) -> usize {
            20
        }
    }

    #[test]
    fn stops_at_target_and_excludes_preparation() {
        let clock = SimClock::new();
        let bench = Scripted::new(clock.clone(), vec![0.1, 0.3, 0.62, 0.64, 0.9], 0.635);
        let mut bench = bench;
        let result = run_benchmark(&mut bench, 7, &clock);
        assert!(result.reached_target);
        assert_eq!(result.epochs, 4); // quality 0.64 >= 0.635 at epoch 4
                                      // TTT covers only the 4 epochs, not the 150s of prep/create.
        assert_eq!(result.time_to_train, Duration::from_secs(40));
        assert_eq!(result.excluded, Duration::from_secs(150));
        assert_eq!(result.quality_history.len(), 4);
    }

    #[test]
    fn gives_up_at_epoch_budget() {
        let clock = SimClock::new();
        let mut bench = Scripted::new(clock.clone(), vec![0.1], 0.99);
        let result = run_benchmark(&mut bench, 7, &clock);
        assert!(!result.reached_target);
        assert_eq!(result.epochs, 20);
    }

    #[test]
    fn log_records_lifecycle_in_order() {
        let clock = SimClock::new();
        let mut bench = Scripted::new(clock.clone(), vec![1.0], 0.5);
        let result = run_benchmark(&mut bench, 3, &clock);
        let order: Vec<&str> = result.log.entries().iter().map(|e| e.key.as_str()).collect();
        let pos = |k: &str| order.iter().position(|&x| x == k).unwrap_or(usize::MAX);
        assert!(pos(keys::INIT_START) < pos(keys::RUN_START));
        assert!(pos(keys::RUN_START) < pos(keys::EPOCH_START));
        assert!(pos(keys::EPOCH_STOP) < pos(keys::EVAL_ACCURACY));
        assert!(pos(keys::EVAL_ACCURACY) < pos(keys::RUN_STOP));
        // Seed recorded.
        let seed_entry = result.log.entries().iter().find(|e| e.key == keys::SEED).unwrap();
        assert_eq!(seed_entry.value, serde_json::json!(3));
    }

    #[test]
    fn parallel_run_set_matches_sequential() {
        // The parallel driver must produce the same quality
        // trajectories as sequential runs with the same seeds (timing
        // differs; determinism of training must not).
        let seeds = [1u64, 2, 3, 4];
        let parallel =
            run_benchmark_set(|| Box::new(crate::benchmarks::NcfBenchmark::new()), &seeds);
        assert_eq!(parallel.len(), seeds.len());
        for (result, &seed) in parallel.iter().zip(seeds.iter()) {
            assert_eq!(result.seed, seed, "results out of order");
            let mut bench = crate::benchmarks::NcfBenchmark::new();
            let clock = crate::timing::RealClock::new();
            let sequential = run_benchmark(&mut bench, seed, &clock);
            assert_eq!(result.quality_history, sequential.quality_history);
            assert_eq!(result.epochs, sequential.epochs);
        }
    }

    #[test]
    fn instrumented_run_emits_stage_spans_on_the_sim_clock() {
        let clock = SimClock::new();
        let mut bench = Scripted::new(clock.clone(), vec![0.1, 0.9], 0.5);
        let telemetry = Telemetry::recording();
        let result = run_benchmark_with(&mut bench, 11, &clock, &telemetry);
        assert!(result.reached_target);

        let snapshot = telemetry.snapshot();
        // Root run span + prepare + create_model + 2 epochs + 2 evals.
        assert_eq!(snapshot.spans_in("harness").count(), 7);
        let run = snapshot.spans.iter().find(|s| s.name == "run").unwrap();
        assert_eq!(run.parent, None);
        assert_eq!(run.args.get("benchmark"), Some(&json!("ncf")));
        assert_eq!(run.args.get("reached_target"), Some(&json!(true)));
        assert!(
            snapshot.spans.iter().filter(|s| s.name != "run").all(|s| s.parent == Some(run.id)),
            "stage spans nest under the run span"
        );
        // Durations come from the simulated clock, exactly.
        let epoch = snapshot.spans.iter().find(|s| s.name == "epoch").unwrap();
        assert_eq!(epoch.duration_us(), 10_000_000);
        let prepare = snapshot.spans.iter().find(|s| s.name == "prepare").unwrap();
        assert_eq!(prepare.duration_us(), 100_000_000);

        let counter =
            |name: &str| snapshot.counters.iter().find(|c| c.name == name).map(|c| c.value);
        assert_eq!(counter("harness.runs"), Some(1));
        assert_eq!(counter("harness.epochs"), Some(2));
        assert_eq!(counter("harness.epochs_to_target"), Some(2));
    }

    #[test]
    fn run_stop_status_reflects_outcome() {
        let clock = SimClock::new();
        let mut ok = Scripted::new(clock.clone(), vec![1.0], 0.5);
        let r = run_benchmark(&mut ok, 0, &clock);
        let stop = r.log.entries().iter().find(|e| e.key == keys::RUN_STOP).unwrap();
        assert_eq!(stop.value["status"], "success");

        let clock2 = SimClock::new();
        let mut bad = Scripted::new(clock2.clone(), vec![0.0], 0.5);
        let r2 = run_benchmark(&mut bad, 0, &clock2);
        let stop2 = r2.log.entries().iter().find(|e| e.key == keys::RUN_STOP).unwrap();
        assert_eq!(stop2.value["status"], "aborted");
    }
}
