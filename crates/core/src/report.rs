//! Result reporting (§4.2): per-benchmark time-to-train scores with
//! division, category, system type and scale — and deliberately *no*
//! summary score across benchmarks (§4.2.4 explains why: no universal
//! weighting exists and submissions may omit benchmarks).

use crate::rules::{Category, Division, SystemType};
use crate::suite::BenchmarkId;
use mlperf_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The system description accompanying a submission (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemDescription {
    /// Submitting organization.
    pub submitter: String,
    /// Marketing name of the system.
    pub system_name: String,
    /// Number of accelerator chips.
    pub accelerators: usize,
    /// Accelerator model name.
    pub accelerator_model: String,
    /// Host processor count.
    pub host_processors: usize,
    /// Software stack description (framework + versions).
    pub software: String,
}

/// One benchmark's reported score within a submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkScore {
    /// Which benchmark.
    pub benchmark: BenchmarkId,
    /// The aggregated time-to-train in minutes (olympic mean of the
    /// required runs).
    pub minutes: f64,
    /// Number of timed runs behind the score.
    pub runs: usize,
}

/// A complete submission entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// System details.
    pub system: SystemDescription,
    /// Closed or Open.
    pub division: Division,
    /// Available / Preview / Research.
    pub category: Category,
    /// On-premise or cloud.
    pub system_type: SystemType,
    /// Scores for the benchmarks this submission ran (omissions are
    /// legal — §4.2.4).
    pub scores: Vec<BenchmarkScore>,
}

impl Submission {
    /// The score for one benchmark, if submitted.
    pub fn score_for(&self, id: BenchmarkId) -> Option<&BenchmarkScore> {
        self.scores.iter().find(|s| s.benchmark == id)
    }
}

/// Renders a results table in the style of the published MLPerf
/// results pages: one row per submission, one column per benchmark,
/// blank cells for omitted benchmarks, and *no* summary column.
pub fn render_results_table(submissions: &[Submission]) -> String {
    let mut out = String::new();
    write!(out, "{:<24} {:<8} {:<10} {:>6}", "system", "div", "category", "chips").unwrap();
    for id in BenchmarkId::ALL {
        write!(out, " {:>12}", id.slug()).unwrap();
    }
    writeln!(out).unwrap();
    for s in submissions {
        write!(
            out,
            "{:<24} {:<8} {:<10} {:>6}",
            s.system.system_name, s.division, s.category, s.system.accelerators
        )
        .unwrap();
        for id in BenchmarkId::ALL {
            match s.score_for(id) {
                Some(score) => write!(out, " {:>12.2}", score.minutes).unwrap(),
                None => write!(out, " {:>12}", "-").unwrap(),
            }
        }
        writeln!(out).unwrap();
    }
    out
}

/// One ranked row of a per-benchmark leaderboard, as the round
/// pipeline publishes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaderboardRow {
    /// 1-based rank by score.
    pub rank: usize,
    /// Submitting organization.
    pub organization: String,
    /// System name.
    pub system: String,
    /// Accelerator chips in the system.
    pub chips: usize,
    /// Aggregated time-to-train in minutes.
    pub minutes: f64,
    /// Timed runs behind the score.
    pub runs: usize,
}

/// Renders one benchmark/division leaderboard: ranked rows, fastest
/// first, no summary score.
pub fn render_leaderboard(title: &str, rows: &[LeaderboardRow]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "{:>4} {:<16} {:<24} {:>6} {:>12} {:>5}",
        "rank", "org", "system", "chips", "minutes", "runs"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>4} {:<16} {:<24} {:>6} {:>12.2} {:>5}",
            r.rank, r.organization, r.system, r.chips, r.minutes, r.runs
        )
        .unwrap();
    }
    out
}

/// One entry's row in a scenario (loadgen) leaderboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRow {
    /// 1-based rank by throughput.
    pub rank: usize,
    /// Submitting organization.
    pub organization: String,
    /// System name.
    pub system: String,
    /// Accelerator chips in the system.
    pub chips: usize,
    /// Median query latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile query latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile query latency, milliseconds.
    pub p99_ms: f64,
    /// Achieved queries per second (Server: max sustainable).
    pub qps: f64,
    /// Queries behind the measurement.
    pub queries: u64,
}

/// Renders one benchmark/division/scenario leaderboard: ranked rows,
/// highest throughput first.
pub fn render_scenario_leaderboard(title: &str, rows: &[ScenarioRow]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "{:>4} {:<16} {:<24} {:>6} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "rank", "org", "system", "chips", "p50 ms", "p90 ms", "p99 ms", "qps", "queries"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>4} {:<16} {:<24} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>10.1} {:>8}",
            r.rank,
            r.organization,
            r.system,
            r.chips,
            r.p50_ms,
            r.p90_ms,
            r.p99_ms,
            r.qps,
            r.queries
        )
        .unwrap();
    }
    out
}

/// One benchmark's cross-round comparison (a Figure 4/5-style row):
/// one value per round in the history, oldest round first, plus the
/// endpoint ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundComparisonRow {
    /// Benchmark display name.
    pub benchmark: String,
    /// One value per round, in the same order as the table's round
    /// labels (oldest first).
    pub values: Vec<f64>,
    /// The first-to-last-round ratio (orientation depends on the
    /// table: first/last for speedups, last/first for scale growth).
    pub ratio: f64,
}

/// Renders a cross-round comparison table — one value column per round
/// in `round_labels` — plus the average ratio line the paper headlines.
/// Rows with a different number of values than labels are skipped. NaN
/// values render as blank cells: a benchmark that joined the suite
/// mid-history (the v0.7 additions) carries NaN for the rounds before
/// it existed, and its ratio spans only the rounds it ran in.
pub fn render_round_comparison(
    title: &str,
    round_labels: &[String],
    value_label: &str,
    ratio_label: &str,
    rows: &[RoundComparisonRow],
) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    write!(out, "{:<16}", "benchmark").unwrap();
    for label in round_labels {
        write!(out, " {:>14}", format!("{label} {value_label}")).unwrap();
    }
    writeln!(out, " {ratio_label:>9}").unwrap();
    let mut ratios = Vec::new();
    for r in rows {
        if r.values.len() != round_labels.len() {
            continue;
        }
        write!(out, "{:<16}", r.benchmark).unwrap();
        for v in &r.values {
            if v.is_nan() {
                write!(out, " {:>14}", "-").unwrap();
            } else {
                write!(out, " {v:>14.1}").unwrap();
            }
        }
        writeln!(out, " {:>8.2}x", r.ratio).unwrap();
        ratios.push(r.ratio);
    }
    if !ratios.is_empty() {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        writeln!(out, "average {ratio_label}: {avg:.2}x").unwrap();
    }
    out
}

/// Renders a telemetry snapshot as a plain-text summary: span time
/// grouped by layer and name (first-seen order), then the counter,
/// gauge and histogram readings. The plain-text sibling of the Chrome
/// trace exporter — what `round_pipeline --trace` prints after ingest.
pub fn render_telemetry_report(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    writeln!(out, "telemetry report").unwrap();
    if snapshot.is_empty() {
        writeln!(out, "  (nothing recorded)").unwrap();
        return out;
    }
    if !snapshot.spans.is_empty() {
        writeln!(
            out,
            "{:<8} {:<24} {:>7} {:>12} {:>12}",
            "layer", "span", "count", "total_ms", "mean_ms"
        )
        .unwrap();
        // Aggregate per (layer, name), first-seen order.
        let mut groups: Vec<(&str, &str, u64, u64)> = Vec::new();
        for span in &snapshot.spans {
            match groups.iter_mut().find(|(l, n, ..)| *l == span.layer && *n == span.name) {
                Some((.., count, total_us)) => {
                    *count += 1;
                    *total_us += span.duration_us();
                }
                None => groups.push((&span.layer, &span.name, 1, span.duration_us())),
            }
        }
        for (layer, name, count, total_us) in groups {
            let total_ms = total_us as f64 / 1e3;
            writeln!(
                out,
                "{layer:<8} {name:<24} {count:>7} {total_ms:>12.3} {:>12.3}",
                total_ms / count as f64
            )
            .unwrap();
        }
    }
    if !snapshot.counters.is_empty() || !snapshot.gauges.is_empty() {
        writeln!(out, "counters").unwrap();
        for c in &snapshot.counters {
            writeln!(out, "  {:<40} {:>12}", c.name, c.value).unwrap();
        }
        for g in &snapshot.gauges {
            writeln!(out, "  {:<40} {:>12}  (gauge)", g.name, g.value).unwrap();
        }
    }
    if !snapshot.histograms.is_empty() {
        writeln!(out, "histograms").unwrap();
        for h in &snapshot.histograms {
            let mean = h.mean().map_or_else(|| "-".to_string(), |m| format!("{m:.2}"));
            write!(out, "  {:<40} count {:>6}  mean {mean:>8}  ", h.name, h.count).unwrap();
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                write!(out, "le_{bound}:{count} ").unwrap();
            }
            writeln!(out, "inf:{}", h.counts.last().copied().unwrap_or(0)).unwrap();
        }
    }
    if !snapshot.sketches.is_empty() {
        writeln!(out, "sketches").unwrap();
        for s in &snapshot.sketches {
            let q = |p: f64| s.quantile(p).map_or_else(|| "-".to_string(), |v| format!("{v:.2}"));
            writeln!(
                out,
                "  {:<40} count {:>6}  p50 {:>8}  p90 {:>8}  p99 {:>8}",
                s.name,
                s.count,
                q(0.5),
                q(0.9),
                q(0.99)
            )
            .unwrap();
        }
    }
    if !snapshot.series.is_empty() {
        writeln!(out, "series").unwrap();
        for s in &snapshot.series {
            let last = s.last().map_or_else(|| "-".to_string(), |v| format!("{:.0}", v.value));
            let rate =
                s.mean_rate_per_sec().map_or_else(|| "-".to_string(), |r| format!("{r:.1}/s"));
            writeln!(
                out,
                "  {:<40} samples {:>4}  last {last:>10}  mean {rate:>12}",
                s.name,
                s.samples.len()
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission(name: &str, scores: Vec<BenchmarkScore>) -> Submission {
        Submission {
            system: SystemDescription {
                submitter: "TestOrg".into(),
                system_name: name.into(),
                accelerators: 8,
                accelerator_model: "A900".into(),
                host_processors: 2,
                software: "mlperf-suite 0.1".into(),
            },
            division: Division::Closed,
            category: Category::Available,
            system_type: SystemType::OnPremise,
            scores,
        }
    }

    #[test]
    fn omitted_benchmarks_render_blank() {
        let s = submission(
            "node-a",
            vec![BenchmarkScore {
                benchmark: BenchmarkId::ImageClassification,
                minutes: 12.5,
                runs: 5,
            }],
        );
        let table = render_results_table(&[s]);
        assert!(table.contains("12.50"));
        // Every omitted benchmark rendered as a dash.
        assert_eq!(table.matches(" -").count(), BenchmarkId::ALL.len() - 1, "table:\n{table}");
    }

    #[test]
    fn table_has_no_summary_column() {
        let s = submission("node-a", vec![]);
        let table = render_results_table(&[s]);
        let header = table.lines().next().unwrap();
        assert!(!header.to_lowercase().contains("summary"));
        assert!(!header.to_lowercase().contains("overall"));
        // Exactly one column per benchmark plus the 4 metadata columns.
        assert_eq!(header.split_whitespace().count(), 4 + BenchmarkId::ALL.len());
    }

    #[test]
    fn score_lookup() {
        let s = submission(
            "node-b",
            vec![BenchmarkScore { benchmark: BenchmarkId::Recommendation, minutes: 3.0, runs: 10 }],
        );
        assert!(s.score_for(BenchmarkId::Recommendation).is_some());
        assert!(s.score_for(BenchmarkId::ObjectDetection).is_none());
    }

    #[test]
    fn submissions_serialize() {
        let s = submission("node-c", vec![]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Submission = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn leaderboard_renders_ranked_rows() {
        let rows = vec![
            LeaderboardRow {
                rank: 1,
                organization: "Aurora".into(),
                system: "aurora-16".into(),
                chips: 16,
                minutes: 11.25,
                runs: 5,
            },
            LeaderboardRow {
                rank: 2,
                organization: "Borealis".into(),
                system: "borealis-16".into(),
                chips: 16,
                minutes: 14.5,
                runs: 5,
            },
        ];
        let table = render_leaderboard("resnet / closed", &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("resnet / closed"));
        assert!(lines[2].starts_with("   1 Aurora"));
        assert!(lines[3].starts_with("   2 Borealis"));
        assert!(table.contains("11.25"));
    }

    #[test]
    fn round_comparison_reports_average_ratio() {
        let labels = vec!["v0.5".to_string(), "v0.6".to_string()];
        let rows = vec![
            RoundComparisonRow { benchmark: "resnet".into(), values: vec![20.0, 10.0], ratio: 2.0 },
            RoundComparisonRow { benchmark: "gnmt".into(), values: vec![12.0, 12.0], ratio: 1.0 },
        ];
        let table = render_round_comparison("Figure 4", &labels, "minutes", "speedup", &rows);
        assert!(table.contains("average speedup: 1.50x"), "table:\n{table}");
        assert!(table.contains("v0.5 minutes") && table.contains("v0.6 minutes"));
    }

    #[test]
    fn telemetry_report_groups_spans_and_lists_metrics() {
        let telemetry = mlperf_telemetry::Telemetry::recording();
        let mut scope = telemetry.timeline_scope();
        scope.record("harness", "epoch", || ());
        scope.record("harness", "epoch", || ());
        scope.record("ingest", "parse_log", || ());
        telemetry.counter("ingest.logs").add(3);
        telemetry.gauge("pool.workers").set(4);
        telemetry.histogram("latency", &[10.0]).observe(2.0);
        let report = render_telemetry_report(&telemetry.snapshot());
        let epoch_line = report.lines().find(|l| l.contains("epoch")).unwrap();
        assert!(epoch_line.starts_with("harness"), "line: {epoch_line}");
        assert_eq!(epoch_line.split_whitespace().nth(2), Some("2"), "grouped count");
        assert!(report.contains("ingest.logs"));
        assert!(report.contains("(gauge)"));
        assert!(report.contains("le_10:1"));
    }

    #[test]
    fn telemetry_report_handles_empty_snapshot() {
        let report = render_telemetry_report(&mlperf_telemetry::Telemetry::disabled().snapshot());
        assert!(report.contains("nothing recorded"));
    }

    #[test]
    fn round_comparison_renders_a_column_per_round() {
        let labels: Vec<String> = ["v0.5", "v0.6", "v0.7"].map(String::from).to_vec();
        let rows = vec![RoundComparisonRow {
            benchmark: "ssd".into(),
            values: vec![30.0, 20.0, 10.0],
            ratio: 3.0,
        }];
        let table = render_round_comparison("Figure 4", &labels, "minutes", "speedup", &rows);
        let header = table.lines().nth(1).unwrap();
        assert!(header.contains("v0.7 minutes"), "header: {header}");
        assert!(table.contains("3.00x"));
        // Mismatched rows are skipped rather than misrendered.
        let short = vec![RoundComparisonRow {
            benchmark: "ssd".into(),
            values: vec![30.0, 20.0],
            ratio: 1.5,
        }];
        let skipped = render_round_comparison("Figure 4", &labels, "minutes", "speedup", &short);
        assert!(!skipped.contains("ssd"));
    }

    #[test]
    fn round_comparison_blanks_rounds_before_a_benchmark_joined() {
        // A v0.7 addition has no v0.5/v0.6 scores: NaN cells render as
        // dashes and the ratio still prints for the present span.
        let labels: Vec<String> = ["v0.5", "v0.6", "v0.7"].map(String::from).to_vec();
        let rows = vec![RoundComparisonRow {
            benchmark: "bert".into(),
            values: vec![f64::NAN, f64::NAN, 9.0],
            ratio: 1.0,
        }];
        let table = render_round_comparison("Figure 4", &labels, "minutes", "speedup", &rows);
        let bert = table.lines().find(|l| l.starts_with("bert")).unwrap();
        assert_eq!(bert.matches(" -").count(), 2, "row: {bert}");
        assert!(bert.contains("9.0"));
        assert!(bert.contains("1.00x"));
    }

    #[test]
    fn scenario_leaderboard_renders_percentiles_and_qps() {
        let rows = vec![ScenarioRow {
            rank: 1,
            organization: "Aurora".into(),
            system: "aurora-16".into(),
            chips: 16,
            p50_ms: 0.813,
            p90_ms: 1.204,
            p99_ms: 3.5,
            qps: 912.4,
            queries: 1024,
        }];
        let table = render_scenario_leaderboard("ncf / closed / server", &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("ncf / closed / server"));
        assert!(lines[1].contains("p99 ms") && lines[1].contains("qps"));
        assert!(lines[2].starts_with("   1 Aurora"));
        assert!(lines[2].contains("0.813") && lines[2].contains("912.4"));
    }
}
