//! Result reporting (§4.2): per-benchmark time-to-train scores with
//! division, category, system type and scale — and deliberately *no*
//! summary score across benchmarks (§4.2.4 explains why: no universal
//! weighting exists and submissions may omit benchmarks).

use crate::rules::{Category, Division, SystemType};
use crate::suite::BenchmarkId;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The system description accompanying a submission (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemDescription {
    /// Submitting organization.
    pub submitter: String,
    /// Marketing name of the system.
    pub system_name: String,
    /// Number of accelerator chips.
    pub accelerators: usize,
    /// Accelerator model name.
    pub accelerator_model: String,
    /// Host processor count.
    pub host_processors: usize,
    /// Software stack description (framework + versions).
    pub software: String,
}

/// One benchmark's reported score within a submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkScore {
    /// Which benchmark.
    pub benchmark: BenchmarkId,
    /// The aggregated time-to-train in minutes (olympic mean of the
    /// required runs).
    pub minutes: f64,
    /// Number of timed runs behind the score.
    pub runs: usize,
}

/// A complete submission entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// System details.
    pub system: SystemDescription,
    /// Closed or Open.
    pub division: Division,
    /// Available / Preview / Research.
    pub category: Category,
    /// On-premise or cloud.
    pub system_type: SystemType,
    /// Scores for the benchmarks this submission ran (omissions are
    /// legal — §4.2.4).
    pub scores: Vec<BenchmarkScore>,
}

impl Submission {
    /// The score for one benchmark, if submitted.
    pub fn score_for(&self, id: BenchmarkId) -> Option<&BenchmarkScore> {
        self.scores.iter().find(|s| s.benchmark == id)
    }
}

/// Renders a results table in the style of the published MLPerf
/// results pages: one row per submission, one column per benchmark,
/// blank cells for omitted benchmarks, and *no* summary column.
pub fn render_results_table(submissions: &[Submission]) -> String {
    let mut out = String::new();
    write!(out, "{:<24} {:<8} {:<10} {:>6}", "system", "div", "category", "chips").unwrap();
    for id in BenchmarkId::ALL {
        write!(out, " {:>12}", id.slug()).unwrap();
    }
    writeln!(out).unwrap();
    for s in submissions {
        write!(
            out,
            "{:<24} {:<8} {:<10} {:>6}",
            s.system.system_name, s.division, s.category, s.system.accelerators
        )
        .unwrap();
        for id in BenchmarkId::ALL {
            match s.score_for(id) {
                Some(score) => write!(out, " {:>12.2}", score.minutes).unwrap(),
                None => write!(out, " {:>12}", "-").unwrap(),
            }
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission(name: &str, scores: Vec<BenchmarkScore>) -> Submission {
        Submission {
            system: SystemDescription {
                submitter: "TestOrg".into(),
                system_name: name.into(),
                accelerators: 8,
                accelerator_model: "A900".into(),
                host_processors: 2,
                software: "mlperf-suite 0.1".into(),
            },
            division: Division::Closed,
            category: Category::Available,
            system_type: SystemType::OnPremise,
            scores,
        }
    }

    #[test]
    fn omitted_benchmarks_render_blank() {
        let s = submission(
            "node-a",
            vec![BenchmarkScore { benchmark: BenchmarkId::ImageClassification, minutes: 12.5, runs: 5 }],
        );
        let table = render_results_table(&[s]);
        assert!(table.contains("12.50"));
        // Six omitted benchmarks rendered as dashes.
        assert_eq!(table.matches(" -").count(), 6, "table:\n{table}");
    }

    #[test]
    fn table_has_no_summary_column() {
        let s = submission("node-a", vec![]);
        let table = render_results_table(&[s]);
        let header = table.lines().next().unwrap();
        assert!(!header.to_lowercase().contains("summary"));
        assert!(!header.to_lowercase().contains("overall"));
        // Exactly the 7 benchmark columns plus the 4 metadata columns.
        assert_eq!(header.split_whitespace().count(), 4 + 7);
    }

    #[test]
    fn score_lookup() {
        let s = submission(
            "node-b",
            vec![BenchmarkScore { benchmark: BenchmarkId::Recommendation, minutes: 3.0, runs: 10 }],
        );
        assert!(s.score_for(BenchmarkId::Recommendation).is_some());
        assert!(s.score_for(BenchmarkId::ObjectDetection).is_none());
    }

    #[test]
    fn submissions_serialize() {
        let s = submission("node-c", vec![]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Submission = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
