//! Result stabilization (§3.2.2): multiple timed runs per result, drop
//! the fastest and slowest, report the arithmetic mean of the rest.
//!
//! "Five runs are required for vision tasks to ensure 90% of entries
//! from the same system were within 5%, and for all other tasks, ten
//! runs are required, so 90% of entries from the same system were
//! within 10%."

use crate::mllog::{keys, LogEntry};
use crate::rules::Scenario;
use crate::suite::BenchmarkId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a run set could not be aggregated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateError {
    /// Fewer runs than the benchmark requires.
    NotEnoughRuns {
        /// Runs provided.
        got: usize,
        /// Runs required for this benchmark.
        required: usize,
    },
    /// A run failed to reach the quality target.
    FailedRun {
        /// Index of the failed run.
        index: usize,
    },
}

impl Serialize for AggregateError {
    fn to_value(&self) -> serde_json::Value {
        match self {
            AggregateError::NotEnoughRuns { got, required } => {
                serde_json::json!({"NotEnoughRuns": {"got": got, "required": required}})
            }
            AggregateError::FailedRun { index } => {
                serde_json::json!({"FailedRun": {"index": index}})
            }
        }
    }
}

impl Deserialize for AggregateError {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::de::Error> {
        use crate::compliance::{variant_field, variant_parts};
        let (tag, body) = variant_parts(v)?;
        match tag {
            "NotEnoughRuns" => Ok(AggregateError::NotEnoughRuns {
                got: variant_field(body, "got")?,
                required: variant_field(body, "required")?,
            }),
            "FailedRun" => Ok(AggregateError::FailedRun { index: variant_field(body, "index")? }),
            other => {
                Err(serde::de::Error::custom(format!("unknown AggregateError variant `{other}`")))
            }
        }
    }
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::NotEnoughRuns { got, required } => {
                write!(f, "submission has {got} runs but {required} are required")
            }
            AggregateError::FailedRun { index } => {
                write!(f, "run {index} did not reach the quality target")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// Drops the single fastest and single slowest value and returns the
/// arithmetic mean of the rest (the "olympic mean").
///
/// # Panics
///
/// Panics if fewer than 3 values are given (nothing would remain).
pub fn olympic_mean(times: &[f64]) -> f64 {
    assert!(times.len() >= 3, "olympic mean needs at least 3 values");
    let mut sorted: Vec<f64> = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    let kept = &sorted[1..sorted.len() - 1];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// One timed run's summary for aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Official time-to-train in seconds.
    pub seconds: f64,
    /// Whether the run reached the quality target.
    pub reached_target: bool,
}

/// Aggregates a submission's run set for one benchmark into the
/// reported score, enforcing the run-count requirement and that every
/// run converged.
///
/// # Errors
///
/// Returns [`AggregateError`] if the run count is short or any run
/// failed.
pub fn aggregate_runs(id: BenchmarkId, runs: &[RunSummary]) -> Result<f64, AggregateError> {
    let required = id.runs_required();
    if runs.len() < required {
        return Err(AggregateError::NotEnoughRuns { got: runs.len(), required });
    }
    if let Some(index) = runs.iter().position(|r| !r.reached_target) {
        return Err(AggregateError::FailedRun { index });
    }
    let times: Vec<f64> = runs.iter().map(|r| r.seconds).collect();
    Ok(olympic_mean(&times))
}

/// One loadgen scenario run's reported measurement, as extracted from
/// its scenario-tagged run log. The inference-side analogue of
/// [`RunSummary`]: review collects one per scenario log and publishes
/// them on accepted entries instead of a time-to-train score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// Which scenario produced the measurement.
    pub scenario: Scenario,
    /// Queries issued.
    pub queries: u64,
    /// Measured duration in milliseconds.
    pub duration_ms: u64,
    /// Median query latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile query latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile query latency, milliseconds.
    pub p99_ms: f64,
    /// Achieved queries per second (Server: max sustainable).
    pub qps: f64,
    /// The latency SLO bound, when the scenario binds one.
    pub slo_ms: Option<f64>,
    /// Whether the SLO was met, when the scenario binds one.
    pub slo_satisfied: Option<bool>,
}

/// Extracts the scenario measurement from a parsed run log: `Some` iff
/// the log carries a known `loadgen_scenario` tag and every scenario
/// result key (which compliance has checked by the time review calls
/// this), `None` for ordinary training logs.
pub fn scenario_summary(entries: &[LogEntry]) -> Option<ScenarioSummary> {
    let value_of = |key: &str| entries.iter().find(|e| e.key == key).map(|e| &e.value);
    let f64_of = |key: &str| value_of(key).and_then(|v| v.as_f64());
    let scenario = value_of(keys::LOADGEN_SCENARIO)?.as_str().and_then(Scenario::from_slug)?;
    Some(ScenarioSummary {
        scenario,
        queries: value_of(keys::LOADGEN_QUERY_COUNT)?.as_u64()?,
        duration_ms: value_of(keys::LOADGEN_DURATION_MS)?.as_u64()?,
        p50_ms: f64_of(keys::LOADGEN_LATENCY_P50_MS)?,
        p90_ms: f64_of(keys::LOADGEN_LATENCY_P90_MS)?,
        p99_ms: f64_of(keys::LOADGEN_LATENCY_P99_MS)?,
        qps: f64_of(keys::LOADGEN_QPS)?,
        slo_ms: f64_of(keys::LOADGEN_SLO_MS),
        slo_satisfied: value_of(keys::LOADGEN_SLO_SATISFIED).and_then(|v| v.as_bool()),
    })
}

/// Monte-Carlo check of the §3.2.2 stability claim: draws `trials` run
/// sets of `runs_per_result` from the empirical `times`, aggregates
/// each, and returns the fraction of aggregated results within
/// `tolerance` (relative) of their median.
pub fn stability_fraction(
    times: &[f64],
    runs_per_result: usize,
    trials: usize,
    tolerance: f64,
    seed: u64,
) -> f64 {
    assert!(runs_per_result >= 3, "need at least 3 runs per result");
    assert!(!times.is_empty(), "empty time sample");
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut results = Vec::with_capacity(trials);
    for _ in 0..trials {
        let draw: Vec<f64> =
            (0..runs_per_result).map(|_| times[(next() % times.len() as u64) as usize]).collect();
        results.push(olympic_mean(&draw));
    }
    let mut sorted = results.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    results.iter().filter(|r| ((*r - median) / median).abs() <= tolerance).count() as f64
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn olympic_mean_drops_extremes() {
        // 1 and 100 dropped; mean of 10, 11, 12 = 11.
        assert_eq!(olympic_mean(&[100.0, 10.0, 1.0, 12.0, 11.0]), 11.0);
    }

    #[test]
    fn olympic_mean_of_three_keeps_median() {
        assert_eq!(olympic_mean(&[5.0, 1.0, 9.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn olympic_mean_needs_three() {
        olympic_mean(&[1.0, 2.0]);
    }

    #[test]
    fn aggregate_enforces_run_counts() {
        let run = RunSummary { seconds: 100.0, reached_target: true };
        // Vision: 5 required.
        let four = vec![run; 4];
        assert_eq!(
            aggregate_runs(BenchmarkId::ImageClassification, &four),
            Err(AggregateError::NotEnoughRuns { got: 4, required: 5 })
        );
        let five = vec![run; 5];
        assert_eq!(aggregate_runs(BenchmarkId::ImageClassification, &five), Ok(100.0));
        // Non-vision: 10 required.
        assert_eq!(
            aggregate_runs(BenchmarkId::Recommendation, &five),
            Err(AggregateError::NotEnoughRuns { got: 5, required: 10 })
        );
        let ten = vec![run; 10];
        assert_eq!(aggregate_runs(BenchmarkId::Recommendation, &ten), Ok(100.0));
    }

    #[test]
    fn aggregate_rejects_failed_runs() {
        let ok = RunSummary { seconds: 100.0, reached_target: true };
        let bad = RunSummary { seconds: 10.0, reached_target: false };
        let mut runs = vec![ok; 5];
        runs[2] = bad;
        assert_eq!(
            aggregate_runs(BenchmarkId::ObjectDetection, &runs),
            Err(AggregateError::FailedRun { index: 2 })
        );
    }

    #[test]
    fn aggregate_is_robust_to_one_outlier() {
        let mut runs = vec![RunSummary { seconds: 100.0, reached_target: true }; 5];
        runs[0].seconds = 500.0; // pathological straggler
        let score = aggregate_runs(BenchmarkId::ImageClassification, &runs).unwrap();
        assert_eq!(score, 100.0);
    }

    #[test]
    fn stability_improves_with_more_runs() {
        // A noisy empirical distribution: aggregating more runs per
        // result tightens the spread.
        let times: Vec<f64> = (0..50)
            .map(|i| 100.0 + 15.0 * ((i * 2654435761u64 % 97) as f64 / 97.0 - 0.5))
            .collect();
        let loose = stability_fraction(&times, 3, 400, 0.05, 1);
        let tight = stability_fraction(&times, 10, 400, 0.05, 1);
        assert!(
            tight >= loose,
            "10-run aggregation ({tight}) should be at least as stable as 3-run ({loose})"
        );
    }

    #[test]
    fn stability_fraction_is_deterministic() {
        let times = [90.0, 95.0, 100.0, 105.0, 110.0];
        let a = stability_fraction(&times, 5, 100, 0.05, 7);
        let b = stability_fraction(&times, 5, 100, 0.05, 7);
        assert_eq!(a, b);
    }

    fn loadgen_entry(key: &str, value: serde_json::Value) -> LogEntry {
        LogEntry { time_ms: 0, key: key.into(), value }
    }

    fn loadgen_entries(scenario: &str) -> Vec<LogEntry> {
        use serde_json::json;
        vec![
            loadgen_entry(keys::LOADGEN_SCENARIO, json!(scenario)),
            loadgen_entry(keys::LOADGEN_QUERY_COUNT, json!(256)),
            loadgen_entry(keys::LOADGEN_DURATION_MS, json!(2000)),
            loadgen_entry(keys::LOADGEN_LATENCY_P50_MS, json!(1.5)),
            loadgen_entry(keys::LOADGEN_LATENCY_P90_MS, json!(2.5)),
            loadgen_entry(keys::LOADGEN_LATENCY_P99_MS, json!(4.0)),
            loadgen_entry(keys::LOADGEN_QPS, json!(128.0)),
            loadgen_entry(keys::LOADGEN_SLO_MS, json!(10.0)),
            loadgen_entry(keys::LOADGEN_SLO_SATISFIED, json!(true)),
        ]
    }

    #[test]
    fn scenario_summary_extracts_every_field() {
        let summary = scenario_summary(&loadgen_entries("server")).unwrap();
        assert_eq!(
            summary,
            ScenarioSummary {
                scenario: Scenario::Server,
                queries: 256,
                duration_ms: 2000,
                p50_ms: 1.5,
                p90_ms: 2.5,
                p99_ms: 4.0,
                qps: 128.0,
                slo_ms: Some(10.0),
                slo_satisfied: Some(true),
            }
        );
    }

    #[test]
    fn scenario_summary_slo_keys_are_optional() {
        let mut entries = loadgen_entries("offline");
        entries.retain(|e| e.key != keys::LOADGEN_SLO_MS && e.key != keys::LOADGEN_SLO_SATISFIED);
        let summary = scenario_summary(&entries).unwrap();
        assert_eq!(summary.scenario, Scenario::Offline);
        assert_eq!(summary.slo_ms, None);
        assert_eq!(summary.slo_satisfied, None);
    }

    #[test]
    fn scenario_summary_rejects_training_and_partial_logs() {
        use serde_json::json;
        let training = vec![
            loadgen_entry(keys::RUN_START, json!(null)),
            loadgen_entry(keys::RUN_STOP, json!({"status": "success"})),
        ];
        assert_eq!(scenario_summary(&training), None);
        let mut partial = loadgen_entries("single_stream");
        partial.retain(|e| e.key != keys::LOADGEN_QPS);
        assert_eq!(scenario_summary(&partial), None);
        let mut unknown = loadgen_entries("multi_stream");
        unknown[0] = loadgen_entry(keys::LOADGEN_SCENARIO, json!("multi_stream"));
        assert_eq!(scenario_summary(&unknown), None);
    }
}
