//! The compliance checker run over submission logs during peer review
//! (§4.1): verifies that a run log contains the required structured
//! events in a legal order before results are published.

use crate::mllog::{keys, LogEntry, LogKey};
use crate::rules::Scenario;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::fmt;

/// A compliance problem found in a submission log. Positional issues
/// carry the zero-based index of the offending entry, which is also its
/// line number in the rendered `:::MLLOG` text (entries map to lines
/// one-to-one), so review diagnostics can point at the exact line.
/// Issues serialize to JSON (externally tagged, like real serde renders
/// enums) so quarantined review reports can spill to disk and round-trip
/// with their diagnostics intact; key payloads are [`LogKey`]s, whose
/// serde re-interns on the way back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComplianceIssue {
    /// A required key never appears.
    MissingKey(LogKey),
    /// Events appear out of lifecycle order.
    OutOfOrder {
        /// The key that appeared too early.
        early: LogKey,
        /// Index of the too-early entry.
        early_entry: usize,
        /// The key it must follow.
        late: LogKey,
        /// Index of the entry it should have followed.
        late_entry: usize,
    },
    /// `run_stop` exists but does not carry a status.
    RunStopWithoutStatus {
        /// Index of the `run_stop` entry.
        entry: usize,
    },
    /// Log timestamps go backwards.
    NonMonotonicTimestamps {
        /// Index of the first entry whose timestamp precedes its
        /// predecessor's.
        entry: usize,
    },
    /// No evaluation results between run start and stop.
    NoEvaluations,
    /// A `loadgen_scenario` entry names no known scenario.
    UnknownScenario {
        /// Index of the scenario entry.
        entry: usize,
    },
    /// A loadgen run issued fewer queries than the scenario requires.
    TooFewQueries {
        /// Index of the `loadgen_query_count` entry.
        entry: usize,
        /// Queries actually issued.
        issued: u64,
        /// The scenario's minimum.
        required: u64,
    },
    /// A loadgen run was shorter than the scenario's minimum duration.
    ScenarioTooShort {
        /// Index of the `loadgen_duration_ms` entry.
        entry: usize,
        /// Measured duration in milliseconds.
        duration_ms: u64,
        /// The scenario's minimum in milliseconds.
        required_ms: u64,
    },
    /// A latency-bound scenario did not satisfy its SLO.
    SloViolated {
        /// Index of the `loadgen_slo_satisfied` entry.
        entry: usize,
    },
}

impl ComplianceIssue {
    /// The index of the offending entry (= line number in the rendered
    /// log), when the issue points at one.
    pub fn entry_index(&self) -> Option<usize> {
        match self {
            ComplianceIssue::MissingKey(_) | ComplianceIssue::NoEvaluations => None,
            ComplianceIssue::OutOfOrder { early_entry, .. } => Some(*early_entry),
            ComplianceIssue::RunStopWithoutStatus { entry }
            | ComplianceIssue::NonMonotonicTimestamps { entry }
            | ComplianceIssue::UnknownScenario { entry }
            | ComplianceIssue::TooFewQueries { entry, .. }
            | ComplianceIssue::ScenarioTooShort { entry, .. }
            | ComplianceIssue::SloViolated { entry } => Some(*entry),
        }
    }
}

impl fmt::Display for ComplianceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplianceIssue::MissingKey(k) => write!(f, "required key `{k}` missing"),
            ComplianceIssue::OutOfOrder { early, early_entry, late, late_entry } => {
                write!(
                    f,
                    "`{early}` (line {early_entry}) appears before `{late}` (line {late_entry})"
                )
            }
            ComplianceIssue::RunStopWithoutStatus { entry } => {
                write!(f, "`run_stop` (line {entry}) has no status field")
            }
            ComplianceIssue::NonMonotonicTimestamps { entry } => {
                write!(f, "timestamps go backwards at line {entry}")
            }
            ComplianceIssue::NoEvaluations => {
                write!(f, "no eval_accuracy entries inside the timed region")
            }
            ComplianceIssue::UnknownScenario { entry } => {
                write!(f, "`loadgen_scenario` (line {entry}) names no known scenario")
            }
            ComplianceIssue::TooFewQueries { entry, issued, required } => {
                write!(
                    f,
                    "loadgen issued {issued} queries (line {entry}), scenario requires {required}"
                )
            }
            ComplianceIssue::ScenarioTooShort { entry, duration_ms, required_ms } => {
                write!(
                    f,
                    "loadgen ran {duration_ms} ms (line {entry}), scenario requires {required_ms}"
                )
            }
            ComplianceIssue::SloViolated { entry } => {
                write!(f, "latency SLO not satisfied (line {entry})")
            }
        }
    }
}

impl Serialize for ComplianceIssue {
    fn to_value(&self) -> Value {
        match self {
            ComplianceIssue::MissingKey(key) => json!({"MissingKey": key}),
            ComplianceIssue::OutOfOrder { early, early_entry, late, late_entry } => json!({
                "OutOfOrder": {
                    "early": early,
                    "early_entry": early_entry,
                    "late": late,
                    "late_entry": late_entry,
                }
            }),
            ComplianceIssue::RunStopWithoutStatus { entry } => {
                json!({"RunStopWithoutStatus": {"entry": entry}})
            }
            ComplianceIssue::NonMonotonicTimestamps { entry } => {
                json!({"NonMonotonicTimestamps": {"entry": entry}})
            }
            ComplianceIssue::NoEvaluations => json!("NoEvaluations"),
            ComplianceIssue::UnknownScenario { entry } => {
                json!({"UnknownScenario": {"entry": entry}})
            }
            ComplianceIssue::TooFewQueries { entry, issued, required } => {
                json!({"TooFewQueries": {"entry": entry, "issued": issued, "required": required}})
            }
            ComplianceIssue::ScenarioTooShort { entry, duration_ms, required_ms } => json!({
                "ScenarioTooShort": {
                    "entry": entry,
                    "duration_ms": duration_ms,
                    "required_ms": required_ms,
                }
            }),
            ComplianceIssue::SloViolated { entry } => json!({"SloViolated": {"entry": entry}}),
        }
    }
}

/// Pulls one named field out of an externally tagged variant body.
/// Shared by the hand-written serde impls the review spill files use
/// (issue enums with payload variants, which the vendored derive
/// cannot handle).
pub fn variant_field<T: Deserialize>(body: &Value, name: &str) -> Result<T, serde::de::Error> {
    let value = body
        .get(name)
        .ok_or_else(|| serde::de::Error::custom(format!("missing field `{name}`")))?;
    T::from_value(value).map_err(|e| serde::de::Error::in_field(name, e))
}

/// Splits an externally tagged enum rendering into its tag and body: a
/// bare string is a unit variant, a single-entry object a payload one.
pub fn variant_parts(v: &Value) -> Result<(&str, &Value), serde::de::Error> {
    static NULL: Value = Value::Null;
    if let Some(tag) = v.as_str() {
        return Ok((tag, &NULL));
    }
    match v.as_object().map(|map| (map.len(), map.iter().next())) {
        Some((1, Some((tag, body)))) => Ok((tag.as_str(), body)),
        _ => Err(serde::de::Error::custom("expected a variant tag")),
    }
}

impl Deserialize for ComplianceIssue {
    fn from_value(v: &Value) -> Result<Self, serde::de::Error> {
        let (tag, body) = variant_parts(v)?;
        match tag {
            "MissingKey" => Ok(ComplianceIssue::MissingKey(LogKey::from_value(body)?)),
            "OutOfOrder" => Ok(ComplianceIssue::OutOfOrder {
                early: variant_field(body, "early")?,
                early_entry: variant_field(body, "early_entry")?,
                late: variant_field(body, "late")?,
                late_entry: variant_field(body, "late_entry")?,
            }),
            "RunStopWithoutStatus" => {
                Ok(ComplianceIssue::RunStopWithoutStatus { entry: variant_field(body, "entry")? })
            }
            "NonMonotonicTimestamps" => {
                Ok(ComplianceIssue::NonMonotonicTimestamps { entry: variant_field(body, "entry")? })
            }
            "NoEvaluations" => Ok(ComplianceIssue::NoEvaluations),
            "UnknownScenario" => {
                Ok(ComplianceIssue::UnknownScenario { entry: variant_field(body, "entry")? })
            }
            "TooFewQueries" => Ok(ComplianceIssue::TooFewQueries {
                entry: variant_field(body, "entry")?,
                issued: variant_field(body, "issued")?,
                required: variant_field(body, "required")?,
            }),
            "ScenarioTooShort" => Ok(ComplianceIssue::ScenarioTooShort {
                entry: variant_field(body, "entry")?,
                duration_ms: variant_field(body, "duration_ms")?,
                required_ms: variant_field(body, "required_ms")?,
            }),
            "SloViolated" => {
                Ok(ComplianceIssue::SloViolated { entry: variant_field(body, "entry")? })
            }
            other => {
                Err(serde::de::Error::custom(format!("unknown ComplianceIssue variant `{other}`")))
            }
        }
    }
}

/// Checks a run log for rule compliance; returns all problems found
/// (empty = compliant).
pub fn check_log(entries: &[LogEntry]) -> Vec<ComplianceIssue> {
    let mut issues = Vec::new();
    let pos = |key: &str| entries.iter().position(|e| e.key == key);

    for required in [
        keys::SUBMISSION_BENCHMARK,
        keys::SEED,
        keys::QUALITY_TARGET,
        keys::RUN_START,
        keys::RUN_STOP,
    ] {
        if pos(required).is_none() {
            issues.push(ComplianceIssue::MissingKey(required.into()));
        }
    }

    // Ordering constraints over present keys.
    let order_pairs = [
        (keys::INIT_START, keys::RUN_START),
        (keys::RUN_START, keys::RUN_STOP),
        (keys::RUN_START, keys::EPOCH_START),
        (keys::EPOCH_START, keys::EPOCH_STOP),
    ];
    for (first, second) in order_pairs {
        if let (Some(a), Some(b)) = (pos(first), pos(second)) {
            if a > b {
                issues.push(ComplianceIssue::OutOfOrder {
                    early: second.into(),
                    early_entry: b,
                    late: first.into(),
                    late_entry: a,
                });
            }
        }
    }

    if let Some((i, stop)) = entries.iter().enumerate().find(|(_, e)| e.key == keys::RUN_STOP) {
        match &stop.value {
            Value::Object(map) if map.contains_key("status") => {}
            _ => issues.push(ComplianceIssue::RunStopWithoutStatus { entry: i }),
        }
    }

    if let Some(i) = entries.windows(2).position(|w| w[1].time_ms < w[0].time_ms) {
        issues.push(ComplianceIssue::NonMonotonicTimestamps { entry: i + 1 });
    }

    // Loadgen runs measure inference traffic over an already-trained
    // model: they carry scenario result keys instead of in-training
    // evaluations, and are bound by the scenario rules.
    let loadgen = pos(keys::LOADGEN_SCENARIO);
    if loadgen.is_none() {
        if let (Some(start), Some(stop)) = (pos(keys::RUN_START), pos(keys::RUN_STOP)) {
            let evals = entries[start..=stop.min(entries.len() - 1)]
                .iter()
                .filter(|e| e.key == keys::EVAL_ACCURACY)
                .count();
            if evals == 0 {
                issues.push(ComplianceIssue::NoEvaluations);
            }
        }
    }

    if let Some(scenario_at) = loadgen {
        check_loadgen(entries, scenario_at, &mut issues);
    }

    issues
}

/// The loadgen-specific checks: result keys present, scenario known,
/// and the scenario rules (minimum query count, minimum duration, SLO
/// satisfied where the scenario binds a latency percentile) honoured.
fn check_loadgen(entries: &[LogEntry], scenario_at: usize, issues: &mut Vec<ComplianceIssue>) {
    let pos = |key: &str| entries.iter().position(|e| e.key == key);

    for required in [
        keys::LOADGEN_QUERY_COUNT,
        keys::LOADGEN_DURATION_MS,
        keys::LOADGEN_LATENCY_P50_MS,
        keys::LOADGEN_LATENCY_P90_MS,
        keys::LOADGEN_LATENCY_P99_MS,
        keys::LOADGEN_QPS,
    ] {
        if pos(required).is_none() {
            issues.push(ComplianceIssue::MissingKey(required.into()));
        }
    }

    let Some(scenario) = entries[scenario_at].value.as_str().and_then(Scenario::from_slug) else {
        issues.push(ComplianceIssue::UnknownScenario { entry: scenario_at });
        return;
    };
    let rules = scenario.rules();

    if let Some(i) = pos(keys::LOADGEN_QUERY_COUNT) {
        if let Some(issued) = entries[i].value.as_u64() {
            if issued < rules.min_query_count {
                issues.push(ComplianceIssue::TooFewQueries {
                    entry: i,
                    issued,
                    required: rules.min_query_count,
                });
            }
        }
    }

    if let Some(i) = pos(keys::LOADGEN_DURATION_MS) {
        if let Some(duration_ms) = entries[i].value.as_u64() {
            if duration_ms < rules.min_duration_ms {
                issues.push(ComplianceIssue::ScenarioTooShort {
                    entry: i,
                    duration_ms,
                    required_ms: rules.min_duration_ms,
                });
            }
        }
    }

    if rules.latency_percentile.is_some() {
        match pos(keys::LOADGEN_SLO_SATISFIED) {
            None => issues.push(ComplianceIssue::MissingKey(keys::LOADGEN_SLO_SATISFIED.into())),
            Some(i) => {
                if entries[i].value.as_bool() != Some(true) {
                    issues.push(ComplianceIssue::SloViolated { entry: i });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_benchmark, Benchmark};
    use crate::suite::BenchmarkId;
    use crate::timing::SimClock;
    use serde_json::json;

    fn entry(time_ms: u64, key: &str, value: Value) -> LogEntry {
        LogEntry { time_ms, key: key.into(), value }
    }

    fn minimal_valid() -> Vec<LogEntry> {
        vec![
            entry(0, keys::SUBMISSION_BENCHMARK, json!("ncf")),
            entry(0, keys::SEED, json!(1)),
            entry(0, keys::QUALITY_TARGET, json!(0.635)),
            entry(1, keys::INIT_START, json!(null)),
            entry(5, keys::RUN_START, json!(null)),
            entry(6, keys::EPOCH_START, json!(0)),
            entry(9, keys::EPOCH_STOP, json!(0)),
            entry(10, keys::EVAL_ACCURACY, json!(0.7)),
            entry(11, keys::RUN_STOP, json!({"status": "success"})),
        ]
    }

    #[test]
    fn valid_log_passes() {
        assert!(check_log(&minimal_valid()).is_empty());
    }

    #[test]
    fn missing_seed_flagged() {
        let log: Vec<LogEntry> =
            minimal_valid().into_iter().filter(|e| e.key != keys::SEED).collect();
        assert!(check_log(&log).contains(&ComplianceIssue::MissingKey(keys::SEED.into())));
    }

    #[test]
    fn out_of_order_flagged() {
        let mut log = minimal_valid();
        log.swap(3, 4); // run_start before init_start
        let issues = check_log(&log);
        assert!(issues.contains(&ComplianceIssue::OutOfOrder {
            early: keys::RUN_START.into(),
            early_entry: 3,
            late: keys::INIT_START.into(),
            late_entry: 4,
        }));
    }

    #[test]
    fn issues_point_at_log_lines() {
        let mut log = minimal_valid();
        log.last_mut().unwrap().value = json!(null);
        log[6].time_ms = 2;
        let indices: Vec<Option<usize>> =
            check_log(&log).iter().map(ComplianceIssue::entry_index).collect();
        assert!(indices.contains(&Some(8)), "run_stop line: {indices:?}");
        assert!(indices.contains(&Some(6)), "timestamp line: {indices:?}");
        let rendered = ComplianceIssue::NonMonotonicTimestamps { entry: 6 }.to_string();
        assert!(rendered.contains("line 6"), "{rendered}");
    }

    #[test]
    fn run_stop_without_status_flagged() {
        let mut log = minimal_valid();
        log.last_mut().unwrap().value = json!(null);
        assert!(check_log(&log).contains(&ComplianceIssue::RunStopWithoutStatus { entry: 8 }));
    }

    #[test]
    fn backwards_timestamps_flagged() {
        let mut log = minimal_valid();
        log[6].time_ms = 2; // earlier than its predecessor
        assert!(check_log(&log).contains(&ComplianceIssue::NonMonotonicTimestamps { entry: 6 }));
    }

    #[test]
    fn no_evals_flagged() {
        let log: Vec<LogEntry> =
            minimal_valid().into_iter().filter(|e| e.key != keys::EVAL_ACCURACY).collect();
        assert!(check_log(&log).contains(&ComplianceIssue::NoEvaluations));
    }

    /// A compliant Server-scenario loadgen log: base lifecycle keys
    /// plus the scenario result keys, satisfying the scenario rules.
    fn minimal_loadgen(scenario: &str) -> Vec<LogEntry> {
        vec![
            entry(0, keys::SUBMISSION_BENCHMARK, json!("ncf")),
            entry(0, keys::SEED, json!(1)),
            entry(0, keys::QUALITY_TARGET, json!(0.635)),
            entry(1, keys::INIT_START, json!(null)),
            entry(5, keys::RUN_START, json!(null)),
            entry(5, keys::LOADGEN_SCENARIO, json!(scenario)),
            entry(2005, keys::LOADGEN_QUERY_COUNT, json!(256)),
            entry(2005, keys::LOADGEN_DURATION_MS, json!(2000)),
            entry(2005, keys::LOADGEN_LATENCY_P50_MS, json!(1.5)),
            entry(2005, keys::LOADGEN_LATENCY_P90_MS, json!(2.5)),
            entry(2005, keys::LOADGEN_LATENCY_P99_MS, json!(4.0)),
            entry(2005, keys::LOADGEN_QPS, json!(128.0)),
            entry(2005, keys::LOADGEN_SLO_MS, json!(10.0)),
            entry(2005, keys::LOADGEN_SLO_SATISFIED, json!(true)),
            entry(2006, keys::RUN_STOP, json!({"status": "success"})),
        ]
    }

    #[test]
    fn valid_loadgen_log_passes_without_evaluations() {
        for scenario in ["single_stream", "server", "offline"] {
            let issues = check_log(&minimal_loadgen(scenario));
            assert!(issues.is_empty(), "{scenario}: {issues:?}");
        }
    }

    #[test]
    fn loadgen_log_missing_result_keys_flagged() {
        let log: Vec<LogEntry> =
            minimal_loadgen("server").into_iter().filter(|e| e.key != keys::LOADGEN_QPS).collect();
        assert!(check_log(&log).contains(&ComplianceIssue::MissingKey(keys::LOADGEN_QPS.into())));
    }

    #[test]
    fn unknown_scenario_flagged() {
        let mut log = minimal_loadgen("server");
        log[5].value = json!("multi_stream");
        assert!(check_log(&log).contains(&ComplianceIssue::UnknownScenario { entry: 5 }));
    }

    #[test]
    fn too_few_queries_flagged() {
        let mut log = minimal_loadgen("server");
        log[6].value = json!(17);
        assert!(check_log(&log).contains(&ComplianceIssue::TooFewQueries {
            entry: 6,
            issued: 17,
            required: 128,
        }));
    }

    #[test]
    fn scenario_too_short_flagged() {
        let mut log = minimal_loadgen("server");
        log[7].value = json!(40);
        assert!(check_log(&log).contains(&ComplianceIssue::ScenarioTooShort {
            entry: 7,
            duration_ms: 40,
            required_ms: 1000,
        }));
    }

    #[test]
    fn slo_violation_flagged_for_latency_bound_scenarios() {
        let mut log = minimal_loadgen("server");
        log[13].value = json!(false);
        assert!(check_log(&log).contains(&ComplianceIssue::SloViolated { entry: 13 }));
        // Offline has no latency bound: dropping the SLO keys is fine.
        let log: Vec<LogEntry> = minimal_loadgen("offline")
            .into_iter()
            .filter(|e| e.key != keys::LOADGEN_SLO_MS && e.key != keys::LOADGEN_SLO_SATISFIED)
            .collect();
        assert!(check_log(&log).is_empty());
    }

    /// Every issue shape survives a JSON round-trip — the property the
    /// review spill files depend on — and interned keys come back as
    /// the same interned pointer.
    #[test]
    fn issues_round_trip_through_json() {
        let issues = vec![
            ComplianceIssue::MissingKey(keys::SEED.into()),
            ComplianceIssue::OutOfOrder {
                early: keys::RUN_START.into(),
                early_entry: 3,
                late: keys::INIT_START.into(),
                late_entry: 4,
            },
            ComplianceIssue::RunStopWithoutStatus { entry: 8 },
            ComplianceIssue::NonMonotonicTimestamps { entry: 6 },
            ComplianceIssue::NoEvaluations,
            ComplianceIssue::UnknownScenario { entry: 5 },
            ComplianceIssue::TooFewQueries { entry: 6, issued: 17, required: 128 },
            ComplianceIssue::ScenarioTooShort { entry: 7, duration_ms: 40, required_ms: 1000 },
            ComplianceIssue::SloViolated { entry: 13 },
        ];
        for issue in issues {
            let text = serde_json::to_string(&issue).unwrap();
            let back: ComplianceIssue = serde_json::from_str(&text).unwrap();
            assert_eq!(back, issue, "{text}");
        }
        let text = serde_json::to_string(&ComplianceIssue::MissingKey(keys::SEED.into())).unwrap();
        let back: ComplianceIssue = serde_json::from_str(&text).unwrap();
        let ComplianceIssue::MissingKey(key) = back else { panic!("wrong variant") };
        assert!(key.is_standard(), "deserialized well-known key must re-intern");
    }

    /// The harness's own logs must pass the compliance checker — the
    /// property that ties §3.2 and §4.1 together.
    #[test]
    fn harness_output_is_compliant() {
        struct Instant0;
        impl Benchmark for Instant0 {
            fn id(&self) -> BenchmarkId {
                BenchmarkId::Recommendation
            }
            fn prepare(&mut self) {}
            fn create_model(&mut self, _seed: u64) {}
            fn train_epoch(&mut self, _epoch: usize) {}
            fn evaluate(&mut self) -> f64 {
                1.0
            }
            fn target(&self) -> f64 {
                0.5
            }
            fn max_epochs(&self) -> usize {
                3
            }
        }
        let clock = SimClock::new();
        let result = run_benchmark(&mut Instant0, 1, &clock);
        let issues = check_log(result.log.entries());
        assert!(issues.is_empty(), "harness log non-compliant: {issues:?}");
    }
}
