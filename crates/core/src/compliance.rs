//! The compliance checker run over submission logs during peer review
//! (§4.1): verifies that a run log contains the required structured
//! events in a legal order before results are published.

use crate::mllog::{keys, LogEntry};
use serde_json::Value;
use std::fmt;

/// A compliance problem found in a submission log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComplianceIssue {
    /// A required key never appears.
    MissingKey(&'static str),
    /// Events appear out of lifecycle order.
    OutOfOrder {
        /// The key that appeared too early.
        early: &'static str,
        /// The key it must follow.
        late: &'static str,
    },
    /// `run_stop` exists but does not carry a status.
    RunStopWithoutStatus,
    /// Log timestamps go backwards.
    NonMonotonicTimestamps,
    /// No evaluation results between run start and stop.
    NoEvaluations,
}

impl fmt::Display for ComplianceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplianceIssue::MissingKey(k) => write!(f, "required key `{k}` missing"),
            ComplianceIssue::OutOfOrder { early, late } => {
                write!(f, "`{early}` appears before `{late}`")
            }
            ComplianceIssue::RunStopWithoutStatus => {
                write!(f, "`run_stop` has no status field")
            }
            ComplianceIssue::NonMonotonicTimestamps => write!(f, "timestamps go backwards"),
            ComplianceIssue::NoEvaluations => {
                write!(f, "no eval_accuracy entries inside the timed region")
            }
        }
    }
}

/// Checks a run log for rule compliance; returns all problems found
/// (empty = compliant).
pub fn check_log(entries: &[LogEntry]) -> Vec<ComplianceIssue> {
    let mut issues = Vec::new();
    let pos = |key: &str| entries.iter().position(|e| e.key == key);

    for required in [
        keys::SUBMISSION_BENCHMARK,
        keys::SEED,
        keys::QUALITY_TARGET,
        keys::RUN_START,
        keys::RUN_STOP,
    ] {
        if pos(required).is_none() {
            issues.push(ComplianceIssue::MissingKey(required));
        }
    }

    // Ordering constraints over present keys.
    let order_pairs = [
        (keys::INIT_START, keys::RUN_START),
        (keys::RUN_START, keys::RUN_STOP),
        (keys::RUN_START, keys::EPOCH_START),
        (keys::EPOCH_START, keys::EPOCH_STOP),
    ];
    for (first, second) in order_pairs {
        if let (Some(a), Some(b)) = (pos(first), pos(second)) {
            if a > b {
                issues.push(ComplianceIssue::OutOfOrder { early: second, late: first });
            }
        }
    }

    if let Some(stop) = entries.iter().find(|e| e.key == keys::RUN_STOP) {
        match &stop.value {
            Value::Object(map) if map.contains_key("status") => {}
            _ => issues.push(ComplianceIssue::RunStopWithoutStatus),
        }
    }

    if entries.windows(2).any(|w| w[1].time_ms < w[0].time_ms) {
        issues.push(ComplianceIssue::NonMonotonicTimestamps);
    }

    if let (Some(start), Some(stop)) = (pos(keys::RUN_START), pos(keys::RUN_STOP)) {
        let evals = entries[start..=stop.min(entries.len() - 1)]
            .iter()
            .filter(|e| e.key == keys::EVAL_ACCURACY)
            .count();
        if evals == 0 {
            issues.push(ComplianceIssue::NoEvaluations);
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_benchmark, Benchmark};
    use crate::suite::BenchmarkId;
    use crate::timing::SimClock;
    use serde_json::json;

    fn entry(time_ms: u64, key: &str, value: Value) -> LogEntry {
        LogEntry { time_ms, key: key.to_string(), value }
    }

    fn minimal_valid() -> Vec<LogEntry> {
        vec![
            entry(0, keys::SUBMISSION_BENCHMARK, json!("ncf")),
            entry(0, keys::SEED, json!(1)),
            entry(0, keys::QUALITY_TARGET, json!(0.635)),
            entry(1, keys::INIT_START, json!(null)),
            entry(5, keys::RUN_START, json!(null)),
            entry(6, keys::EPOCH_START, json!(0)),
            entry(9, keys::EPOCH_STOP, json!(0)),
            entry(10, keys::EVAL_ACCURACY, json!(0.7)),
            entry(11, keys::RUN_STOP, json!({"status": "success"})),
        ]
    }

    #[test]
    fn valid_log_passes() {
        assert!(check_log(&minimal_valid()).is_empty());
    }

    #[test]
    fn missing_seed_flagged() {
        let log: Vec<LogEntry> = minimal_valid()
            .into_iter()
            .filter(|e| e.key != keys::SEED)
            .collect();
        assert!(check_log(&log).contains(&ComplianceIssue::MissingKey(keys::SEED)));
    }

    #[test]
    fn out_of_order_flagged() {
        let mut log = minimal_valid();
        log.swap(3, 4); // run_start before init_start
        assert!(check_log(&log)
            .iter()
            .any(|i| matches!(i, ComplianceIssue::OutOfOrder { .. })));
    }

    #[test]
    fn run_stop_without_status_flagged() {
        let mut log = minimal_valid();
        log.last_mut().unwrap().value = json!(null);
        assert!(check_log(&log).contains(&ComplianceIssue::RunStopWithoutStatus));
    }

    #[test]
    fn backwards_timestamps_flagged() {
        let mut log = minimal_valid();
        log[6].time_ms = 2; // earlier than its predecessor
        assert!(check_log(&log).contains(&ComplianceIssue::NonMonotonicTimestamps));
    }

    #[test]
    fn no_evals_flagged() {
        let log: Vec<LogEntry> = minimal_valid()
            .into_iter()
            .filter(|e| e.key != keys::EVAL_ACCURACY)
            .collect();
        assert!(check_log(&log).contains(&ComplianceIssue::NoEvaluations));
    }

    /// The harness's own logs must pass the compliance checker — the
    /// property that ties §3.2 and §4.1 together.
    #[test]
    fn harness_output_is_compliant() {
        struct Instant0;
        impl Benchmark for Instant0 {
            fn id(&self) -> BenchmarkId {
                BenchmarkId::Recommendation
            }
            fn prepare(&mut self) {}
            fn create_model(&mut self, _seed: u64) {}
            fn train_epoch(&mut self, _epoch: usize) {}
            fn evaluate(&mut self) -> f64 {
                1.0
            }
            fn target(&self) -> f64 {
                0.5
            }
            fn max_epochs(&self) -> usize {
                3
            }
        }
        let clock = SimClock::new();
        let result = run_benchmark(&mut Instant0, 1, &clock);
        let issues = check_log(result.log.entries());
        assert!(issues.is_empty(), "harness log non-compliant: {issues:?}");
    }
}
