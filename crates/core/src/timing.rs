//! The time-to-train clock and the paper's timing exclusions (§3.2.1).
//!
//! Timing begins when any training or validation data is touched and
//! stops when the quality target is achieved. Excluded from the timed
//! region:
//!
//! - **system initialization** (cluster diagnostics, scheduling);
//! - **model creation and initialization**, up to a cap of 20 minutes —
//!   beyond the cap, the excess counts toward the result (discouraging
//!   impractically expensive compilation);
//! - **one-time data reformatting** — but augmentation performed during
//!   training may *not* be moved there.

use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The model-creation exclusion cap: 20 minutes.
pub const MODEL_CREATION_CAP: Duration = Duration::from_secs(20 * 60);

/// A monotonic time source. Real runs use [`RealClock`]; the timing
/// tests use [`SimClock`] to script arbitrary stage durations.
///
/// Re-exported from `mlperf-telemetry`, so the same clock drives both
/// the time-to-train timer and the telemetry spans of a run.
pub use mlperf_telemetry::Clock;

/// Wall-clock time via [`Instant`].
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock with origin at creation.
    pub fn new() -> Self {
        RealClock { origin: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A manually advanced clock for deterministic timing tests. Cheap to
/// clone; clones share the same time.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<Duration>>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advances the clock.
    pub fn advance(&self, by: Duration) {
        self.now.set(self.now.get() + by);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        self.now.get()
    }
}

/// The lifecycle stages a run moves through, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Created,
    SystemInit,
    Reformatting,
    ModelCreation,
    Timed,
    Stopped,
}

/// Accumulates a run's stage durations and computes the official
/// time-to-train under the exclusion rules.
///
/// Stages must be entered in lifecycle order (system init →
/// reformatting → model creation → timed region); each is optional.
pub struct RunTimer<'c> {
    clock: &'c dyn Clock,
    stage: Stage,
    stage_started: Duration,
    system_init: Duration,
    reformatting: Duration,
    model_creation: Duration,
    timed: Duration,
}

impl<'c> RunTimer<'c> {
    /// A timer over the given clock.
    pub fn new(clock: &'c dyn Clock) -> Self {
        RunTimer {
            clock,
            stage: Stage::Created,
            stage_started: clock.now(),
            system_init: Duration::ZERO,
            reformatting: Duration::ZERO,
            model_creation: Duration::ZERO,
            timed: Duration::ZERO,
        }
    }

    fn close_stage(&mut self) {
        let elapsed = self.clock.now() - self.stage_started;
        match self.stage {
            Stage::SystemInit => self.system_init += elapsed,
            Stage::Reformatting => self.reformatting += elapsed,
            Stage::ModelCreation => self.model_creation += elapsed,
            Stage::Timed => self.timed += elapsed,
            Stage::Created | Stage::Stopped => {}
        }
        self.stage_started = self.clock.now();
    }

    fn enter(&mut self, next: Stage, order: u8) {
        let current_order = stage_order(self.stage);
        assert!(
            order >= current_order,
            "run stages must advance in lifecycle order ({:?} -> {next:?})",
            self.stage
        );
        self.close_stage();
        self.stage = next;
    }

    /// Enters the (excluded) system-initialization stage.
    ///
    /// # Panics
    ///
    /// Panics if a later stage has already begun.
    pub fn begin_system_init(&mut self) {
        self.enter(Stage::SystemInit, 1);
    }

    /// Enters the (excluded) one-time data-reformatting stage.
    ///
    /// # Panics
    ///
    /// Panics if a later stage has already begun.
    pub fn begin_reformatting(&mut self) {
        self.enter(Stage::Reformatting, 2);
    }

    /// Enters the model-creation stage (excluded up to
    /// [`MODEL_CREATION_CAP`]).
    ///
    /// # Panics
    ///
    /// Panics if the timed region has already begun.
    pub fn begin_model_creation(&mut self) {
        self.enter(Stage::ModelCreation, 3);
    }

    /// Enters the timed region — the moment training/validation data is
    /// first touched.
    ///
    /// # Panics
    ///
    /// Panics if the run was already stopped.
    pub fn begin_timed(&mut self) {
        self.enter(Stage::Timed, 4);
    }

    /// Stops the run.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn stop(&mut self) {
        assert_ne!(self.stage, Stage::Stopped, "run already stopped");
        self.close_stage();
        self.stage = Stage::Stopped;
    }

    /// The official time-to-train: the timed region, plus any model
    /// creation time beyond the 20-minute cap.
    ///
    /// # Panics
    ///
    /// Panics if the run has not been stopped.
    pub fn time_to_train(&self) -> Duration {
        assert_eq!(self.stage, Stage::Stopped, "run still in progress");
        let excess = self.model_creation.saturating_sub(MODEL_CREATION_CAP);
        self.timed + excess
    }

    /// Total excluded time (init + reformatting + capped model
    /// creation).
    pub fn excluded(&self) -> Duration {
        self.system_init + self.reformatting + self.model_creation.min(MODEL_CREATION_CAP)
    }

    /// Time spent in the model-creation stage.
    pub fn model_creation(&self) -> Duration {
        self.model_creation
    }

    /// Time spent in the timed region only.
    pub fn timed(&self) -> Duration {
        self.timed
    }
}

fn stage_order(s: Stage) -> u8 {
    match s {
        Stage::Created => 0,
        Stage::SystemInit => 1,
        Stage::Reformatting => 2,
        Stage::ModelCreation => 3,
        Stage::Timed => 4,
        Stage::Stopped => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn init_and_reformatting_are_excluded() {
        let clock = SimClock::new();
        let mut t = RunTimer::new(&clock);
        t.begin_system_init();
        clock.advance(secs(300)); // 5 min of cluster init
        t.begin_reformatting();
        clock.advance(secs(600)); // 10 min of data packing
        t.begin_model_creation();
        clock.advance(secs(60)); // 1 min of model build
        t.begin_timed();
        clock.advance(secs(120)); // 2 min of training
        t.stop();
        assert_eq!(t.time_to_train(), secs(120));
        assert_eq!(t.excluded(), secs(960));
    }

    #[test]
    fn model_creation_beyond_cap_counts() {
        let clock = SimClock::new();
        let mut t = RunTimer::new(&clock);
        t.begin_model_creation();
        clock.advance(secs(25 * 60)); // 25 min compile: 5 over cap
        t.begin_timed();
        clock.advance(secs(60));
        t.stop();
        assert_eq!(t.time_to_train(), secs(60 + 5 * 60));
        assert_eq!(t.excluded(), secs(20 * 60));
    }

    #[test]
    fn model_creation_at_cap_fully_excluded() {
        let clock = SimClock::new();
        let mut t = RunTimer::new(&clock);
        t.begin_model_creation();
        clock.advance(MODEL_CREATION_CAP);
        t.begin_timed();
        clock.advance(secs(10));
        t.stop();
        assert_eq!(t.time_to_train(), secs(10));
    }

    #[test]
    fn stages_are_optional() {
        let clock = SimClock::new();
        let mut t = RunTimer::new(&clock);
        t.begin_timed();
        clock.advance(secs(42));
        t.stop();
        assert_eq!(t.time_to_train(), secs(42));
        assert_eq!(t.excluded(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "lifecycle order")]
    fn cannot_reformat_after_training_started() {
        let clock = SimClock::new();
        let mut t = RunTimer::new(&clock);
        t.begin_timed();
        t.begin_reformatting();
    }

    #[test]
    #[should_panic(expected = "still in progress")]
    fn ttt_requires_stop() {
        let clock = SimClock::new();
        let mut t = RunTimer::new(&clock);
        t.begin_timed();
        t.time_to_train();
    }

    #[test]
    #[should_panic(expected = "already stopped")]
    fn double_stop_panics() {
        let clock = SimClock::new();
        let mut t = RunTimer::new(&clock);
        t.begin_timed();
        t.stop();
        t.stop();
    }

    #[test]
    fn real_clock_advances() {
        let c = RealClock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.now() > a);
    }
}
