//! Structured submission logging.
//!
//! §4.1 of the paper: "A training session log file contains a variety
//! of structured information including timestamps for important stages
//! of the workload, quality metric evaluated at prescribed intervals,
//! hyper-parameter choices … These logs form the foundation for
//! subsequent result analysis." The real suite uses the `mlperf-logging`
//! line format — `:::MLLOG {json}` — which this module reproduces.
//!
//! Parsing is the innermost loop of archive ingest (ROADMAP: a round is
//! hundreds of log files, thousands of lines), so [`parse_mllog_line`]
//! runs a zero-copy scanner over the canonical rendered shape and only
//! falls back to the full `serde_json` parser for exotic payloads, and
//! [`LogKey`] interns the standard vocabulary so the common case
//! allocates nothing per line.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::borrow::Borrow;
use std::fmt;
use std::fmt::Write as _;
use std::ops::Deref;

/// Standard log keys (the subset of the mlperf-logging vocabulary the
/// harness emits and the compliance checker requires).
pub mod keys {
    /// Marks the submission system/benchmark header.
    pub const SUBMISSION_BENCHMARK: &str = "submission_benchmark";
    /// The org making the submission.
    pub const SUBMISSION_ORG: &str = "submission_org";
    /// Division (closed/open).
    pub const SUBMISSION_DIVISION: &str = "submission_division";
    /// Untimed initialization started.
    pub const INIT_START: &str = "init_start";
    /// Untimed initialization finished.
    pub const INIT_STOP: &str = "init_stop";
    /// Timed region begins (first touch of training data).
    pub const RUN_START: &str = "run_start";
    /// Timed region ends (quality reached or run abandoned).
    pub const RUN_STOP: &str = "run_stop";
    /// One training epoch begins; value is the epoch number.
    pub const EPOCH_START: &str = "epoch_start";
    /// One training epoch ends.
    pub const EPOCH_STOP: &str = "epoch_stop";
    /// An evaluation result; value is the quality metric.
    pub const EVAL_ACCURACY: &str = "eval_accuracy";
    /// The run's random seed.
    pub const SEED: &str = "seed";
    /// A hyperparameter record; value is `{name, value}`.
    pub const HYPERPARAMETER: &str = "hyperparameter";
    /// The quality threshold in effect.
    pub const QUALITY_TARGET: &str = "quality_target";
    /// Loadgen: which scenario produced this log; value is the
    /// scenario slug (`single_stream` / `server` / `offline`).
    pub const LOADGEN_SCENARIO: &str = "loadgen_scenario";
    /// Loadgen: how many queries the scenario issued.
    pub const LOADGEN_QUERY_COUNT: &str = "loadgen_query_count";
    /// Loadgen: measured duration of the scenario in milliseconds.
    pub const LOADGEN_DURATION_MS: &str = "loadgen_duration_ms";
    /// Loadgen: median (p50) query latency in milliseconds.
    pub const LOADGEN_LATENCY_P50_MS: &str = "loadgen_latency_p50_ms";
    /// Loadgen: 90th-percentile query latency in milliseconds.
    pub const LOADGEN_LATENCY_P90_MS: &str = "loadgen_latency_p90_ms";
    /// Loadgen: 99th-percentile query latency in milliseconds.
    pub const LOADGEN_LATENCY_P99_MS: &str = "loadgen_latency_p99_ms";
    /// Loadgen: achieved queries per second (Server: max sustainable).
    pub const LOADGEN_QPS: &str = "loadgen_qps";
    /// Loadgen: the Server scenario's latency SLO in milliseconds.
    pub const LOADGEN_SLO_MS: &str = "loadgen_slo_ms";
    /// Loadgen: whether the scenario met its latency SLO.
    pub const LOADGEN_SLO_SATISFIED: &str = "loadgen_slo_satisfied";
}

/// Returns the interned static form of a standard key, or `None` for a
/// custom key. A `match` on the string compiles to a length switch plus
/// one memcmp — far cheaper than allocating.
fn intern(s: &str) -> Option<&'static str> {
    Some(match s {
        "submission_benchmark" => keys::SUBMISSION_BENCHMARK,
        "submission_org" => keys::SUBMISSION_ORG,
        "submission_division" => keys::SUBMISSION_DIVISION,
        "init_start" => keys::INIT_START,
        "init_stop" => keys::INIT_STOP,
        "run_start" => keys::RUN_START,
        "run_stop" => keys::RUN_STOP,
        "epoch_start" => keys::EPOCH_START,
        "epoch_stop" => keys::EPOCH_STOP,
        "eval_accuracy" => keys::EVAL_ACCURACY,
        "seed" => keys::SEED,
        "hyperparameter" => keys::HYPERPARAMETER,
        "quality_target" => keys::QUALITY_TARGET,
        "loadgen_scenario" => keys::LOADGEN_SCENARIO,
        "loadgen_query_count" => keys::LOADGEN_QUERY_COUNT,
        "loadgen_duration_ms" => keys::LOADGEN_DURATION_MS,
        "loadgen_latency_p50_ms" => keys::LOADGEN_LATENCY_P50_MS,
        "loadgen_latency_p90_ms" => keys::LOADGEN_LATENCY_P90_MS,
        "loadgen_latency_p99_ms" => keys::LOADGEN_LATENCY_P99_MS,
        "loadgen_qps" => keys::LOADGEN_QPS,
        "loadgen_slo_ms" => keys::LOADGEN_SLO_MS,
        "loadgen_slo_satisfied" => keys::LOADGEN_SLO_SATISFIED,
        _ => return None,
    })
}

/// A log entry's event key: one of the standard [`keys`] interned to a
/// `&'static str` (no allocation), or an owned string for custom keys.
/// Compares, hashes, and renders by content, so `entry.key ==
/// keys::RUN_STOP` and `&entry.key` as a `&str` both keep working.
#[derive(Debug, Clone)]
pub struct LogKey(KeyRepr);

#[derive(Debug, Clone)]
enum KeyRepr {
    Interned(&'static str),
    Owned(Box<str>),
}

impl LogKey {
    /// Builds a key, interning the standard vocabulary.
    pub fn new(s: &str) -> LogKey {
        match intern(s) {
            Some(k) => LogKey(KeyRepr::Interned(k)),
            None => LogKey(KeyRepr::Owned(s.into())),
        }
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            KeyRepr::Interned(s) => s,
            KeyRepr::Owned(s) => s,
        }
    }

    /// True when this key is one of the interned standard [`keys`].
    pub fn is_standard(&self) -> bool {
        matches!(self.0, KeyRepr::Interned(_))
    }
}

impl Deref for LogKey {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for LogKey {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for LogKey {
    fn from(s: &str) -> LogKey {
        LogKey::new(s)
    }
}

impl From<String> for LogKey {
    fn from(s: String) -> LogKey {
        match intern(&s) {
            Some(k) => LogKey(KeyRepr::Interned(k)),
            None => LogKey(KeyRepr::Owned(s.into_boxed_str())),
        }
    }
}

impl PartialEq for LogKey {
    fn eq(&self, other: &LogKey) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for LogKey {}

impl PartialEq<str> for LogKey {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for LogKey {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<LogKey> for str {
    fn eq(&self, other: &LogKey) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<LogKey> for &str {
    fn eq(&self, other: &LogKey) -> bool {
        *self == other.as_str()
    }
}

impl std::hash::Hash for LogKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Display for LogKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for LogKey {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for LogKey {
    fn from_value(v: &Value) -> Result<Self, serde::de::Error> {
        match v {
            Value::String(s) => Ok(LogKey::new(s)),
            _ => Err(serde::de::Error::custom("expected string log key")),
        }
    }
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Milliseconds since the logger was created.
    pub time_ms: u64,
    /// The event key (see [`keys`]).
    pub key: LogKey,
    /// The event payload.
    pub value: Value,
}

/// One malformed line in a rendered log.
#[derive(Debug, Clone, PartialEq)]
pub struct LineFault {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Why the line failed to parse.
    pub reason: String,
    /// True when this is the final line of a log that ends mid-line
    /// (no trailing newline) — the signature of a writer that crashed
    /// mid-record, as opposed to ordinary corruption.
    pub truncated: bool,
}

impl fmt::Display for LineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.truncated {
            write!(f, "line {}: truncated final record ({})", self.line, self.reason)
        } else {
            write!(f, "line {}: {}", self.line, self.reason)
        }
    }
}

/// Parse failure for a whole log: every malformed line with its reason,
/// in line order, so quarantine reports can name all offending lines
/// instead of only the first.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Each malformed line, in line order. Never empty.
    pub faults: Vec<LineFault>,
}

impl ParseError {
    /// True when the only damage is a truncated final line — an
    /// otherwise intact log whose writer crashed mid-record.
    pub fn truncated_tail_only(&self) -> bool {
        matches!(self.faults.as_slice(), [only] if only.truncated)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// An in-memory structured logger that renders to the `:::MLLOG` line
/// format.
#[derive(Debug, Clone, Default)]
pub struct MlLogger {
    entries: Vec<LogEntry>,
    /// Logical time source (milliseconds); advanced by the harness so
    /// log timestamps agree with the harness clock.
    now_ms: u64,
}

impl MlLogger {
    /// Creates an empty logger.
    pub fn new() -> Self {
        MlLogger::default()
    }

    /// Sets the logical timestamp used for subsequent entries.
    pub fn set_time_ms(&mut self, now_ms: u64) {
        self.now_ms = now_ms;
    }

    /// Appends an entry at the current logical time.
    pub fn log(&mut self, key: &str, value: Value) {
        self.entries.push(LogEntry { time_ms: self.now_ms, key: LogKey::new(key), value });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Renders the log in the `:::MLLOG {json}` line format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let json = serde_json::to_string(e).expect("log entries serialize");
            writeln!(out, ":::MLLOG {json}").expect("writing to string cannot fail");
        }
        out
    }

    /// Parses a rendered log back into entries.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming **every** malformed line (not
    /// just the first), with a truncated final line — the crashed-writer
    /// case — classified distinctly.
    pub fn parse(text: &str) -> Result<Vec<LogEntry>, ParseError> {
        let mut out = Vec::new();
        let mut faults = Vec::new();
        let complete_tail = text.ends_with('\n');
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, line)) = lines.next() {
            match parse_mllog_line(line) {
                Ok(Some(entry)) => out.push(entry),
                Ok(None) => {}
                Err(reason) => {
                    let is_last = lines.peek().is_none();
                    faults.push(LineFault {
                        line: i + 1,
                        reason,
                        truncated: is_last && !complete_tail,
                    });
                }
            }
        }
        if faults.is_empty() {
            Ok(out)
        } else {
            Err(ParseError { faults })
        }
    }

    /// Validates a rendered log without building any entries: the
    /// verdict of [`MlLogger::parse`] at a fraction of its cost.
    /// Archive ingest checks every stored log file this way (review
    /// re-parses the text later, on the worker pool), so the check must
    /// not allocate a `Value` tree per line. Each line is scanned by an
    /// accept-only validator that recognizes canonical rendered output;
    /// the first line it cannot vouch for sends the whole text through
    /// [`MlLogger::parse`], whose structured [`ParseError`] — naming
    /// every malformed line — is returned as-is. Verdict and error are
    /// therefore always identical to the full parse.
    ///
    /// # Errors
    ///
    /// Exactly when [`MlLogger::parse`] fails, with the same
    /// [`ParseError`].
    pub fn validate(text: &str) -> Result<(), ParseError> {
        for line in text.lines() {
            if !line_is_valid(line) {
                return MlLogger::parse(text).map(|_| ());
            }
        }
        Ok(())
    }
}

/// Accept-only per-line check behind [`MlLogger::validate`]: true only
/// when [`parse_mllog_line`] is certain to accept the line. The fast
/// scan covers canonical rendered lines; anything else is decided by
/// the serde parser (discarding the entry it builds — that price is
/// paid only for non-canonical lines).
fn line_is_valid(line: &str) -> bool {
    match line.strip_prefix(":::MLLOG ") {
        Some(body) => validate_body_fast(body) || serde_json::from_str::<LogEntry>(body).is_ok(),
        None => line.trim().is_empty(),
    }
}

/// Allocation-free scan of the canonical body shape
/// `{"key":"…","time_ms":N,"value":V}`. One-sided like
/// [`parse_body_fast`]: true only when the serde parser would accept
/// the body too; any deviation — escapes, whitespace, exotic numbers —
/// returns false and the caller consults serde.
fn validate_body_fast(body: &str) -> bool {
    fn scan(body: &str) -> Option<()> {
        let rest = body.strip_prefix("{\"key\":\"")?;
        let key_end = rest.bytes().position(|b| b == b'"' || b == b'\\' || b < 0x20)?;
        if rest.as_bytes()[key_end] != b'"' {
            return None;
        }
        let rest = rest[key_end..].strip_prefix("\",\"time_ms\":")?;
        let digits = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
        let (num, rest) = rest.split_at(digits);
        // Parsed, not just counted: 20 digits can overflow u64, which
        // the serde path rejects for a u64 field.
        num.parse::<u64>().ok()?;
        let rest = rest.strip_prefix(",\"value\":")?;
        let value = rest.strip_suffix('}')?;
        let bytes = value.as_bytes();
        let mut pos = 0;
        skip_value(bytes, &mut pos)?;
        (pos == bytes.len()).then_some(())
    }
    scan(body).is_some()
}

/// Skips one JSON value in canonical (whitespace-free) form, accepting
/// only constructs the serde parser is guaranteed to accept.
fn skip_value(bytes: &[u8], pos: &mut usize) -> Option<()> {
    match bytes.get(*pos)? {
        b'n' => skip_lit(bytes, pos, "null"),
        b't' => skip_lit(bytes, pos, "true"),
        b'f' => skip_lit(bytes, pos, "false"),
        b'"' => skip_string(bytes, pos),
        b'-' | b'0'..=b'9' => skip_number(bytes, pos),
        b'[' => {
            *pos += 1;
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(());
            }
            loop {
                skip_value(bytes, pos)?;
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(());
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(());
            }
            loop {
                skip_string(bytes, pos)?;
                if bytes.get(*pos)? != &b':' {
                    return None;
                }
                *pos += 1;
                skip_value(bytes, pos)?;
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(());
                    }
                    _ => return None,
                }
            }
        }
        _ => None,
    }
}

/// Consumes `lit` exactly at `pos`.
fn skip_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

/// Consumes a string literal with no escapes; `\` or a control byte
/// defers to serde.
fn skip_string(bytes: &[u8], pos: &mut usize) -> Option<()> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(());
            }
            b'\\' | 0x00..=0x1f => return None,
            _ => *pos += 1,
        }
    }
}

/// Consumes a conservative number: `-?d{1,19}(.d{1,19})?`, which the
/// serde grammar always accepts as a finite number (overflowing
/// integers fall to finite floats at these lengths). Exponents or any
/// further number-charset byte defer to serde.
fn skip_number(bytes: &[u8], pos: &mut usize) -> Option<()> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    digit_run(bytes, pos)?;
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        digit_run(bytes, pos)?;
    }
    if bytes.get(*pos).is_some_and(|b| matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        return None;
    }
    Some(())
}

/// Consumes 1–19 digits (19 digits of fraction or integer can never
/// overflow `f64` to infinity, and the caller re-checks `u64` ranges
/// where they matter).
fn digit_run(bytes: &[u8], pos: &mut usize) -> Option<()> {
    let start = *pos;
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
        *pos += 1;
    }
    (1..=19).contains(&(*pos - start)).then_some(())
}

/// Parses one `:::MLLOG` line into an entry. Blank lines yield
/// `Ok(None)`. This is the innermost unit of log ingest — the round
/// pipeline parses archived log files line by line through it, and the
/// ingest benchmarks time it in isolation.
///
/// The hot path is a zero-copy scanner over the canonical rendered
/// shape; any deviation falls back to [`parse_mllog_line_serde`], so
/// the two always agree (a property `tests/properties.rs` checks).
///
/// # Errors
///
/// Returns a message describing why the line is malformed (the caller
/// adds the line number).
pub fn parse_mllog_line(line: &str) -> Result<Option<LogEntry>, String> {
    if line.trim().is_empty() {
        return Ok(None);
    }
    let body =
        line.strip_prefix(":::MLLOG ").ok_or_else(|| "missing :::MLLOG prefix".to_string())?;
    if let Some(entry) = parse_body_fast(body) {
        return Ok(Some(entry));
    }
    let entry: LogEntry = serde_json::from_str(body).map_err(|e| e.to_string())?;
    Ok(Some(entry))
}

/// The reference parser: the full `serde_json` path that
/// [`parse_mllog_line`]'s zero-copy scanner falls back to. Exposed so
/// differential tests can check the scanner against it on arbitrary
/// rendered logs.
pub fn parse_mllog_line_serde(line: &str) -> Result<Option<LogEntry>, String> {
    if line.trim().is_empty() {
        return Ok(None);
    }
    let body =
        line.strip_prefix(":::MLLOG ").ok_or_else(|| "missing :::MLLOG prefix".to_string())?;
    let entry: LogEntry = serde_json::from_str(body).map_err(|e| e.to_string())?;
    Ok(Some(entry))
}

/// Zero-copy scanner for the canonical rendered body shape
/// `{"key":"…","time_ms":N,"value":V}` — exactly what [`MlLogger::render`]
/// emits (the vendored `serde_json::Map` is a `BTreeMap`, so fields
/// always render in this order, compactly). Returns `None` for any
/// deviation — whitespace, escapes in the key, reordered or duplicate
/// fields — which the caller routes to the full serde parser, so this
/// path only has to be right about bodies it accepts.
fn parse_body_fast(body: &str) -> Option<LogEntry> {
    let rest = body.strip_prefix("{\"key\":\"")?;
    // Scan the key: plain bytes up to the closing quote. An escape or a
    // control byte means a non-canonical key — let serde handle it.
    let key_end = rest.bytes().position(|b| b == b'"' || b == b'\\' || b < 0x20)?;
    if rest.as_bytes()[key_end] != b'"' {
        return None;
    }
    let (key, rest) = rest.split_at(key_end);
    let rest = rest.strip_prefix("\",\"time_ms\":")?;
    let digits = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
    if digits == 0 {
        return None;
    }
    let (num, rest) = rest.split_at(digits);
    // Overflowing u64 digits (or a float continuing after them) fall
    // back; the serde number grammar is otherwise a plain digit run.
    if rest.as_bytes().first().copied() != Some(b',') {
        return None;
    }
    let time_ms: u64 = num.parse().ok()?;
    let rest = rest.strip_prefix(",\"value\":")?;
    let value_text = rest.strip_suffix('}')?;
    let value = parse_value_fast(value_text)?;
    Some(LogEntry { time_ms, key: LogKey::new(key), value })
}

/// Parses the value slice of a canonical body. Simple scalars are
/// handled inline; everything else (floats, objects, arrays, escaped
/// strings) is delegated to `serde_json::from_str`, which demands the
/// slice be exactly one JSON value — the same judgment the full-body
/// parser would make, so agreement is structural.
fn parse_value_fast(text: &str) -> Option<Value> {
    match text.as_bytes().first()? {
        b'n' | b't' | b'f' => match text {
            "null" => Some(Value::Null),
            "true" => Some(Value::Bool(true)),
            "false" => Some(Value::Bool(false)),
            _ => serde_json::from_str(text).ok(),
        },
        b'0'..=b'9' => {
            let bytes = text.as_bytes();
            if bytes.iter().all(|b| b.is_ascii_digit()) {
                // The vendored number grammar parses a digit run as u64
                // (leading zeros and all), overflowing to float — which
                // the fallback below reproduces.
                match text.parse::<u64>() {
                    Ok(u) => Some(Value::Number(u.into())),
                    Err(_) => serde_json::from_str(text).ok(),
                }
            } else {
                serde_json::from_str(text).ok()
            }
        }
        b'"' => {
            let inner = &text.as_bytes()[1..];
            match inner.iter().position(|&b| b == b'"' || b == b'\\' || b < 0x20) {
                // A simple string: no escapes, closing quote ends the slice.
                Some(end) if inner[end] == b'"' && end + 2 == text.len() => {
                    Some(Value::String(text[1..=end].to_string()))
                }
                _ => serde_json::from_str(text).ok(),
            }
        }
        _ => serde_json::from_str(text).ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn log_and_render_roundtrip() {
        let mut logger = MlLogger::new();
        logger.log(keys::RUN_START, json!(null));
        logger.set_time_ms(1500);
        logger.log(keys::EVAL_ACCURACY, json!(0.42));
        logger.log(keys::RUN_STOP, json!({"status": "success"}));
        let text = logger.render();
        assert!(text.lines().all(|l| l.starts_with(":::MLLOG ")));
        let parsed = MlLogger::parse(&text).unwrap();
        assert_eq!(parsed, logger.entries());
        assert_eq!(parsed[1].time_ms, 1500);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MlLogger::parse("hello world").is_err());
        assert!(MlLogger::parse(":::MLLOG not-json").is_err());
    }

    #[test]
    fn parse_skips_blank_lines() {
        let mut logger = MlLogger::new();
        logger.log(keys::SEED, json!(7));
        let text = format!("\n{}\n\n", logger.render());
        assert_eq!(MlLogger::parse(&text).unwrap().len(), 1);
    }

    #[test]
    fn timestamps_monotone_when_time_advances() {
        let mut logger = MlLogger::new();
        for t in [0u64, 10, 20, 30] {
            logger.set_time_ms(t);
            logger.log(keys::EPOCH_START, json!(t));
        }
        let times: Vec<u64> = logger.entries().iter().map(|e| e.time_ms).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn standard_keys_are_interned_and_compare_by_content() {
        let interned = LogKey::new(keys::RUN_STOP);
        assert!(interned.is_standard());
        let custom = LogKey::new("my_custom_key");
        assert!(!custom.is_standard());
        assert_eq!(interned, keys::RUN_STOP);
        assert_eq!(interned.as_str(), "run_stop");
        assert_eq!(LogKey::from("run_stop".to_string()), interned);
        assert_ne!(interned, custom);
        // Deref lets a &LogKey stand in for &str.
        let s: &str = &interned;
        assert_eq!(s, "run_stop");
    }

    #[test]
    fn parse_collects_every_malformed_line() {
        // Satellite regression: one corrupt byte no longer hides the
        // diagnostics for later lines.
        let mut logger = MlLogger::new();
        logger.log(keys::SEED, json!(7));
        let good = logger.render();
        let text = format!("bogus one\n{good}:::MLLOG not-json\n{good}also bad\n");
        let err = MlLogger::parse(&text).unwrap_err();
        assert_eq!(err.faults.len(), 3);
        assert_eq!(
            err.faults.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![1, 3, 5],
            "faults name every offending line: {err}"
        );
        assert!(err.faults.iter().all(|f| !f.truncated));
        assert!(!err.truncated_tail_only());
        let msg = err.to_string();
        assert!(msg.contains("line 1:") && msg.contains("line 3:") && msg.contains("line 5:"));
    }

    #[test]
    fn parse_classifies_truncated_final_line() {
        // Crashed-writer case: the log ends mid-record with no newline.
        let mut logger = MlLogger::new();
        logger.log(keys::RUN_START, json!(null));
        logger.log(keys::SEED, json!(7));
        let rendered = logger.render();
        let cut = rendered.len() - 20;
        let truncated = &rendered[..cut];
        assert!(!truncated.ends_with('\n'));
        let err = MlLogger::parse(truncated).unwrap_err();
        assert!(err.truncated_tail_only(), "single truncated tail fault: {err:?}");
        assert_eq!(err.faults[0].line, 2);
        assert!(err.to_string().contains("truncated final record"));
        // The same damaged line mid-log (a newline follows) is ordinary
        // corruption, not a truncated tail.
        let mid = format!("{truncated}\n{rendered}");
        let err = MlLogger::parse(&mid).unwrap_err();
        assert!(!err.truncated_tail_only());
        assert!(!err.faults[0].truncated);
    }

    #[test]
    fn fast_and_serde_parsers_agree_on_edge_cases() {
        // Exotic payloads the fast path must route to the fallback
        // without changing the verdict.
        let cases = [
            r#":::MLLOG {"key":"seed","time_ms":1,"value":7}"#,
            r#":::MLLOG {"key":"eval_accuracy","time_ms":12,"value":0.53}"#,
            r#":::MLLOG {"key":"run_stop","time_ms":3,"value":{"status":"success"}}"#,
            r#":::MLLOG {"key":"k","time_ms":0,"value":"plain"}"#,
            r#":::MLLOG {"key":"k","time_ms":0,"value":"esc\naped"}"#,
            r#":::MLLOG {"key":"esc","time_ms":0,"value":null}"#,
            r#":::MLLOG { "key": "spaced", "time_ms": 5, "value": true }"#,
            r#":::MLLOG {"time_ms":5,"value":true,"key":"reordered"}"#,
            r#":::MLLOG {"key":"k","time_ms":007,"value":[1,2,3]}"#,
            r#":::MLLOG {"key":"k","time_ms":18446744073709551616,"value":null}"#,
            r#":::MLLOG {"key":"k","time_ms":-1,"value":null}"#,
            r#":::MLLOG {"key":"k","time_ms":1.5,"value":null}"#,
            r#":::MLLOG {"key":"k","time_ms":1,"value":99999999999999999999}"#,
            r#":::MLLOG {"key":"k","time_ms":1,"value":12}trailing"#,
            r#":::MLLOG {"key":"k","time_ms":1,"value":{}}"#,
            r#":::MLLOG {"key":"k","time_ms":1}"#,
            r#":::MLLOG {"key":"k","time_ms":1,"value":"unterminated"#,
        ];
        for line in cases {
            let fast = parse_mllog_line(line);
            let serde = parse_mllog_line_serde(line);
            assert_eq!(fast.is_ok(), serde.is_ok(), "verdicts differ for {line}");
            if let (Ok(a), Ok(b)) = (&fast, &serde) {
                assert_eq!(a, b, "parses differ for {line}");
            }
            // The allocation-free validator must agree with both.
            assert_eq!(
                MlLogger::validate(&format!("{line}\n")).is_ok(),
                MlLogger::parse(&format!("{line}\n")).is_ok(),
                "validate verdict differs for {line}"
            );
        }
    }

    /// `validate` is a pure accept/reject oracle for `parse`: same
    /// verdict on every text, and on rejection the same structured
    /// error, fault lines and all.
    #[test]
    fn validate_agrees_with_parse() {
        let mut logger = MlLogger::new();
        logger.log(keys::SUBMISSION_BENCHMARK, json!("ncf"));
        logger.log(keys::SEED, json!(7));
        logger.set_time_ms(10);
        logger.log(keys::EVAL_ACCURACY, json!(0.62));
        logger.log(keys::RUN_STOP, json!({"status": "success"}));
        logger.log("custom_key", json!([1, 2.5, "s", null, {"nested": true}]));
        let clean = logger.render();
        assert!(MlLogger::validate(&clean).is_ok());

        let texts = [
            clean.clone(),
            format!("\n{clean}\n\n"),
            clean.replace(":::MLLOG {\"key\":\"seed\"", "garbage line"),
            format!("{clean}:::MLLOG {{\"key\":\"k\",\"time_ms\":1,\"value\":"),
            format!("{clean}:::MLLOG {{\"key\":\"k\",\"time_ms\":9e9,\"value\":null}}\n"),
            String::new(),
        ];
        for text in texts {
            let validated = MlLogger::validate(&text);
            let parsed = MlLogger::parse(&text);
            assert_eq!(validated.is_ok(), parsed.is_ok(), "verdicts differ for {text:?}");
            if let (Err(a), Err(b)) = (validated, parsed) {
                assert_eq!(a, b, "errors differ for {text:?}");
            }
        }
    }
}
