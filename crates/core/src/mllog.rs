//! Structured submission logging.
//!
//! §4.1 of the paper: "A training session log file contains a variety
//! of structured information including timestamps for important stages
//! of the workload, quality metric evaluated at prescribed intervals,
//! hyper-parameter choices … These logs form the foundation for
//! subsequent result analysis." The real suite uses the `mlperf-logging`
//! line format — `:::MLLOG {json}` — which this module reproduces.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt::Write as _;

/// Standard log keys (the subset of the mlperf-logging vocabulary the
/// harness emits and the compliance checker requires).
pub mod keys {
    /// Marks the submission system/benchmark header.
    pub const SUBMISSION_BENCHMARK: &str = "submission_benchmark";
    /// The org making the submission.
    pub const SUBMISSION_ORG: &str = "submission_org";
    /// Division (closed/open).
    pub const SUBMISSION_DIVISION: &str = "submission_division";
    /// Untimed initialization started.
    pub const INIT_START: &str = "init_start";
    /// Untimed initialization finished.
    pub const INIT_STOP: &str = "init_stop";
    /// Timed region begins (first touch of training data).
    pub const RUN_START: &str = "run_start";
    /// Timed region ends (quality reached or run abandoned).
    pub const RUN_STOP: &str = "run_stop";
    /// One training epoch begins; value is the epoch number.
    pub const EPOCH_START: &str = "epoch_start";
    /// One training epoch ends.
    pub const EPOCH_STOP: &str = "epoch_stop";
    /// An evaluation result; value is the quality metric.
    pub const EVAL_ACCURACY: &str = "eval_accuracy";
    /// The run's random seed.
    pub const SEED: &str = "seed";
    /// A hyperparameter record; value is `{name, value}`.
    pub const HYPERPARAMETER: &str = "hyperparameter";
    /// The quality threshold in effect.
    pub const QUALITY_TARGET: &str = "quality_target";
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Milliseconds since the logger was created.
    pub time_ms: u64,
    /// The event key (see [`keys`]).
    pub key: String,
    /// The event payload.
    pub value: Value,
}

/// An in-memory structured logger that renders to the `:::MLLOG` line
/// format.
#[derive(Debug, Clone, Default)]
pub struct MlLogger {
    entries: Vec<LogEntry>,
    /// Logical time source (milliseconds); advanced by the harness so
    /// log timestamps agree with the harness clock.
    now_ms: u64,
}

impl MlLogger {
    /// Creates an empty logger.
    pub fn new() -> Self {
        MlLogger::default()
    }

    /// Sets the logical timestamp used for subsequent entries.
    pub fn set_time_ms(&mut self, now_ms: u64) {
        self.now_ms = now_ms;
    }

    /// Appends an entry at the current logical time.
    pub fn log(&mut self, key: &str, value: Value) {
        self.entries.push(LogEntry { time_ms: self.now_ms, key: key.to_string(), value });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Renders the log in the `:::MLLOG {json}` line format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let json = serde_json::to_string(e).expect("log entries serialize");
            writeln!(out, ":::MLLOG {json}").expect("writing to string cannot fail");
        }
        out
    }

    /// Parses a rendered log back into entries.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Vec<LogEntry>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            match parse_mllog_line(line).map_err(|e| format!("line {}: {e}", i + 1))? {
                Some(entry) => out.push(entry),
                None => continue,
            }
        }
        Ok(out)
    }
}

/// Parses one `:::MLLOG` line into an entry. Blank lines yield
/// `Ok(None)`. This is the innermost unit of log ingest — the round
/// pipeline parses archived log files line by line through it, and the
/// ingest benchmarks time it in isolation.
///
/// # Errors
///
/// Returns a message describing why the line is malformed (the caller
/// adds the line number).
pub fn parse_mllog_line(line: &str) -> Result<Option<LogEntry>, String> {
    if line.trim().is_empty() {
        return Ok(None);
    }
    let body =
        line.strip_prefix(":::MLLOG ").ok_or_else(|| "missing :::MLLOG prefix".to_string())?;
    let entry: LogEntry = serde_json::from_str(body).map_err(|e| e.to_string())?;
    Ok(Some(entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn log_and_render_roundtrip() {
        let mut logger = MlLogger::new();
        logger.log(keys::RUN_START, json!(null));
        logger.set_time_ms(1500);
        logger.log(keys::EVAL_ACCURACY, json!(0.42));
        logger.log(keys::RUN_STOP, json!({"status": "success"}));
        let text = logger.render();
        assert!(text.lines().all(|l| l.starts_with(":::MLLOG ")));
        let parsed = MlLogger::parse(&text).unwrap();
        assert_eq!(parsed, logger.entries());
        assert_eq!(parsed[1].time_ms, 1500);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MlLogger::parse("hello world").is_err());
        assert!(MlLogger::parse(":::MLLOG not-json").is_err());
    }

    #[test]
    fn parse_skips_blank_lines() {
        let mut logger = MlLogger::new();
        logger.log(keys::SEED, json!(7));
        let text = format!("\n{}\n\n", logger.render());
        assert_eq!(MlLogger::parse(&text).unwrap().len(), 1);
    }

    #[test]
    fn timestamps_monotone_when_time_advances() {
        let mut logger = MlLogger::new();
        for t in [0u64, 10, 20, 30] {
            logger.set_time_ms(t);
            logger.log(keys::EPOCH_START, json!(t));
        }
        let times: Vec<u64> = logger.entries().iter().map(|e| e.time_ms).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
