//! The benchmark suite definition — Table 1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven benchmarks of MLPerf Training v0.5 (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// Image classification: ImageNet / ResNet-50 v1.5.
    ImageClassification,
    /// Light-weight object detection: COCO / SSD-ResNet-34.
    ObjectDetection,
    /// Heavy-weight detection + instance segmentation: COCO / Mask R-CNN.
    InstanceSegmentation,
    /// Recurrent translation: WMT16 EN-DE / GNMT.
    TranslationRecurrent,
    /// Non-recurrent translation: WMT17 EN-DE / Transformer.
    TranslationNonRecurrent,
    /// Recommendation: MovieLens-20M / NCF.
    Recommendation,
    /// Reinforcement learning: Go 9×9 / MiniGo.
    ReinforcementLearning,
}

impl BenchmarkId {
    /// All seven benchmarks, in Table 1 order.
    pub const ALL: [BenchmarkId; 7] = [
        BenchmarkId::ImageClassification,
        BenchmarkId::ObjectDetection,
        BenchmarkId::InstanceSegmentation,
        BenchmarkId::TranslationRecurrent,
        BenchmarkId::TranslationNonRecurrent,
        BenchmarkId::Recommendation,
        BenchmarkId::ReinforcementLearning,
    ];

    /// Whether this is one of the vision benchmarks (5 timed runs
    /// required) as opposed to the others (10 runs) — §3.2.2.
    pub fn is_vision(self) -> bool {
        matches!(
            self,
            BenchmarkId::ImageClassification
                | BenchmarkId::ObjectDetection
                | BenchmarkId::InstanceSegmentation
        )
    }

    /// The number of timed runs a submission must provide (§3.2.2).
    pub fn runs_required(self) -> usize {
        if self.is_vision() {
            5
        } else {
            10
        }
    }

    /// The Table 1 row for this benchmark.
    pub fn spec(self) -> BenchmarkSpec {
        match self {
            BenchmarkId::ImageClassification => BenchmarkSpec {
                id: self,
                area: "Vision",
                dataset: "ImageNet (synthetic stand-in)",
                model: "ResNet-50 v1.5 (ResNetMini)",
                quality: QualityTarget { metric: "Top-1 accuracy", value: 0.749 },
            },
            BenchmarkId::ObjectDetection => BenchmarkSpec {
                id: self,
                area: "Vision",
                dataset: "COCO 2017 (synthetic shapes)",
                model: "SSD-ResNet-34 (SsdMini)",
                quality: QualityTarget { metric: "mAP", value: 0.212 },
            },
            BenchmarkId::InstanceSegmentation => BenchmarkSpec {
                id: self,
                area: "Vision",
                dataset: "COCO 2017 (synthetic shapes)",
                model: "Mask R-CNN (MaskRcnnMini)",
                quality: QualityTarget { metric: "Box/Mask min AP", value: 0.377 },
            },
            BenchmarkId::TranslationRecurrent => BenchmarkSpec {
                id: self,
                area: "Language",
                dataset: "WMT16 EN-DE (synthetic grammar)",
                model: "GNMT (GnmtMini)",
                quality: QualityTarget { metric: "Sacre BLEU", value: 21.8 },
            },
            BenchmarkId::TranslationNonRecurrent => BenchmarkSpec {
                id: self,
                area: "Language",
                dataset: "WMT17 EN-DE (synthetic grammar)",
                model: "Transformer (TransformerMini)",
                quality: QualityTarget { metric: "BLEU", value: 25.0 },
            },
            BenchmarkId::Recommendation => BenchmarkSpec {
                id: self,
                area: "Commerce",
                dataset: "MovieLens-20M (synthetic CF)",
                model: "NCF",
                quality: QualityTarget { metric: "HR@10", value: 0.635 },
            },
            BenchmarkId::ReinforcementLearning => BenchmarkSpec {
                id: self,
                area: "Research",
                dataset: "Go 9×9 (engine reference games)",
                model: "MiniGo (MiniGoNet)",
                quality: QualityTarget { metric: "Pro move prediction", value: 0.40 },
            },
        }
    }

    /// Short machine-friendly name.
    pub fn slug(self) -> &'static str {
        match self {
            BenchmarkId::ImageClassification => "resnet",
            BenchmarkId::ObjectDetection => "ssd",
            BenchmarkId::InstanceSegmentation => "maskrcnn",
            BenchmarkId::TranslationRecurrent => "gnmt",
            BenchmarkId::TranslationNonRecurrent => "transformer",
            BenchmarkId::Recommendation => "ncf",
            BenchmarkId::ReinforcementLearning => "minigo",
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// A benchmark-suite round. The suite is maintained by standing working
/// groups and updated between rounds (§4, §6): v0.6 raised several
/// quality targets (ResNet to 75.9% after allowing LARS, GNMT to 24.0
/// BLEU after model improvements), switched the MiniGo reference to C++,
/// and dropped the NCF benchmark pending the synthetic dataset rework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteVersion {
    /// December 2018 round.
    V05,
    /// June 2019 round.
    V06,
    /// July 2020 round. The real v0.7 also introduced BERT, DLRM and
    /// RNN-T; this reproduction keeps the v0.6 workload set (the new
    /// models have no reference implementations here yet) with the
    /// v0.6 quality targets carried forward.
    V07,
}

impl fmt::Display for SuiteVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SuiteVersion::V05 => "v0.5",
            SuiteVersion::V06 => "v0.6",
            SuiteVersion::V07 => "v0.7",
        })
    }
}

impl BenchmarkId {
    /// The quality target in effect for a suite round, or `None` when
    /// the benchmark was not part of that round.
    pub fn quality_for(self, version: SuiteVersion) -> Option<QualityTarget> {
        match version {
            SuiteVersion::V05 => Some(self.spec().quality),
            // v0.7 carries the v0.6 targets forward for the benchmarks
            // this reproduction models (see [`SuiteVersion::V07`]).
            SuiteVersion::V06 | SuiteVersion::V07 => match self {
                BenchmarkId::ImageClassification => {
                    Some(QualityTarget { metric: "Top-1 accuracy", value: 0.759 })
                }
                BenchmarkId::ObjectDetection => Some(QualityTarget { metric: "mAP", value: 0.23 }),
                BenchmarkId::InstanceSegmentation => Some(self.spec().quality),
                BenchmarkId::TranslationRecurrent => {
                    Some(QualityTarget { metric: "Sacre BLEU", value: 24.0 })
                }
                BenchmarkId::TranslationNonRecurrent => Some(self.spec().quality),
                // NCF was dropped for v0.6 pending the synthetic
                // dataset replacement (§3.1.5).
                BenchmarkId::Recommendation => None,
                BenchmarkId::ReinforcementLearning => {
                    Some(QualityTarget { metric: "Pro move prediction", value: 0.50 })
                }
            },
        }
    }

    /// The benchmarks included in a suite round.
    pub fn in_version(version: SuiteVersion) -> Vec<BenchmarkId> {
        BenchmarkId::ALL.into_iter().filter(|id| id.quality_for(version).is_some()).collect()
    }
}

/// A quality threshold: the metric name and value training must reach.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityTarget {
    /// Human name of the metric.
    pub metric: &'static str,
    /// The threshold value.
    pub value: f64,
}

/// One Table 1 row: task, dataset, model and quality threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// The ML area the paper groups it under.
    pub area: &'static str,
    /// Dataset (paper's, with this reproduction's substitution noted).
    pub dataset: &'static str,
    /// Model (paper's, with this reproduction's type noted).
    pub model: &'static str,
    /// The quality threshold.
    pub quality: QualityTarget,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_benchmarks() {
        assert_eq!(BenchmarkId::ALL.len(), 7);
    }

    #[test]
    fn run_requirements_follow_paper() {
        // 5 for vision, 10 for everything else.
        for id in BenchmarkId::ALL {
            let expected = if id.is_vision() { 5 } else { 10 };
            assert_eq!(id.runs_required(), expected, "{id}");
        }
        assert_eq!(BenchmarkId::ALL.iter().filter(|b| b.is_vision()).count(), 3);
    }

    #[test]
    fn table1_thresholds_match_paper() {
        assert_eq!(BenchmarkId::ImageClassification.spec().quality.value, 0.749);
        assert_eq!(BenchmarkId::ObjectDetection.spec().quality.value, 0.212);
        assert_eq!(BenchmarkId::TranslationRecurrent.spec().quality.value, 21.8);
        assert_eq!(BenchmarkId::TranslationNonRecurrent.spec().quality.value, 25.0);
        assert_eq!(BenchmarkId::Recommendation.spec().quality.value, 0.635);
        assert_eq!(BenchmarkId::ReinforcementLearning.spec().quality.value, 0.40);
    }

    #[test]
    fn v06_raises_targets_and_drops_ncf() {
        // Raised: ResNet, SSD, GNMT, MiniGo. Unchanged: Mask R-CNN,
        // Transformer. Dropped: NCF.
        let raised = [
            BenchmarkId::ImageClassification,
            BenchmarkId::ObjectDetection,
            BenchmarkId::TranslationRecurrent,
            BenchmarkId::ReinforcementLearning,
        ];
        for id in raised {
            let v05 = id.quality_for(SuiteVersion::V05).unwrap().value;
            let v06 = id.quality_for(SuiteVersion::V06).unwrap().value;
            assert!(v06 > v05, "{id}: {v05} -> {v06}");
        }
        for id in [BenchmarkId::InstanceSegmentation, BenchmarkId::TranslationNonRecurrent] {
            assert_eq!(
                id.quality_for(SuiteVersion::V05),
                id.quality_for(SuiteVersion::V06),
                "{id}"
            );
        }
        assert!(BenchmarkId::Recommendation.quality_for(SuiteVersion::V06).is_none());
        assert_eq!(BenchmarkId::in_version(SuiteVersion::V05).len(), 7);
        assert_eq!(BenchmarkId::in_version(SuiteVersion::V06).len(), 6);
    }

    #[test]
    fn v07_carries_v06_targets_forward() {
        for id in BenchmarkId::ALL {
            assert_eq!(
                id.quality_for(SuiteVersion::V06),
                id.quality_for(SuiteVersion::V07),
                "{id}"
            );
        }
        assert_eq!(BenchmarkId::in_version(SuiteVersion::V07).len(), 6);
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<&str> = BenchmarkId::ALL.iter().map(|b| b.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 7);
    }
}
