//! The benchmark suite definition — Table 1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmarks of MLPerf Training: the seven v0.5 workloads of
/// Table 1 plus the three workloads the v0.7 round introduced (§6,
/// suite evolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// Image classification: ImageNet / ResNet-50 v1.5.
    ImageClassification,
    /// Light-weight object detection: COCO / SSD-ResNet-34.
    ObjectDetection,
    /// Heavy-weight detection + instance segmentation: COCO / Mask R-CNN.
    InstanceSegmentation,
    /// Recurrent translation: WMT16 EN-DE / GNMT.
    TranslationRecurrent,
    /// Non-recurrent translation: WMT17 EN-DE / Transformer.
    TranslationNonRecurrent,
    /// Recommendation: MovieLens-20M / NCF.
    Recommendation,
    /// Reinforcement learning: Go 9×9 / MiniGo.
    ReinforcementLearning,
    /// Language modeling (added in v0.7): Wikipedia / BERT.
    LanguageModeling,
    /// Recommendation at terabyte scale (added in v0.7, replacing NCF):
    /// Criteo 1TB click logs / DLRM.
    RecommendationDlrm,
    /// Speech recognition (added in v0.7): LibriSpeech / RNN-T.
    SpeechRecognition,
}

impl BenchmarkId {
    /// All ten benchmarks: the seven of Table 1 in table order, then
    /// the three v0.7 additions.
    pub const ALL: [BenchmarkId; 10] = [
        BenchmarkId::ImageClassification,
        BenchmarkId::ObjectDetection,
        BenchmarkId::InstanceSegmentation,
        BenchmarkId::TranslationRecurrent,
        BenchmarkId::TranslationNonRecurrent,
        BenchmarkId::Recommendation,
        BenchmarkId::ReinforcementLearning,
        BenchmarkId::LanguageModeling,
        BenchmarkId::RecommendationDlrm,
        BenchmarkId::SpeechRecognition,
    ];

    /// Whether this is one of the vision benchmarks (5 timed runs
    /// required) as opposed to the others (10 runs) — §3.2.2.
    pub fn is_vision(self) -> bool {
        matches!(
            self,
            BenchmarkId::ImageClassification
                | BenchmarkId::ObjectDetection
                | BenchmarkId::InstanceSegmentation
        )
    }

    /// The number of timed runs a submission must provide (§3.2.2).
    pub fn runs_required(self) -> usize {
        if self.is_vision() {
            5
        } else {
            10
        }
    }

    /// The Table 1 row for this benchmark.
    pub fn spec(self) -> BenchmarkSpec {
        match self {
            BenchmarkId::ImageClassification => BenchmarkSpec {
                id: self,
                area: "Vision",
                dataset: "ImageNet (synthetic stand-in)",
                model: "ResNet-50 v1.5 (ResNetMini)",
                quality: QualityTarget { metric: "Top-1 accuracy", value: 0.749 },
            },
            BenchmarkId::ObjectDetection => BenchmarkSpec {
                id: self,
                area: "Vision",
                dataset: "COCO 2017 (synthetic shapes)",
                model: "SSD-ResNet-34 (SsdMini)",
                quality: QualityTarget { metric: "mAP", value: 0.212 },
            },
            BenchmarkId::InstanceSegmentation => BenchmarkSpec {
                id: self,
                area: "Vision",
                dataset: "COCO 2017 (synthetic shapes)",
                model: "Mask R-CNN (MaskRcnnMini)",
                quality: QualityTarget { metric: "Box/Mask min AP", value: 0.377 },
            },
            BenchmarkId::TranslationRecurrent => BenchmarkSpec {
                id: self,
                area: "Language",
                dataset: "WMT16 EN-DE (synthetic grammar)",
                model: "GNMT (GnmtMini)",
                quality: QualityTarget { metric: "Sacre BLEU", value: 21.8 },
            },
            BenchmarkId::TranslationNonRecurrent => BenchmarkSpec {
                id: self,
                area: "Language",
                dataset: "WMT17 EN-DE (synthetic grammar)",
                model: "Transformer (TransformerMini)",
                quality: QualityTarget { metric: "BLEU", value: 25.0 },
            },
            BenchmarkId::Recommendation => BenchmarkSpec {
                id: self,
                area: "Commerce",
                dataset: "MovieLens-20M (synthetic CF)",
                model: "NCF",
                quality: QualityTarget { metric: "HR@10", value: 0.635 },
            },
            BenchmarkId::ReinforcementLearning => BenchmarkSpec {
                id: self,
                area: "Research",
                dataset: "Go 9×9 (engine reference games)",
                model: "MiniGo (MiniGoNet)",
                quality: QualityTarget { metric: "Pro move prediction", value: 0.40 },
            },
            // The three v0.7 additions carry their v0.7 targets in the
            // spec — they never existed under earlier rules.
            BenchmarkId::LanguageModeling => BenchmarkSpec {
                id: self,
                area: "Language",
                dataset: "Wikipedia 2020 (synthetic phrase corpus)",
                model: "BERT (BertMini)",
                quality: QualityTarget { metric: "Masked-LM accuracy", value: 0.712 },
            },
            BenchmarkId::RecommendationDlrm => BenchmarkSpec {
                id: self,
                area: "Commerce",
                dataset: "Criteo 1TB (synthetic click log)",
                model: "DLRM (DlrmMini)",
                quality: QualityTarget { metric: "AUC", value: 0.8025 },
            },
            BenchmarkId::SpeechRecognition => BenchmarkSpec {
                id: self,
                area: "Speech",
                dataset: "LibriSpeech (synthetic frame stream)",
                model: "RNN-T (RnnTMini)",
                // The paper's v0.7 target is 0.058 WER; the harness
                // stops when quality rises past the target, so the
                // metric is stored as 1 − WER.
                quality: QualityTarget { metric: "1 - WER", value: 0.942 },
            },
        }
    }

    /// Short machine-friendly name.
    pub fn slug(self) -> &'static str {
        match self {
            BenchmarkId::ImageClassification => "resnet",
            BenchmarkId::ObjectDetection => "ssd",
            BenchmarkId::InstanceSegmentation => "maskrcnn",
            BenchmarkId::TranslationRecurrent => "gnmt",
            BenchmarkId::TranslationNonRecurrent => "transformer",
            BenchmarkId::Recommendation => "ncf",
            BenchmarkId::ReinforcementLearning => "minigo",
            BenchmarkId::LanguageModeling => "bert",
            BenchmarkId::RecommendationDlrm => "dlrm",
            BenchmarkId::SpeechRecognition => "rnnt",
        }
    }

    /// The benchmark whose [`slug`](BenchmarkId::slug) is `slug` — the
    /// inverse of the name written into `submission_benchmark` mllog
    /// lines.
    pub fn from_slug(slug: &str) -> Option<BenchmarkId> {
        BenchmarkId::ALL.into_iter().find(|id| id.slug() == slug)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// A benchmark-suite round. The suite is maintained by standing working
/// groups and updated between rounds (§4, §6): v0.6 raised several
/// quality targets (ResNet to 75.9% after allowing LARS, GNMT to 24.0
/// BLEU after model improvements), switched the MiniGo reference to C++,
/// and dropped the NCF benchmark pending the synthetic dataset rework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteVersion {
    /// December 2018 round.
    V05,
    /// June 2019 round.
    V06,
    /// July 2020 round: carries the v0.6 targets forward for the
    /// continuing workloads and introduces BERT (masked-LM accuracy
    /// 0.712), DLRM (AUC 0.8025) and RNN-T (0.058 WER, stored here as
    /// 1 − WER = 0.942) — the workload refresh the paper's §6 argues a
    /// training benchmark needs round over round.
    V07,
}

impl fmt::Display for SuiteVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SuiteVersion::V05 => "v0.5",
            SuiteVersion::V06 => "v0.6",
            SuiteVersion::V07 => "v0.7",
        })
    }
}

impl BenchmarkId {
    /// The quality target in effect for a suite round, or `None` when
    /// the benchmark was not part of that round.
    pub fn quality_for(self, version: SuiteVersion) -> Option<QualityTarget> {
        // The v0.7 additions only ever existed under the v0.7 rules;
        // their spec already carries the v0.7 target.
        if matches!(
            self,
            BenchmarkId::LanguageModeling
                | BenchmarkId::RecommendationDlrm
                | BenchmarkId::SpeechRecognition
        ) {
            return (version == SuiteVersion::V07).then(|| self.spec().quality);
        }
        match version {
            SuiteVersion::V05 => Some(self.spec().quality),
            // v0.7 carries the v0.6 targets forward for the continuing
            // benchmarks (see [`SuiteVersion::V07`]).
            SuiteVersion::V06 | SuiteVersion::V07 => match self {
                BenchmarkId::ImageClassification => {
                    Some(QualityTarget { metric: "Top-1 accuracy", value: 0.759 })
                }
                BenchmarkId::ObjectDetection => Some(QualityTarget { metric: "mAP", value: 0.23 }),
                BenchmarkId::InstanceSegmentation => Some(self.spec().quality),
                BenchmarkId::TranslationRecurrent => {
                    Some(QualityTarget { metric: "Sacre BLEU", value: 24.0 })
                }
                BenchmarkId::TranslationNonRecurrent => Some(self.spec().quality),
                // NCF was dropped for v0.6 pending the synthetic
                // dataset replacement (§3.1.5).
                BenchmarkId::Recommendation => None,
                BenchmarkId::ReinforcementLearning => {
                    Some(QualityTarget { metric: "Pro move prediction", value: 0.50 })
                }
                BenchmarkId::LanguageModeling
                | BenchmarkId::RecommendationDlrm
                | BenchmarkId::SpeechRecognition => unreachable!("handled above"),
            },
        }
    }

    /// The benchmarks included in a suite round.
    pub fn in_version(version: SuiteVersion) -> Vec<BenchmarkId> {
        BenchmarkId::ALL.into_iter().filter(|id| id.quality_for(version).is_some()).collect()
    }
}

/// A quality threshold: the metric name and value training must reach.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityTarget {
    /// Human name of the metric.
    pub metric: &'static str,
    /// The threshold value.
    pub value: f64,
}

/// One Table 1 row: task, dataset, model and quality threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// The ML area the paper groups it under.
    pub area: &'static str,
    /// Dataset (paper's, with this reproduction's substitution noted).
    pub dataset: &'static str,
    /// Model (paper's, with this reproduction's type noted).
    pub model: &'static str,
    /// The quality threshold.
    pub quality: QualityTarget,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks() {
        // Seven from Table 1 plus the three v0.7 additions.
        assert_eq!(BenchmarkId::ALL.len(), 10);
    }

    #[test]
    fn run_requirements_follow_paper() {
        // 5 for vision, 10 for everything else.
        for id in BenchmarkId::ALL {
            let expected = if id.is_vision() { 5 } else { 10 };
            assert_eq!(id.runs_required(), expected, "{id}");
        }
        assert_eq!(BenchmarkId::ALL.iter().filter(|b| b.is_vision()).count(), 3);
        // The v0.7 additions are all non-vision: 10 runs each.
        assert_eq!(BenchmarkId::LanguageModeling.runs_required(), 10);
        assert_eq!(BenchmarkId::RecommendationDlrm.runs_required(), 10);
        assert_eq!(BenchmarkId::SpeechRecognition.runs_required(), 10);
    }

    #[test]
    fn table1_thresholds_match_paper() {
        assert_eq!(BenchmarkId::ImageClassification.spec().quality.value, 0.749);
        assert_eq!(BenchmarkId::ObjectDetection.spec().quality.value, 0.212);
        assert_eq!(BenchmarkId::TranslationRecurrent.spec().quality.value, 21.8);
        assert_eq!(BenchmarkId::TranslationNonRecurrent.spec().quality.value, 25.0);
        assert_eq!(BenchmarkId::Recommendation.spec().quality.value, 0.635);
        assert_eq!(BenchmarkId::ReinforcementLearning.spec().quality.value, 0.40);
    }

    #[test]
    fn v06_raises_targets_and_drops_ncf() {
        // Raised: ResNet, SSD, GNMT, MiniGo. Unchanged: Mask R-CNN,
        // Transformer. Dropped: NCF.
        let raised = [
            BenchmarkId::ImageClassification,
            BenchmarkId::ObjectDetection,
            BenchmarkId::TranslationRecurrent,
            BenchmarkId::ReinforcementLearning,
        ];
        for id in raised {
            let v05 = id.quality_for(SuiteVersion::V05).unwrap().value;
            let v06 = id.quality_for(SuiteVersion::V06).unwrap().value;
            assert!(v06 > v05, "{id}: {v05} -> {v06}");
        }
        for id in [BenchmarkId::InstanceSegmentation, BenchmarkId::TranslationNonRecurrent] {
            assert_eq!(
                id.quality_for(SuiteVersion::V05),
                id.quality_for(SuiteVersion::V06),
                "{id}"
            );
        }
        assert!(BenchmarkId::Recommendation.quality_for(SuiteVersion::V06).is_none());
        assert_eq!(BenchmarkId::in_version(SuiteVersion::V05).len(), 7);
        assert_eq!(BenchmarkId::in_version(SuiteVersion::V06).len(), 6);
    }

    #[test]
    fn v07_carries_v06_targets_and_adds_three_workloads() {
        let additions = [
            BenchmarkId::LanguageModeling,
            BenchmarkId::RecommendationDlrm,
            BenchmarkId::SpeechRecognition,
        ];
        // Continuing benchmarks keep their v0.6 targets.
        for id in BenchmarkId::ALL {
            if additions.contains(&id) {
                continue;
            }
            assert_eq!(
                id.quality_for(SuiteVersion::V06),
                id.quality_for(SuiteVersion::V07),
                "{id}"
            );
        }
        // The additions exist only in v0.7, at the paper's targets.
        for id in additions {
            assert!(id.quality_for(SuiteVersion::V05).is_none(), "{id}");
            assert!(id.quality_for(SuiteVersion::V06).is_none(), "{id}");
            assert!(id.quality_for(SuiteVersion::V07).is_some(), "{id}");
        }
        assert_eq!(
            BenchmarkId::LanguageModeling.quality_for(SuiteVersion::V07).unwrap().value,
            0.712
        );
        assert_eq!(
            BenchmarkId::RecommendationDlrm.quality_for(SuiteVersion::V07).unwrap().value,
            0.8025
        );
        assert_eq!(
            BenchmarkId::SpeechRecognition.quality_for(SuiteVersion::V07).unwrap().value,
            0.942
        );
        assert_eq!(BenchmarkId::in_version(SuiteVersion::V07).len(), 9);
    }

    #[test]
    fn slugs_are_unique_and_round_trip() {
        let mut slugs: Vec<&str> = BenchmarkId::ALL.iter().map(|b| b.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), BenchmarkId::ALL.len());
        for id in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::from_slug(id.slug()), Some(id), "{id}");
        }
        assert_eq!(BenchmarkId::from_slug("not-a-benchmark"), None);
    }
}
