//! Quality metrics: corpus BLEU, detection mAP (boxes and masks), and
//! classification accuracy. These are the metrics the suite's quality
//! thresholds (Table 1) are stated in.

use mlperf_data::BoxLabel;
use mlperf_models::Detection;
use mlperf_tensor::Tensor;
use std::collections::HashMap;

/// Corpus BLEU over token-id sequences (n-grams up to 4, add-1
/// smoothing on the higher orders, multiplicative brevity penalty),
/// scaled to 0–100 like sacre BLEU reports.
///
/// # Panics
///
/// Panics if the two corpora have different lengths.
pub fn bleu(candidates: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(candidates.len(), references.len(), "candidate/reference count mismatch");
    if candidates.is_empty() {
        return 0.0;
    }
    let max_n = 4;
    let mut matches = vec![0f64; max_n];
    let mut totals = vec![0f64; max_n];
    let mut cand_len = 0usize;
    let mut ref_len = 0usize;
    for (c, r) in candidates.iter().zip(references.iter()) {
        cand_len += c.len();
        ref_len += r.len();
        for n in 1..=max_n {
            let c_grams = ngram_counts(c, n);
            let r_grams = ngram_counts(r, n);
            for (gram, &count) in &c_grams {
                let clip = r_grams.get(gram).copied().unwrap_or(0);
                matches[n - 1] += count.min(clip) as f64;
            }
            totals[n - 1] += c.len().saturating_sub(n - 1) as f64;
        }
    }
    // Geometric mean of n-gram precisions; add-1 smoothing for n >= 2
    // so short toy sentences don't zero out the score.
    let mut log_sum = 0.0;
    for n in 0..max_n {
        let (m, t) =
            if n == 0 { (matches[0], totals[0]) } else { (matches[n] + 1.0, totals[n] + 1.0) };
        if t == 0.0 || m == 0.0 {
            return 0.0;
        }
        log_sum += (m / t).ln();
    }
    let precision = (log_sum / max_n as f64).exp();
    let bp = if cand_len >= ref_len {
        1.0
    } else if cand_len == 0 {
        0.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    };
    100.0 * precision * bp
}

fn ngram_counts(tokens: &[usize], n: usize) -> HashMap<&[usize], usize> {
    let mut map = HashMap::new();
    if tokens.len() < n {
        return map;
    }
    for i in 0..=tokens.len() - n {
        *map.entry(&tokens[i..i + n]).or_insert(0) += 1;
    }
    map
}

/// One image's detections paired with its ground truth, for mAP.
#[derive(Debug, Clone)]
pub struct DetectionEval<'a> {
    /// Model detections (any order; scores used for ranking).
    pub detections: &'a [Detection],
    /// Ground-truth objects.
    pub ground_truth: &'a [BoxLabel],
}

/// Mean average precision over classes at a single IoU threshold
/// (the paper's COCO metrics are IoU-averaged; a single threshold keeps
/// the toy evaluation tractable while preserving the metric's shape).
pub fn mean_average_precision(images: &[DetectionEval<'_>], classes: usize, iou: f32) -> f64 {
    let mut aps = Vec::with_capacity(classes);
    for class in 0..classes {
        if let Some(ap) = average_precision_for_class(images, class, iou) {
            aps.push(ap);
        }
    }
    if aps.is_empty() {
        0.0
    } else {
        aps.iter().sum::<f64>() / aps.len() as f64
    }
}

/// Average precision for one class, or `None` when the class has no
/// ground-truth instances anywhere.
fn average_precision_for_class(
    images: &[DetectionEval<'_>],
    class: usize,
    iou: f32,
) -> Option<f64> {
    // Collect detections of this class across all images with their
    // image index, sorted globally by score.
    let mut dets: Vec<(usize, &Detection)> = Vec::new();
    let mut total_gt = 0usize;
    for (img, e) in images.iter().enumerate() {
        total_gt += e.ground_truth.iter().filter(|g| g.class.index() == class).count();
        for d in e.detections.iter().filter(|d| d.class == class) {
            dets.push((img, d));
        }
    }
    if total_gt == 0 {
        return None;
    }
    dets.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));
    // Greedy matching per image.
    let mut matched: Vec<Vec<bool>> =
        images.iter().map(|e| vec![false; e.ground_truth.len()]).collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut precision_sum = 0.0;
    for (img, d) in dets {
        let gt = images[img].ground_truth;
        let mut best: Option<(usize, f32)> = None;
        for (gi, g) in gt.iter().enumerate() {
            if g.class.index() != class || matched[img][gi] {
                continue;
            }
            let overlap = iou_det_gt(d, g);
            if overlap >= iou && best.is_none_or(|(_, b)| overlap > b) {
                best = Some((gi, overlap));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[img][gi] = true;
                tp += 1;
                // AP as mean precision at each recall step.
                precision_sum += tp as f64 / (tp + fp) as f64;
            }
            None => fp += 1,
        }
    }
    Some(precision_sum / total_gt as f64)
}

fn iou_det_gt(d: &Detection, g: &BoxLabel) -> f32 {
    let a = d.corners();
    let b = g.corners();
    let ix = (a.2.min(b.2) - a.0.max(b.0)).max(0.0);
    let iy = (a.3.min(b.3) - a.1.max(b.1)).max(0.0);
    let inter = ix * iy;
    let ua = (a.2 - a.0).max(0.0) * (a.3 - a.1).max(0.0);
    let ub = (b.2 - b.0).max(0.0) * (b.3 - b.1).max(0.0);
    let union = ua + ub - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Pixel IoU between a predicted ROI mask (defined within `det`'s box,
/// any square resolution, values in [0,1] thresholded at 0.5) and a
/// full-image ground-truth mask.
pub fn mask_iou(det: &Detection, roi_mask: &Tensor, gt_mask: &Tensor, image_size: usize) -> f32 {
    let res = roi_mask.shape()[0];
    let (x0, y0, x1, y1) = det.corners();
    // Paste the ROI mask into image space.
    let mut pred = vec![false; image_size * image_size];
    for my in 0..res {
        for mx in 0..res {
            if roi_mask.data()[my * res + mx] < 0.5 {
                continue;
            }
            let u0 = x0 + (x1 - x0) * mx as f32 / res as f32;
            let u1 = x0 + (x1 - x0) * (mx + 1) as f32 / res as f32;
            let v0 = y0 + (y1 - y0) * my as f32 / res as f32;
            let v1 = y0 + (y1 - y0) * (my + 1) as f32 / res as f32;
            let px0 = ((u0 * image_size as f32).floor().max(0.0)) as usize;
            let px1 = ((u1 * image_size as f32).ceil()).min(image_size as f32) as usize;
            let py0 = ((v0 * image_size as f32).floor().max(0.0)) as usize;
            let py1 = ((v1 * image_size as f32).ceil()).min(image_size as f32) as usize;
            for py in py0..py1 {
                for px in px0..px1 {
                    pred[py * image_size + px] = true;
                }
            }
        }
    }
    let mut inter = 0usize;
    let mut union = 0usize;
    for (i, &p) in pred.iter().enumerate() {
        let g = gt_mask.data()[i] > 0.5;
        if p && g {
            inter += 1;
        }
        if p || g {
            union += 1;
        }
    }
    if union == 0 {
        0.0
    } else {
        inter as f32 / union as f32
    }
}

/// Top-1 accuracy from predictions and labels.
///
/// # Panics
///
/// Panics if lengths differ or `labels` is empty.
pub fn top1_accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!labels.is_empty(), "empty label set");
    predictions.iter().zip(labels.iter()).filter(|(p, l)| p == l).count() as f64
        / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_data::ShapeClass;

    #[test]
    fn bleu_perfect_match_is_100() {
        let c = vec![vec![5, 6, 7, 8, 9]];
        assert!((bleu(&c, &c) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn bleu_no_overlap_is_0() {
        let c = vec![vec![1, 2, 3, 4]];
        let r = vec![vec![5, 6, 7, 8]];
        assert_eq!(bleu(&c, &r), 0.0);
    }

    #[test]
    fn bleu_partial_between() {
        let c = vec![vec![5, 6, 7, 99]];
        let r = vec![vec![5, 6, 7, 8]];
        let score = bleu(&c, &r);
        assert!(score > 0.0 && score < 100.0, "score {score}");
    }

    #[test]
    fn bleu_brevity_penalty_applies() {
        // A correct but short candidate scores below a full-length one.
        let full = vec![vec![5, 6, 7, 8, 9, 10]];
        let short = vec![vec![5, 6, 7]];
        let r = vec![vec![5, 6, 7, 8, 9, 10]];
        assert!(bleu(&short, &r) < bleu(&full, &r));
    }

    #[test]
    fn bleu_order_matters() {
        let inorder = vec![vec![5, 6, 7, 8]];
        let scrambled = vec![vec![8, 5, 7, 6]];
        let r = vec![vec![5, 6, 7, 8]];
        assert!(bleu(&scrambled, &r) < bleu(&inorder, &r));
    }

    fn gt(cx: f32, cy: f32, s: f32, class: ShapeClass) -> BoxLabel {
        BoxLabel { cx, cy, w: s, h: s, class }
    }

    fn det(cx: f32, cy: f32, s: f32, class: usize, score: f32) -> Detection {
        Detection { cx, cy, w: s, h: s, class, score }
    }

    #[test]
    fn map_perfect_detection_is_1() {
        let gts = [gt(0.5, 0.5, 0.2, ShapeClass::Square)];
        let dets = [det(0.5, 0.5, 0.2, 0, 0.9)];
        let images = [DetectionEval { detections: &dets, ground_truth: &gts }];
        let map = mean_average_precision(&images, 3, 0.5);
        assert!((map - 1.0).abs() < 1e-6);
    }

    #[test]
    fn map_missed_object_is_0() {
        let gts = [gt(0.5, 0.5, 0.2, ShapeClass::Square)];
        let images = [DetectionEval { detections: &[], ground_truth: &gts }];
        assert_eq!(mean_average_precision(&images, 3, 0.5), 0.0);
    }

    #[test]
    fn map_false_positives_reduce_precision() {
        let gts = [gt(0.5, 0.5, 0.2, ShapeClass::Square)];
        // A higher-scoring false positive ranks first.
        let dets = [det(0.9, 0.9, 0.1, 0, 0.95), det(0.5, 0.5, 0.2, 0, 0.8)];
        let images = [DetectionEval { detections: &dets, ground_truth: &gts }];
        let map = mean_average_precision(&images, 3, 0.5);
        assert!((map - 0.5).abs() < 1e-6, "map {map}");
    }

    #[test]
    fn map_wrong_class_does_not_match() {
        let gts = [gt(0.5, 0.5, 0.2, ShapeClass::Square)];
        let dets = [det(0.5, 0.5, 0.2, 1, 0.9)];
        let images = [DetectionEval { detections: &dets, ground_truth: &gts }];
        assert_eq!(mean_average_precision(&images, 3, 0.5), 0.0);
    }

    #[test]
    fn map_duplicate_detections_count_once() {
        let gts = [gt(0.5, 0.5, 0.2, ShapeClass::Square)];
        let dets = [det(0.5, 0.5, 0.2, 0, 0.9), det(0.51, 0.5, 0.2, 0, 0.8)];
        let images = [DetectionEval { detections: &dets, ground_truth: &gts }];
        let map = mean_average_precision(&images, 3, 0.5);
        assert!((map - 1.0).abs() < 1e-6, "duplicate should be FP after match, map {map}");
    }

    #[test]
    fn mask_iou_identity() {
        // GT mask: a centered 8x8 square in a 16x16 image; ROI mask all
        // ones within the matching box.
        let mut gt_mask = Tensor::zeros(&[16, 16]);
        for y in 4..12 {
            for x in 4..12 {
                gt_mask.data_mut()[y * 16 + x] = 1.0;
            }
        }
        let d = det(0.5, 0.5, 0.5, 0, 1.0);
        let roi = Tensor::ones(&[8, 8]);
        let iou = mask_iou(&d, &roi, &gt_mask, 16);
        assert!(iou > 0.9, "iou {iou}");
    }

    #[test]
    fn mask_iou_disjoint_is_zero() {
        let mut gt_mask = Tensor::zeros(&[16, 16]);
        gt_mask.data_mut()[0] = 1.0;
        let d = det(0.75, 0.75, 0.2, 0, 1.0);
        let roi = Tensor::ones(&[8, 8]);
        assert_eq!(mask_iou(&d, &roi, &gt_mask, 16), 0.0);
    }

    #[test]
    fn accuracy_basics() {
        assert_eq!(top1_accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
    }
}
