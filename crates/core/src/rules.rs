//! Submission rules: divisions, system categories, system types, and
//! the hyperparameter restrictions with review-period borrowing
//! (§3.4, §4.2).

use crate::suite::BenchmarkId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Submission division (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Division {
    /// Direct system comparison: must be equivalent to the reference
    /// (model, initialization, optimizer, schedule, data processing and
    /// traversal), restricted hyperparameters.
    Closed,
    /// Innovative solutions: model architectures, optimization
    /// procedures and augmentations may differ from the reference.
    Open,
}

impl fmt::Display for Division {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Division::Closed => "closed",
            Division::Open => "open",
        })
    }
}

/// System category (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Rentable or purchasable hardware with versioned, supported
    /// software.
    Available,
    /// Will meet Available criteria within 60 days or by the next
    /// submission cycle.
    Preview,
    /// Prototypes and over-scale systems not intended for production.
    Research,
}

impl Category {
    /// Whether a Preview submission's commitment is still satisfiable:
    /// the components must become Available within the later of 60 days
    /// or the next cycle.
    pub fn preview_deadline_days(days_to_next_cycle: u32) -> u32 {
        days_to_next_cycle.max(60)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Available => "available",
            Category::Preview => "preview",
            Category::Research => "research",
        })
    }
}

/// On-premise or cloud system (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemType {
    /// Hardware purchasable for on-premise deployment.
    OnPremise,
    /// Hardware rentable from a cloud provider.
    Cloud,
}

/// A named hyperparameter value in a submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hyperparameter {
    /// Parameter name (e.g. `"learning_rate"`).
    pub name: String,
    /// Its value.
    pub value: f64,
}

/// The Closed-division hyperparameter policy for one benchmark: the
/// set of names submissions may modify. Everything else must match the
/// reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperparameterRules {
    benchmark: BenchmarkId,
    modifiable: Vec<String>,
}

impl HyperparameterRules {
    /// The v0.5-style modifiable list for a benchmark. Minibatch size
    /// is always adjustable (to accommodate system scale — §3.4), and
    /// the learning-rate family follows it.
    pub fn closed_division(benchmark: BenchmarkId) -> Self {
        let mut modifiable =
            vec!["batch_size".to_string(), "learning_rate".to_string(), "warmup_steps".to_string()];
        match benchmark {
            BenchmarkId::ImageClassification => {
                modifiable.push("lars_epsilon".into());
                modifiable.push("lr_decay_boundaries".into());
            }
            BenchmarkId::TranslationNonRecurrent => {
                modifiable.push("adam_beta2".into());
            }
            BenchmarkId::Recommendation => {
                modifiable.push("negative_samples".into());
            }
            // v0.7 additions: BERT submissions may tune the optimizer's
            // second-moment decay (the LAMB/Adam beta family); DLRM and
            // RNN-T are covered by the always-modifiable trio.
            BenchmarkId::LanguageModeling => {
                modifiable.push("adam_beta2".into());
            }
            _ => {}
        }
        HyperparameterRules { benchmark, modifiable }
    }

    /// The benchmark these rules govern.
    pub fn benchmark(&self) -> BenchmarkId {
        self.benchmark
    }

    /// Whether a parameter may be modified in the Closed division.
    pub fn is_modifiable(&self, name: &str) -> bool {
        self.modifiable.iter().any(|m| m == name)
    }

    /// Validates a submission's hyperparameter deltas against the
    /// reference. Returns the names of illegal modifications.
    ///
    /// `reference` and `submitted` map name → value; a parameter is a
    /// modification when its value differs from (or is absent in) the
    /// reference.
    pub fn violations(
        &self,
        reference: &BTreeMap<String, f64>,
        submitted: &BTreeMap<String, f64>,
    ) -> Vec<String> {
        let mut bad = Vec::new();
        for (name, value) in submitted {
            let differs = reference.get(name).is_none_or(|r| r != value);
            if differs && !self.is_modifiable(name) {
                bad.push(name.clone());
            }
        }
        bad
    }
}

/// An inference-style load scenario (MLPerf Inference, Reddi et al.):
/// the traffic pattern the loadgen drives a trained model under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// One query at a time, back to back; judged on p90 latency.
    SingleStream,
    /// Poisson query arrivals against a p99 latency SLO; judged on the
    /// maximum sustainable arrival rate (QPS).
    Server,
    /// The whole query pool issued at once and processed in batch;
    /// judged on throughput, with no latency bound.
    Offline,
}

impl Scenario {
    /// Every scenario, in reporting order.
    pub const ALL: [Scenario; 3] = [Scenario::SingleStream, Scenario::Server, Scenario::Offline];

    /// The scenario's log/CLI slug.
    pub fn slug(self) -> &'static str {
        match self {
            Scenario::SingleStream => "single_stream",
            Scenario::Server => "server",
            Scenario::Offline => "offline",
        }
    }

    /// Parses a slug back into a scenario.
    pub fn from_slug(slug: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.slug() == slug)
    }

    /// The compliance bounds a run of this scenario must satisfy.
    pub fn rules(self) -> ScenarioRules {
        match self {
            Scenario::SingleStream => ScenarioRules {
                scenario: self,
                min_query_count: 64,
                min_duration_ms: 500,
                latency_percentile: Some(90.0),
            },
            Scenario::Server => ScenarioRules {
                scenario: self,
                min_query_count: 128,
                min_duration_ms: 1000,
                latency_percentile: Some(99.0),
            },
            Scenario::Offline => ScenarioRules {
                scenario: self,
                min_query_count: 64,
                min_duration_ms: 500,
                latency_percentile: None,
            },
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// The scenario compliance bounds (the loadgen analogue of §3.2.2's
/// run-count rules): a scenario run shorter than these is not a valid
/// measurement and is quarantined during review.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRules {
    /// The scenario these bounds govern.
    pub scenario: Scenario,
    /// Minimum number of issued queries.
    pub min_query_count: u64,
    /// Minimum measured duration in milliseconds.
    pub min_duration_ms: u64,
    /// The latency percentile the scenario's SLO binds, when it has
    /// one (`None` for Offline, which is throughput-only).
    pub latency_percentile: Option<f64>,
}

/// Review-period hyperparameter borrowing (§4.1): "if a submission uses
/// hyperparameters that would also benefit other submissions, we want
/// to ensure that those systems have an opportunity to adopt those
/// hyperparameters." Copies every *modifiable* parameter from `donor`
/// into `recipient`, returning the adopted names.
pub fn borrow_hyperparameters(
    rules: &HyperparameterRules,
    donor: &BTreeMap<String, f64>,
    recipient: &mut BTreeMap<String, f64>,
) -> Vec<String> {
    let mut adopted = Vec::new();
    for (name, value) in donor {
        if rules.is_modifiable(name) && recipient.get(name) != Some(value) {
            recipient.insert(name.clone(), *value);
            adopted.push(name.clone());
        }
    }
    adopted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn batch_and_lr_always_modifiable() {
        for id in BenchmarkId::ALL {
            let rules = HyperparameterRules::closed_division(id);
            assert!(rules.is_modifiable("batch_size"), "{id}");
            assert!(rules.is_modifiable("learning_rate"), "{id}");
        }
    }

    #[test]
    fn lars_only_for_resnet() {
        assert!(HyperparameterRules::closed_division(BenchmarkId::ImageClassification)
            .is_modifiable("lars_epsilon"));
        assert!(!HyperparameterRules::closed_division(BenchmarkId::Recommendation)
            .is_modifiable("lars_epsilon"));
    }

    #[test]
    fn violations_flag_restricted_changes() {
        let rules = HyperparameterRules::closed_division(BenchmarkId::ImageClassification);
        let reference = params(&[("learning_rate", 0.1), ("momentum", 0.9), ("batch_size", 256.0)]);
        // Changing lr/batch is fine; changing momentum is not.
        let submitted =
            params(&[("learning_rate", 1.6), ("momentum", 0.95), ("batch_size", 4096.0)]);
        assert_eq!(rules.violations(&reference, &submitted), vec!["momentum"]);
    }

    #[test]
    fn matching_reference_has_no_violations() {
        let rules = HyperparameterRules::closed_division(BenchmarkId::ObjectDetection);
        let reference = params(&[("momentum", 0.9)]);
        assert!(rules.violations(&reference, &reference).is_empty());
    }

    #[test]
    fn novel_restricted_parameter_is_a_violation() {
        let rules = HyperparameterRules::closed_division(BenchmarkId::ObjectDetection);
        let reference = params(&[]);
        let submitted = params(&[("label_smoothing", 0.1)]);
        assert_eq!(rules.violations(&reference, &submitted), vec!["label_smoothing"]);
    }

    #[test]
    fn borrowing_copies_only_modifiable() {
        let rules = HyperparameterRules::closed_division(BenchmarkId::ImageClassification);
        let donor = params(&[("learning_rate", 1.6), ("momentum", 0.95)]);
        let mut recipient = params(&[("learning_rate", 0.1), ("momentum", 0.9)]);
        let adopted = borrow_hyperparameters(&rules, &donor, &mut recipient);
        assert_eq!(adopted, vec!["learning_rate"]);
        assert_eq!(recipient["learning_rate"], 1.6);
        assert_eq!(recipient["momentum"], 0.9, "restricted param must not be borrowed");
    }

    #[test]
    fn preview_deadline_is_later_of_60_days_or_next_cycle() {
        assert_eq!(Category::preview_deadline_days(30), 60);
        assert_eq!(Category::preview_deadline_days(90), 90);
    }

    #[test]
    fn display_names() {
        assert_eq!(Division::Closed.to_string(), "closed");
        assert_eq!(Category::Research.to_string(), "research");
    }

    #[test]
    fn scenario_slugs_round_trip() {
        for scenario in Scenario::ALL {
            assert_eq!(Scenario::from_slug(scenario.slug()), Some(scenario));
            assert_eq!(scenario.to_string(), scenario.slug());
        }
        assert_eq!(Scenario::from_slug("multi_stream"), None);
    }

    #[test]
    fn scenario_rules_are_sane() {
        for scenario in Scenario::ALL {
            let rules = scenario.rules();
            assert_eq!(rules.scenario, scenario);
            assert!(rules.min_query_count > 0, "{scenario}");
            assert!(rules.min_duration_ms > 0, "{scenario}");
        }
        assert_eq!(Scenario::SingleStream.rules().latency_percentile, Some(90.0));
        assert_eq!(Scenario::Server.rules().latency_percentile, Some(99.0));
        assert_eq!(Scenario::Offline.rules().latency_percentile, None);
    }
}
