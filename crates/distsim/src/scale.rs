//! The cloud scale metric (§4.2.3).
//!
//! The paper: "for cloud systems, a cloud scale metric was derived
//! from: 1) number of host processors, 2) amount of host memory, and
//! 3) number and type of accelerators. We empirically verified that
//! cloud scale correlates closely with cost across three major cloud
//! providers."

use serde::{Deserialize, Serialize};

/// A cloud system description, as submitted alongside results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudSystemDescription {
    /// Host vCPU count.
    pub host_processors: usize,
    /// Host memory in GiB.
    pub host_memory_gib: f64,
    /// Number of accelerator chips.
    pub accelerators: usize,
    /// Relative cost weight of the accelerator type (1.0 = the
    /// reference accelerator generation).
    pub accelerator_weight: f64,
}

/// Computes the cloud scale metric: a cost-proxy combining host
/// processors, host memory and weighted accelerator count. Calibrated
/// so one reference accelerator with a typical host slice scores 1.0.
pub fn cloud_scale(desc: &CloudSystemDescription) -> f64 {
    const PROC_WEIGHT: f64 = 0.01;
    const MEM_WEIGHT: f64 = 0.0008;
    const ACCEL_SHARE: f64 = 0.87;
    ACCEL_SHARE * desc.accelerators as f64 * desc.accelerator_weight
        + PROC_WEIGHT * desc.host_processors as f64
        + MEM_WEIGHT * desc.host_memory_gib
}

/// A simulated cloud provider's pricing model. The three providers
/// weigh the same resources differently (and add distinct base fees),
/// the way real clouds do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provider {
    /// Accelerator-premium pricing.
    North,
    /// Balanced pricing.
    Meridian,
    /// Host-heavy pricing with cheaper accelerators.
    South,
}

impl Provider {
    /// All simulated providers.
    pub const ALL: [Provider; 3] = [Provider::North, Provider::Meridian, Provider::South];
}

/// The hourly price (arbitrary currency units) a provider charges for a
/// system. Used to check the paper's claim that the cloud scale metric
/// "correlates closely with cost across three major cloud providers"
/// (§4.2.3).
pub fn hourly_price(desc: &CloudSystemDescription, provider: Provider) -> f64 {
    let (accel, proc, mem, base) = match provider {
        Provider::North => (3.10, 0.028, 0.0022, 0.05),
        Provider::Meridian => (2.60, 0.042, 0.0035, 0.10),
        Provider::South => (2.25, 0.055, 0.0041, 0.02),
    };
    base + accel * desc.accelerators as f64 * desc.accelerator_weight
        + proc * desc.host_processors as f64
        + mem * desc.host_memory_gib
}

/// Pearson correlation between two equally long samples.
///
/// # Panics
///
/// Panics if lengths differ or fewer than 2 points are given.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least 2 points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_accel_slice() -> CloudSystemDescription {
        CloudSystemDescription {
            host_processors: 8,
            host_memory_gib: 61.0,
            accelerators: 1,
            accelerator_weight: 1.0,
        }
    }

    #[test]
    fn reference_slice_scores_about_one() {
        let s = cloud_scale(&one_accel_slice());
        assert!((s - 1.0).abs() < 0.01, "reference scale {s}");
    }

    #[test]
    fn scale_is_monotone_in_every_component() {
        let base = one_accel_slice();
        let s0 = cloud_scale(&base);
        let mut more_accel = base.clone();
        more_accel.accelerators = 8;
        assert!(cloud_scale(&more_accel) > s0);
        let mut more_cpu = base.clone();
        more_cpu.host_processors = 96;
        assert!(cloud_scale(&more_cpu) > s0);
        let mut more_mem = base.clone();
        more_mem.host_memory_gib = 488.0;
        assert!(cloud_scale(&more_mem) > s0);
    }

    #[test]
    fn eight_accel_node_costs_about_eight_slices() {
        // Linear-cost sanity: an 8-accelerator node with 8x the host
        // resources scores ~8x the single slice.
        let node = CloudSystemDescription {
            host_processors: 64,
            host_memory_gib: 488.0,
            accelerators: 8,
            accelerator_weight: 1.0,
        };
        let ratio = cloud_scale(&node) / cloud_scale(&one_accel_slice());
        assert!((ratio - 8.0).abs() < 0.1, "ratio {ratio}");
    }

    /// The §4.2.3 verification: over a realistic grid of cloud system
    /// shapes, cloud scale correlates closely with every provider's
    /// price.
    #[test]
    fn cloud_scale_correlates_with_cost_across_providers() {
        let mut systems = Vec::new();
        for accel in [1usize, 2, 4, 8, 16, 32] {
            for weight in [1.0, 1.8, 2.5] {
                systems.push(CloudSystemDescription {
                    host_processors: 8 * accel,
                    host_memory_gib: 61.0 * accel as f64,
                    accelerators: accel,
                    accelerator_weight: weight,
                });
            }
        }
        let scales: Vec<f64> = systems.iter().map(cloud_scale).collect();
        for provider in Provider::ALL {
            let prices: Vec<f64> = systems.iter().map(|s| hourly_price(s, provider)).collect();
            let r = pearson(&scales, &prices);
            assert!(r > 0.97, "{provider:?}: correlation {r} too weak");
        }
    }

    #[test]
    fn providers_disagree_on_absolute_price() {
        let node = one_accel_slice();
        let prices: Vec<f64> = Provider::ALL.iter().map(|&p| hourly_price(&node, p)).collect();
        assert!(prices[0] != prices[1] && prices[1] != prices[2]);
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn newer_accelerators_weigh_more() {
        let mut newer = one_accel_slice();
        newer.accelerator_weight = 2.5;
        assert!(cloud_scale(&newer) > 2.0 * cloud_scale(&one_accel_slice()));
    }
}
