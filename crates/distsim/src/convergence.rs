//! The epochs-to-target convergence model.
//!
//! §2.2.2 of the paper: "MLPerf v0.5 ResNet-50 takes around 64 epochs to
//! reach the target top-1 accuracy of 74.9% at a minibatch size of 4K,
//! while a minibatch size of 16K can require over 80 epochs … resulting
//! in a 30% increase in computation."
//!
//! The model is the standard critical-batch-size form
//! `epochs(B) = e_min · (1 + B / B_crit)`: at small batches the epoch
//! count approaches `e_min`; past `B_crit` it grows linearly. The
//! default ResNet calibration solves the paper's two data points
//! exactly: `B_crit ≈ 36 864`, `e_min = 57.6`.

use serde::{Deserialize, Serialize};

/// Critical-batch-size convergence model with optional seed noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceModel {
    /// Asymptotic epoch count at small batch.
    pub min_epochs: f64,
    /// The batch size where epoch inflation reaches 2×.
    pub critical_batch: f64,
    /// Multiplier on epochs from a raised quality target
    /// (1.0 = v0.5 target).
    pub target_factor: f64,
    /// Relative run-to-run noise amplitude (σ of a lognormal-ish
    /// multiplier).
    pub noise: f64,
}

impl ConvergenceModel {
    /// The ResNet-50 calibration from the paper's §2.2.2 numbers.
    pub fn resnet_paper() -> Self {
        ConvergenceModel {
            min_epochs: 57.6,
            critical_batch: 36_864.0,
            target_factor: 1.0,
            noise: 0.03,
        }
    }

    /// Expected epochs to target at a global batch size (no noise).
    pub fn epochs(&self, batch: usize) -> f64 {
        self.min_epochs * (1.0 + batch as f64 / self.critical_batch) * self.target_factor
    }

    /// Epochs for one simulated run: the expectation times a
    /// deterministic pseudo-random multiplier derived from `seed`.
    pub fn epochs_with_seed(&self, batch: usize, seed: u64) -> f64 {
        self.epochs(batch) * (1.0 + self.noise * standard_normal(seed))
    }

    /// Returns a copy with the critical batch scaled by `factor` —
    /// models optimizer changes such as LARS, which extend the batch
    /// regime where convergence holds (the v0.6 ResNet rule change).
    pub fn with_critical_batch_scaled(mut self, factor: f64) -> Self {
        self.critical_batch *= factor;
        self
    }

    /// Returns a copy with a raised quality target (epochs multiplier).
    pub fn with_target_factor(mut self, factor: f64) -> Self {
        self.target_factor = factor;
        self
    }
}

/// A deterministic standard-normal-ish value from a seed
/// (Box–Muller over splitmix64 outputs).
fn standard_normal(seed: u64) -> f64 {
    let a = splitmix64(seed);
    let b = splitmix64(a);
    let u1 = ((a >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let u2 = (b >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_resnet_numbers() {
        let m = ConvergenceModel::resnet_paper();
        let e4k = m.epochs(4096);
        let e16k = m.epochs(16_384);
        assert!((e4k - 64.0).abs() < 0.5, "epochs at 4K: {e4k}");
        assert!(e16k > 80.0, "epochs at 16K: {e16k}");
        // ~30% increase in computation.
        let inflation = e16k / e4k;
        assert!((inflation - 1.3).abs() < 0.02, "inflation {inflation}");
    }

    #[test]
    fn epochs_monotone_in_batch() {
        let m = ConvergenceModel::resnet_paper();
        let mut prev = 0.0;
        for b in [256, 1024, 4096, 16_384, 65_536] {
            let e = m.epochs(b);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn lars_extends_critical_batch() {
        let base = ConvergenceModel::resnet_paper();
        let lars = base.with_critical_batch_scaled(4.0);
        // At very large batch, LARS needs far fewer epochs.
        assert!(lars.epochs(131_072) < base.epochs(131_072) * 0.5);
        // At small batch, nearly identical.
        let ratio = lars.epochs(256) / base.epochs(256);
        assert!((ratio - 1.0).abs() < 0.02);
    }

    #[test]
    fn seed_noise_is_deterministic_and_small() {
        let m = ConvergenceModel::resnet_paper();
        assert_eq!(m.epochs_with_seed(4096, 7), m.epochs_with_seed(4096, 7));
        assert_ne!(m.epochs_with_seed(4096, 7), m.epochs_with_seed(4096, 8));
        for seed in 0..100 {
            let e = m.epochs_with_seed(4096, seed);
            let rel = (e - m.epochs(4096)).abs() / m.epochs(4096);
            assert!(rel < 0.2, "noise too large: {rel}");
        }
    }

    #[test]
    fn target_factor_scales_epochs() {
        let m = ConvergenceModel::resnet_paper().with_target_factor(1.1);
        assert!((m.epochs(4096) / 64.0 - 1.1).abs() < 0.02);
    }
}
