//! An analytic simulator of distributed ML training systems.
//!
//! The paper's at-scale results (Figures 4 and 5) compare *submission
//! rounds*: how much faster the fastest 16-chip entries got from v0.5 to
//! v0.6, and how much larger the fastest systems grew. Reproducing that
//! requires a population of systems spanning orders of magnitude in
//! scale — which no single machine can provide — so, per the
//! substitution rule, this crate models them analytically:
//!
//! - a catalog of accelerator chips and interconnects ([`ChipSpec`],
//!   [`Interconnect`]);
//! - a ring all-reduce communication model ([`allreduce_time`]);
//! - a data-parallel step-time model ([`step_time`]);
//! - an epochs-to-target convergence model with a critical batch size
//!   ([`ConvergenceModel`]), calibrated to the paper's own numbers
//!   (ResNet-50: ~64 epochs at batch 4K, 80+ at 16K — §2.2.2);
//! - vendor/round submission simulation ([`simulate_submission`],
//!   [`best_time_at_scale`], [`best_overall`]) with the v0.6 rule and
//!   software changes (LARS for large-batch ResNet, higher quality
//!   targets, maturing software stacks).
//!
//! All quantities are deterministic functions of their inputs plus an
//! explicit seed where run-to-run noise is modelled.

#![warn(missing_docs)]

mod chips;
mod convergence;
mod power;
mod scale;
mod submission;

pub use chips::{allreduce_time, step_time, ChipSpec, Interconnect, SystemConfig};
pub use convergence::ConvergenceModel;
pub use power::{energy_to_train_kwh, system_power_w, PowerSpec};
pub use scale::{cloud_scale, hourly_price, pearson, CloudSystemDescription, Provider};
pub use submission::{
    best_overall, best_time_at_scale, simulate_run_set, simulate_submission, Round, SimBenchmark,
    SimResult, Vendor,
};
