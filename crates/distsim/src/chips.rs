//! Chip and interconnect models, the ring all-reduce cost, and the
//! data-parallel step-time model.

use serde::{Deserialize, Serialize};

/// An accelerator chip model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Marketing name.
    pub name: String,
    /// Peak training throughput in TFLOP/s (mixed precision).
    pub tflops: f64,
    /// Device memory in GiB — bounds the per-chip batch.
    pub memory_gib: f64,
    /// Achievable fraction of peak on real layers (0–1).
    pub utilization: f64,
}

impl ChipSpec {
    /// Sustained throughput in FLOP/s.
    pub fn sustained_flops(&self) -> f64 {
        self.tflops * 1e12 * self.utilization
    }

    /// Maximum per-chip batch for a model with `bytes_per_sample`
    /// activation footprint.
    pub fn max_batch(&self, bytes_per_sample: f64) -> usize {
        ((self.memory_gib * 0.6 * (1 << 30) as f64) / bytes_per_sample).floor() as usize
    }
}

/// A cluster interconnect model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Per-link bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-hop latency in microseconds.
    pub latency_us: f64,
}

/// A complete system: chips plus fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The accelerator model used.
    pub chip: ChipSpec,
    /// Number of accelerator chips.
    pub chips: usize,
    /// The fabric connecting them.
    pub interconnect: Interconnect,
}

/// Time (seconds) for a ring all-reduce of `bytes` over `n` chips:
/// `2·(n−1)/n · bytes / bandwidth + 2·(n−1) · latency`.
///
/// With one chip the cost is zero.
pub fn allreduce_time(bytes: f64, n: usize, fabric: Interconnect) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    let bw = fabric.bandwidth_gbs * 1e9;
    2.0 * (nf - 1.0) / nf * bytes / bw + 2.0 * (nf - 1.0) * fabric.latency_us * 1e-6
}

/// Time (seconds) for one data-parallel training step: per-chip compute
/// on `batch / chips` samples, then a gradient all-reduce of the model
/// parameters, discounted by `overlap` (0 = fully serialized, 1 = fully
/// hidden behind compute).
///
/// # Panics
///
/// Panics if `system.chips` is zero or the batch does not fill every
/// chip with at least one sample.
pub fn step_time(
    system: &SystemConfig,
    global_batch: usize,
    flops_per_sample: f64,
    param_bytes: f64,
    software_efficiency: f64,
    overlap: f64,
) -> f64 {
    assert!(system.chips > 0, "system must have chips");
    assert!(
        global_batch >= system.chips,
        "batch {global_batch} smaller than chip count {}",
        system.chips
    );
    let per_chip = (global_batch as f64 / system.chips as f64).ceil();
    let compute =
        per_chip * flops_per_sample / (system.chip.sustained_flops() * software_efficiency);
    let comm = allreduce_time(param_bytes, system.chips, system.interconnect);
    compute + comm * (1.0 - overlap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipSpec {
        ChipSpec { name: "sim-v100".into(), tflops: 125.0, memory_gib: 16.0, utilization: 0.4 }
    }

    fn fabric() -> Interconnect {
        Interconnect { bandwidth_gbs: 25.0, latency_us: 5.0 }
    }

    #[test]
    fn allreduce_zero_for_single_chip() {
        assert_eq!(allreduce_time(1e9, 1, fabric()), 0.0);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates() {
        // The 2(n-1)/n factor approaches 2, so doubling n at large n
        // barely changes the bandwidth term while latency keeps growing.
        let t64 = allreduce_time(1e9, 64, fabric());
        let t128 = allreduce_time(1e9, 128, fabric());
        assert!(t128 > t64);
        let bw64 = 2.0 * 63.0 / 64.0 * 1e9 / 25e9;
        assert!((t64 - bw64 - 2.0 * 63.0 * 5e-6).abs() < 1e-9);
    }

    #[test]
    fn allreduce_scales_with_bytes() {
        let a = allreduce_time(1e9, 8, fabric());
        let b = allreduce_time(2e9, 8, fabric());
        assert!(b > a * 1.5 && b < a * 2.5);
    }

    #[test]
    fn step_time_weak_scaling() {
        // Fixed per-chip batch: step time grows only by communication
        // (fast fabric so the all-reduce stays below compute).
        let fabric = Interconnect { bandwidth_gbs: 150.0, latency_us: 2.0 };
        let mk = |n| SystemConfig { chip: chip(), chips: n, interconnect: fabric };
        let t1 = step_time(&mk(1), 32, 1e10, 1e8, 1.0, 0.0);
        let t16 = step_time(&mk(16), 32 * 16, 1e10, 1e8, 1.0, 0.0);
        assert!(t16 > t1, "communication must add cost");
        assert!(t16 < t1 * 2.0, "weak scaling overhead too large");
    }

    #[test]
    fn step_time_strong_scaling_reduces_compute() {
        let fabric = Interconnect { bandwidth_gbs: 300.0, latency_us: 1.0 };
        let mk = |n| SystemConfig { chip: chip(), chips: n, interconnect: fabric };
        // Fixed global batch: more chips -> less compute per chip.
        let t1 = step_time(&mk(1), 256, 1e10, 1e8, 1.0, 0.5);
        let t8 = step_time(&mk(8), 256, 1e10, 1e8, 1.0, 0.5);
        assert!(t8 < t1, "strong scaling failed: {t1} -> {t8}");
    }

    #[test]
    fn software_efficiency_speeds_compute() {
        let sys = SystemConfig { chip: chip(), chips: 4, interconnect: fabric() };
        let slow = step_time(&sys, 64, 1e10, 1e8, 1.0, 0.0);
        let fast = step_time(&sys, 64, 1e10, 1e8, 1.3, 0.0);
        assert!(fast < slow);
    }

    #[test]
    fn max_batch_scales_with_memory() {
        let small = chip();
        let mut big = chip();
        big.memory_gib = 32.0;
        assert!(big.max_batch(1e6) >= small.max_batch(1e6) * 2 - 1);
    }

    #[test]
    #[should_panic(expected = "smaller than chip count")]
    fn underfilled_system_panics() {
        let sys = SystemConfig { chip: chip(), chips: 64, interconnect: fabric() };
        step_time(&sys, 32, 1e10, 1e8, 1.0, 0.0);
    }
}
