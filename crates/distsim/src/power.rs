//! Power and energy modelling — the paper's §4.2.3 names a power
//! specification for on-premise systems as planned future work ("for
//! on-premise systems, the future versions will include a specification
//! for measuring power"); this module implements the natural analytic
//! version for the simulator so submissions can report energy-to-train
//! alongside time-to-train.

use crate::chips::SystemConfig;
use serde::{Deserialize, Serialize};

/// Power characteristics of an accelerator chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Thermal design power of one chip, watts.
    pub chip_tdp_w: f64,
    /// Fraction of TDP drawn while training (utilization-dependent
    /// systems typically sit at 0.6–0.9).
    pub load_fraction: f64,
    /// Host + fabric overhead per chip, watts.
    pub overhead_per_chip_w: f64,
    /// Facility overhead multiplier (PUE); 1.0 = ideal.
    pub pue: f64,
}

impl PowerSpec {
    /// A representative accelerator-node profile.
    pub fn typical() -> Self {
        PowerSpec { chip_tdp_w: 300.0, load_fraction: 0.8, overhead_per_chip_w: 75.0, pue: 1.2 }
    }
}

/// Wall power (watts) drawn by a system under training load.
pub fn system_power_w(system: &SystemConfig, power: &PowerSpec) -> f64 {
    let chips = system.chips as f64;
    (chips * power.chip_tdp_w * power.load_fraction + chips * power.overhead_per_chip_w) * power.pue
}

/// Energy to train, in kilowatt-hours, for a result taking
/// `minutes` of wall time on `system`.
pub fn energy_to_train_kwh(system: &SystemConfig, power: &PowerSpec, minutes: f64) -> f64 {
    system_power_w(system, power) * (minutes / 60.0) / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::{ChipSpec, Interconnect};

    fn system(chips: usize) -> SystemConfig {
        SystemConfig {
            chip: ChipSpec {
                name: "sim".into(),
                tflops: 100.0,
                memory_gib: 16.0,
                utilization: 0.5,
            },
            chips,
            interconnect: Interconnect { bandwidth_gbs: 100.0, latency_us: 3.0 },
        }
    }

    #[test]
    fn power_scales_linearly_with_chips() {
        let p = PowerSpec::typical();
        let p8 = system_power_w(&system(8), &p);
        let p16 = system_power_w(&system(16), &p);
        assert!((p16 / p8 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn typical_node_power_is_plausible() {
        // 8 chips at 300W TDP, 80% load, 75W overhead, PUE 1.2:
        // (8*240 + 8*75) * 1.2 = 3024 W.
        let p = system_power_w(&system(8), &PowerSpec::typical());
        assert!((p - 3024.0).abs() < 1e-6, "power {p}");
    }

    #[test]
    fn energy_accounts_time_and_power() {
        let p = PowerSpec::typical();
        // Same workload: a 2x bigger system finishing in exactly half
        // the time uses the same energy.
        let e_small = energy_to_train_kwh(&system(8), &p, 60.0);
        let e_big = energy_to_train_kwh(&system(16), &p, 30.0);
        assert!((e_small - e_big).abs() < 1e-9);
        // 3024 W for one hour = 3.024 kWh.
        assert!((e_small - 3.024).abs() < 1e-6);
    }

    #[test]
    fn pue_multiplies_everything() {
        let mut p = PowerSpec::typical();
        let base = system_power_w(&system(4), &p);
        p.pue = 2.4;
        assert!((system_power_w(&system(4), &p) / base - 2.0).abs() < 1e-9);
    }
}
