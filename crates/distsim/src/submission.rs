//! Vendor submission simulation across benchmark rounds.
//!
//! §5 of the paper compares rounds v0.5 and v0.6, six months apart on
//! unchanged hardware: the fastest 16-chip entries sped up ~1.3× on
//! average (despite raised quality targets), and the chip count of the
//! fastest entries grew ~5.5× on average. The drivers named by the
//! paper — better benchmark implementations, maturing software stacks,
//! and rule changes such as allowing LARS for large-batch ResNet — are
//! modelled here as per-round software efficiency, communication
//! overlap, and critical-batch-size factors.

use crate::chips::{step_time, ChipSpec, Interconnect, SystemConfig};
use crate::convergence::ConvergenceModel;
use serde::{Deserialize, Serialize};

/// A benchmark submission round. Variant order is chronological, so
/// the derived ordering sorts histories oldest-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Round {
    /// December 2018 round.
    V05,
    /// June 2019 round (raised targets, LARS allowed, matured stacks).
    V06,
    /// July 2020 round (further stack maturation and larger systems).
    V07,
}

impl Round {
    /// All rounds in chronological order.
    pub const ALL: [Round; 3] = [Round::V05, Round::V06, Round::V07];

    /// The round's published label, also used as its archive directory
    /// name.
    pub fn label(self) -> &'static str {
        match self {
            Round::V05 => "v0.5",
            Round::V06 => "v0.6",
            Round::V07 => "v0.7",
        }
    }
}

impl std::fmt::Display for Round {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Round {
    type Err = String;

    fn from_str(s: &str) -> Result<Round, String> {
        Round::ALL
            .into_iter()
            .find(|r| r.label() == s)
            .ok_or_else(|| format!("unknown round `{s}` (expected one of v0.5, v0.6, v0.7)"))
    }
}

/// Workload parameters of one benchmark for the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchmark {
    /// Display name.
    pub name: String,
    /// Training FLOPs per sample (forward + backward + update).
    pub flops_per_sample: f64,
    /// Gradient bytes all-reduced per step.
    pub param_bytes: f64,
    /// Activation-memory footprint per sample (bounds per-chip batch).
    pub activation_bytes: f64,
    /// Samples per epoch.
    pub dataset_size: f64,
    /// Convergence behaviour at the v0.5 quality target.
    pub convergence: ConvergenceModel,
    /// Epoch inflation from the raised v0.6 target.
    pub v06_target_factor: f64,
    /// Critical-batch growth unlocked in v0.6 (LARS et al.).
    pub v06_batch_factor: f64,
    /// Epoch inflation added on top of v0.6 by the v0.7 targets.
    pub v07_target_factor: f64,
    /// Further critical-batch growth unlocked in v0.7.
    pub v07_batch_factor: f64,
}

impl SimBenchmark {
    /// The five benchmarks the paper compares across rounds (those
    /// "either unmodified or modified in limited ways").
    pub fn round_comparison_suite() -> Vec<SimBenchmark> {
        vec![
            SimBenchmark {
                name: "ResNet-50 v1.5".into(),
                flops_per_sample: 12.3e9,
                param_bytes: 25.6e6 * 4.0,
                activation_bytes: 60e6,
                dataset_size: 1.28e6,
                convergence: ConvergenceModel::resnet_paper(),
                v06_target_factor: 1.04, // 74.9% -> 75.9% top-1
                v06_batch_factor: 4.0,   // LARS allowed
                v07_target_factor: 1.0,
                v07_batch_factor: 2.0,
            },
            SimBenchmark {
                name: "SSD-ResNet-34".into(),
                flops_per_sample: 90e9,
                param_bytes: 36e6 * 4.0,
                activation_bytes: 120e6,
                dataset_size: 118e3,
                convergence: ConvergenceModel {
                    min_epochs: 49.0,
                    critical_batch: 8_192.0,
                    target_factor: 1.0,
                    noise: 0.05,
                },
                v06_target_factor: 1.05,
                v06_batch_factor: 3.0,
                v07_target_factor: 1.0,
                v07_batch_factor: 2.0,
            },
            SimBenchmark {
                name: "Mask R-CNN".into(),
                flops_per_sample: 820e9,
                param_bytes: 44e6 * 4.0,
                activation_bytes: 900e6,
                dataset_size: 118e3,
                convergence: ConvergenceModel {
                    min_epochs: 12.0,
                    critical_batch: 1_024.0,
                    target_factor: 1.0,
                    noise: 0.08,
                },
                v06_target_factor: 1.0,
                v06_batch_factor: 2.0,
                v07_target_factor: 1.0,
                v07_batch_factor: 2.0,
            },
            SimBenchmark {
                name: "GNMT".into(),
                flops_per_sample: 20e9,
                param_bytes: 160e6 * 4.0,
                activation_bytes: 250e6,
                dataset_size: 4.5e6,
                convergence: ConvergenceModel {
                    min_epochs: 2.2,
                    critical_batch: 2_048.0,
                    target_factor: 1.0,
                    noise: 0.07,
                },
                v06_target_factor: 1.08, // improved model raised BLEU target
                v06_batch_factor: 3.0,
                v07_target_factor: 1.0,
                v07_batch_factor: 1.5,
            },
            SimBenchmark {
                name: "Transformer".into(),
                flops_per_sample: 15e9,
                param_bytes: 210e6 * 4.0,
                activation_bytes: 300e6,
                dataset_size: 4.5e6,
                convergence: ConvergenceModel {
                    min_epochs: 2.5,
                    critical_batch: 8_192.0,
                    target_factor: 1.0,
                    noise: 0.06,
                },
                v06_target_factor: 1.0,
                v06_batch_factor: 3.0,
                v07_target_factor: 1.0,
                v07_batch_factor: 2.0,
            },
        ]
    }

    /// The three workloads the v0.7 round added: BERT, DLRM and RNN-T.
    /// They have no earlier-round history, so their round factors are
    /// all 1 — the convergence model *is* the v0.7 baseline.
    pub fn v07_additions() -> Vec<SimBenchmark> {
        vec![
            SimBenchmark {
                name: "BERT".into(),
                flops_per_sample: 0.5e12,
                param_bytes: 340e6 * 4.0,
                activation_bytes: 400e6,
                dataset_size: 3.0e6,
                convergence: ConvergenceModel {
                    min_epochs: 1.5,
                    critical_batch: 8_192.0,
                    target_factor: 1.0,
                    noise: 0.06,
                },
                v06_target_factor: 1.0,
                v06_batch_factor: 1.0,
                v07_target_factor: 1.0,
                v07_batch_factor: 1.0,
            },
            SimBenchmark {
                name: "DLRM".into(),
                flops_per_sample: 3e9,
                param_bytes: 60e6 * 4.0, // dense part only; embeddings stay sharded
                activation_bytes: 2e6,
                dataset_size: 3.3e8,
                convergence: ConvergenceModel {
                    min_epochs: 1.0,
                    critical_batch: 65_536.0,
                    target_factor: 1.0,
                    noise: 0.04,
                },
                v06_target_factor: 1.0,
                v06_batch_factor: 1.0,
                v07_target_factor: 1.0,
                v07_batch_factor: 1.0,
            },
            SimBenchmark {
                name: "RNN-T".into(),
                flops_per_sample: 80e9,
                param_bytes: 120e6 * 4.0,
                activation_bytes: 300e6,
                dataset_size: 288e3,
                convergence: ConvergenceModel {
                    min_epochs: 60.0,
                    critical_batch: 2_048.0,
                    target_factor: 1.0,
                    noise: 0.05,
                },
                v06_target_factor: 1.0,
                v06_batch_factor: 1.0,
                v07_target_factor: 1.0,
                v07_batch_factor: 1.0,
            },
        ]
    }

    /// Every workload contested in a round: the cross-round comparison
    /// suite, plus the v0.7 additions once they exist.
    pub fn benchmarks_for_round(round: Round) -> Vec<SimBenchmark> {
        let mut suite = SimBenchmark::round_comparison_suite();
        if round >= Round::V07 {
            suite.extend(SimBenchmark::v07_additions());
        }
        suite
    }

    /// The convergence model in effect for a round.
    pub fn convergence_for(&self, round: Round) -> ConvergenceModel {
        match round {
            Round::V05 => self.convergence,
            Round::V06 => self
                .convergence
                .with_critical_batch_scaled(self.v06_batch_factor)
                .with_target_factor(self.v06_target_factor),
            Round::V07 => self
                .convergence
                .with_critical_batch_scaled(self.v06_batch_factor * self.v07_batch_factor)
                .with_target_factor(self.v06_target_factor * self.v07_target_factor),
        }
    }
}

/// A simulated submitter: hardware plus a per-round software profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vendor {
    /// Submitter name.
    pub name: String,
    /// The accelerator this vendor fields.
    pub chip: ChipSpec,
    /// The fabric this vendor fields.
    pub interconnect: Interconnect,
    /// Fraction of tuned peak achieved in v0.5 software.
    pub efficiency_v05: f64,
    /// Fraction achieved in v0.6 software (stack maturation).
    pub efficiency_v06: f64,
    /// Fraction achieved in v0.7 software.
    pub efficiency_v07: f64,
    /// Compute/communication overlap in v0.5.
    pub overlap_v05: f64,
    /// Overlap in v0.6.
    pub overlap_v06: f64,
    /// Overlap in v0.7.
    pub overlap_v07: f64,
    /// Largest system the vendor could field in v0.5.
    pub max_chips_v05: usize,
    /// Largest system in v0.6.
    pub max_chips_v06: usize,
    /// Largest system in v0.7.
    pub max_chips_v07: usize,
}

impl Vendor {
    /// The three simulated submitters used by the round-comparison
    /// experiments. Values are fictional but produce round-over-round
    /// dynamics of the paper's magnitude.
    pub fn fleet() -> Vec<Vendor> {
        vec![
            Vendor {
                name: "Aurora".into(),
                chip: ChipSpec {
                    name: "A900".into(),
                    tflops: 125.0,
                    memory_gib: 32.0,
                    utilization: 0.45,
                },
                interconnect: Interconnect { bandwidth_gbs: 100.0, latency_us: 3.0 },
                efficiency_v05: 0.52,
                efficiency_v06: 0.74,
                efficiency_v07: 0.82,
                overlap_v05: 0.35,
                overlap_v06: 0.70,
                overlap_v07: 0.80,
                max_chips_v05: 512,
                max_chips_v06: 2048,
                max_chips_v07: 4096,
            },
            Vendor {
                name: "Borealis".into(),
                chip: ChipSpec {
                    name: "B12".into(),
                    tflops: 105.0,
                    memory_gib: 24.0,
                    utilization: 0.50,
                },
                interconnect: Interconnect { bandwidth_gbs: 60.0, latency_us: 4.0 },
                efficiency_v05: 0.48,
                efficiency_v06: 0.71,
                efficiency_v07: 0.79,
                overlap_v05: 0.30,
                overlap_v06: 0.65,
                overlap_v07: 0.76,
                max_chips_v05: 256,
                max_chips_v06: 1024,
                max_chips_v07: 2048,
            },
            Vendor {
                name: "Cumulus".into(),
                chip: ChipSpec {
                    name: "C7".into(),
                    tflops: 140.0,
                    memory_gib: 16.0,
                    utilization: 0.42,
                },
                interconnect: Interconnect { bandwidth_gbs: 150.0, latency_us: 2.0 },
                efficiency_v05: 0.50,
                efficiency_v06: 0.70,
                efficiency_v07: 0.78,
                overlap_v05: 0.40,
                overlap_v06: 0.75,
                overlap_v07: 0.82,
                max_chips_v05: 1024,
                max_chips_v06: 4096,
                max_chips_v07: 8192,
            },
        ]
    }

    fn efficiency(&self, round: Round) -> f64 {
        match round {
            Round::V05 => self.efficiency_v05,
            Round::V06 => self.efficiency_v06,
            Round::V07 => self.efficiency_v07,
        }
    }

    fn overlap(&self, round: Round) -> f64 {
        match round {
            Round::V05 => self.overlap_v05,
            Round::V06 => self.overlap_v06,
            Round::V07 => self.overlap_v07,
        }
    }

    /// The largest system the vendor can field in a round.
    pub fn max_chips(&self, round: Round) -> usize {
        match round {
            Round::V05 => self.max_chips_v05,
            Round::V06 => self.max_chips_v06,
            Round::V07 => self.max_chips_v07,
        }
    }
}

/// A simulated submission result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Vendor name.
    pub vendor: String,
    /// Chips used.
    pub chips: usize,
    /// Global minibatch chosen.
    pub batch: usize,
    /// Epochs needed at that batch.
    pub epochs: f64,
    /// End-to-end time to train, in minutes.
    pub minutes: f64,
}

/// Simulates one vendor's submission at a fixed system size: the vendor
/// tunes the per-chip batch (powers of two up to the memory bound) to
/// minimize time-to-train under the round's convergence model.
///
/// Returns `None` when the system cannot run the workload (no feasible
/// batch).
pub fn simulate_submission(
    vendor: &Vendor,
    round: Round,
    bench: &SimBenchmark,
    chips: usize,
    seed: u64,
) -> Option<SimResult> {
    let max_per_chip = vendor.chip.max_batch(bench.activation_bytes);
    if max_per_chip == 0 || chips == 0 {
        return None;
    }
    let system =
        SystemConfig { chip: vendor.chip.clone(), chips, interconnect: vendor.interconnect };
    let conv = bench.convergence_for(round);
    let mut best: Option<SimResult> = None;
    let mut per_chip = 1usize;
    while per_chip <= max_per_chip {
        let batch = per_chip * chips;
        let epochs = conv.epochs_with_seed(batch, seed ^ (batch as u64)).max(1.0);
        let steps = (bench.dataset_size / batch as f64).ceil() * epochs;
        let t = step_time(
            &system,
            batch,
            bench.flops_per_sample,
            bench.param_bytes,
            vendor.efficiency(round),
            vendor.overlap(round),
        );
        let minutes = steps * t / 60.0;
        if best.as_ref().is_none_or(|b| minutes < b.minutes) {
            best = Some(SimResult { vendor: vendor.name.clone(), chips, batch, epochs, minutes });
        }
        per_chip *= 2;
    }
    best
}

/// Simulates a full run set for one vendor/benchmark/system: `runs`
/// timed runs with per-run seeds derived from `base_seed`, as the
/// submission rules require (§3.2.2). Returns `None` when the system
/// cannot run the workload at all.
pub fn simulate_run_set(
    vendor: &Vendor,
    round: Round,
    bench: &SimBenchmark,
    chips: usize,
    base_seed: u64,
    runs: usize,
) -> Option<Vec<SimResult>> {
    (0..runs as u64)
        .map(|r| {
            simulate_submission(
                vendor,
                round,
                bench,
                chips,
                base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(r),
            )
        })
        .collect()
}

/// The fastest submission across a vendor fleet at one fixed system
/// size (Figure 4's "fastest 16-chip entry").
pub fn best_time_at_scale(
    vendors: &[Vendor],
    round: Round,
    bench: &SimBenchmark,
    chips: usize,
    seed: u64,
) -> Option<SimResult> {
    vendors
        .iter()
        .filter_map(|v| simulate_submission(v, round, bench, chips, seed))
        .min_by(|a, b| a.minutes.total_cmp(&b.minutes))
}

/// The fastest submission over all vendors and all power-of-two system
/// sizes each vendor can field (Figure 5's "fastest overall score").
pub fn best_overall(
    vendors: &[Vendor],
    round: Round,
    bench: &SimBenchmark,
    seed: u64,
) -> Option<SimResult> {
    let mut best: Option<SimResult> = None;
    for v in vendors {
        let mut chips = 1usize;
        while chips <= v.max_chips(round) {
            if let Some(r) = simulate_submission(v, round, bench, chips, seed) {
                if best.as_ref().is_none_or(|b| r.minutes < b.minutes) {
                    best = Some(r);
                }
            }
            chips *= 2;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_chip_entries_speed_up_about_1_3x() {
        // Figure 4's headline: average speedup ~1.3x at fixed 16 chips.
        let vendors = Vendor::fleet();
        let mut speedups = Vec::new();
        for bench in SimBenchmark::round_comparison_suite() {
            let t05 = best_time_at_scale(&vendors, Round::V05, &bench, 16, 1).unwrap();
            let t06 = best_time_at_scale(&vendors, Round::V06, &bench, 16, 1).unwrap();
            let s = t05.minutes / t06.minutes;
            assert!(s > 1.0, "{}: v0.6 slower than v0.5 at 16 chips ({s})", bench.name);
            speedups.push(s);
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (1.1..=1.7).contains(&avg),
            "average 16-chip speedup {avg} outside the paper's ballpark"
        );
    }

    #[test]
    fn fastest_systems_grow_several_fold() {
        // Figure 5's headline: chips of the fastest entry grow ~5.5x on
        // average between rounds.
        let vendors = Vendor::fleet();
        let mut growth = Vec::new();
        for bench in SimBenchmark::round_comparison_suite() {
            let b05 = best_overall(&vendors, Round::V05, &bench, 2).unwrap();
            let b06 = best_overall(&vendors, Round::V06, &bench, 2).unwrap();
            assert!(b06.minutes < b05.minutes, "{}: best time regressed", bench.name);
            growth.push(b06.chips as f64 / b05.chips as f64);
        }
        let avg = growth.iter().sum::<f64>() / growth.len() as f64;
        assert!(
            (2.0..=12.0).contains(&avg),
            "average scale growth {avg} outside the paper's ballpark"
        );
    }

    #[test]
    fn more_chips_not_always_faster_in_v05() {
        // Without LARS, epoch inflation caps useful scale: the best
        // overall v0.5 ResNet entry uses fewer chips than the largest
        // system available.
        let vendors = Vendor::fleet();
        let bench = &SimBenchmark::round_comparison_suite()[0];
        let best = best_overall(&vendors, Round::V05, bench, 3).unwrap();
        let largest = vendors.iter().map(|v| v.max_chips(Round::V05)).max().unwrap();
        assert!(best.chips <= largest);
        // And running at the largest scale is slower than the optimum.
        let vendor = vendors.iter().find(|v| v.max_chips_v05 == largest).unwrap();
        let at_max = simulate_submission(vendor, Round::V05, bench, largest, 3).unwrap();
        assert!(at_max.minutes >= best.minutes);
    }

    #[test]
    fn seed_changes_results_slightly() {
        let vendors = Vendor::fleet();
        let bench = &SimBenchmark::round_comparison_suite()[0];
        let a = best_time_at_scale(&vendors, Round::V05, bench, 16, 1).unwrap();
        let b = best_time_at_scale(&vendors, Round::V05, bench, 16, 99).unwrap();
        let rel = (a.minutes - b.minutes).abs() / a.minutes;
        assert!(rel < 0.25, "seed noise too large: {rel}");
    }

    #[test]
    fn run_sets_vary_per_run_but_stay_close() {
        let vendors = Vendor::fleet();
        let bench = &SimBenchmark::round_comparison_suite()[0];
        let runs = simulate_run_set(&vendors[0], Round::V05, bench, 16, 7, 5).unwrap();
        assert_eq!(runs.len(), 5);
        let minutes: Vec<f64> = runs.iter().map(|r| r.minutes).collect();
        let lo = minutes.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = minutes.iter().cloned().fold(0.0, f64::max);
        assert!(hi > lo, "per-run seeds should produce run-to-run variance");
        assert!(hi / lo < 1.5, "variance implausibly large: {minutes:?}");
        // Deterministic for a base seed.
        let again = simulate_run_set(&vendors[0], Round::V05, bench, 16, 7, 5).unwrap();
        assert_eq!(runs, again);
    }

    #[test]
    fn round_labels_round_trip() {
        for round in Round::ALL {
            assert_eq!(round.label().parse::<Round>().unwrap(), round);
        }
        assert!("v9.9".parse::<Round>().is_err());
        assert!(Round::V05 < Round::V06 && Round::V06 < Round::V07);
    }

    #[test]
    fn v07_keeps_improving_on_v06() {
        let vendors = Vendor::fleet();
        for bench in SimBenchmark::round_comparison_suite() {
            let b06 = best_overall(&vendors, Round::V06, &bench, 2).unwrap();
            let b07 = best_overall(&vendors, Round::V07, &bench, 2).unwrap();
            assert!(b07.minutes < b06.minutes, "{}: v0.7 best time regressed", bench.name);
        }
    }

    #[test]
    fn v07_round_contests_the_added_workloads() {
        let v06 = SimBenchmark::benchmarks_for_round(Round::V06);
        assert_eq!(v06.len(), SimBenchmark::round_comparison_suite().len());
        let v07 = SimBenchmark::benchmarks_for_round(Round::V07);
        assert_eq!(v07.len(), v06.len() + 3);
        let vendors = Vendor::fleet();
        for bench in SimBenchmark::v07_additions() {
            assert!(!v06.iter().any(|b| b.name == bench.name), "{} leaked early", bench.name);
            // Every addition must be runnable at the 16-chip comparison
            // point by at least one vendor.
            let best = best_time_at_scale(&vendors, Round::V07, &bench, 16, 1);
            assert!(best.is_some(), "{} infeasible at 16 chips", bench.name);
        }
    }

    #[test]
    fn infeasible_system_returns_none() {
        let mut vendor = Vendor::fleet().remove(0);
        vendor.chip.memory_gib = 0.0001; // cannot fit one sample
        let bench = &SimBenchmark::round_comparison_suite()[0];
        assert!(simulate_submission(&vendor, Round::V05, bench, 8, 0).is_none());
    }

    #[test]
    fn batch_respects_memory_bound() {
        let vendors = Vendor::fleet();
        let bench = &SimBenchmark::round_comparison_suite()[2]; // Mask R-CNN, heavy
        let r = simulate_submission(&vendors[0], Round::V05, bench, 16, 0).unwrap();
        let per_chip = r.batch / 16;
        assert!(per_chip <= vendors[0].chip.max_batch(bench.activation_bytes));
    }
}
