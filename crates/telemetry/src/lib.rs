//! Instrumentation for the benchmark suite: hierarchical spans, a
//! metrics registry, and trace export.
//!
//! One [`Telemetry`] handle is threaded through the layers under
//! measurement — the training harness, the submission-round ingest
//! pipeline, and the round archive. The handle is either *recording*
//! (an `Arc`-shared sink: span store, metric registry, and a monotonic
//! reference clock) or *disabled* (no sink at all). Disabled is the
//! default everywhere and costs nothing: no allocation, no clock reads,
//! no atomics — every instrumentation site branches on an `Option`
//! and moves on, which is what keeps the uninstrumented ingest path at
//! its BENCH.md baseline.
//!
//! Timestamps are explicit: spans are emitted through a [`SpanScope`]
//! built over a caller-supplied [`Clock`], so the harness can drive
//! spans from the same simulated clock its tests already use. Scopes
//! with different clock origins are aligned onto the sink's own
//! timeline at scope creation, so a trace mixing per-worker clocks
//! still reads as one coherent run.
//!
//! Exporters: [`trace::write_trace`] emits Chrome `trace_event`
//! JSON-lines (loadable in `chrome://tracing` / Perfetto),
//! [`prometheus::render_prometheus`] renders the registry — counters,
//! gauges, histograms, sketch quantiles, and time-series rates — in
//! Prometheus text exposition format, [`flame::write_collapsed`] folds
//! completed span trees into a collapsed-stack profile (the format
//! `inferno` / `flamegraph.pl` consume), and `mlperf-core`'s
//! `report::render_telemetry_report` renders the same snapshot as a
//! plain-text summary.
//!
//! Beyond point-in-time snapshots, the sink can carry an installed
//! [`Reporter`] that samples counters and gauges into windowed
//! [`TimeSeries`] rings — instrumented loops call
//! [`Telemetry::pulse`] per item and the reporter turns that into
//! interval-spaced rate windows and optional live progress lines (see
//! the `series` module docs). Tail latencies aggregate into mergeable
//! [`QuantileSketch`]es with fixed memory instead of retained sample
//! vectors (see the `sketch` module docs for the error bound).

mod clock;
pub mod flame;
mod metrics;
pub mod prometheus;
mod series;
mod sketch;
mod snapshot;
mod span;
pub mod trace;

pub use clock::{Clock, MonotonicClock};
pub use flame::{render_collapsed, write_collapsed};
pub use metrics::{Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot};
pub use prometheus::{render_prometheus, write_prometheus};
pub use series::{
    Reporter, SeriesKind, SeriesSample, TimeSeries, TimeSeriesSnapshot, Window,
    DEFAULT_SERIES_CAPACITY,
};
pub use sketch::{
    QuantileSketch, Sketch, SketchShard, SketchSnapshot, DEFAULT_SKETCH_ALPHA,
    DEFAULT_SKETCH_MAX_BUCKETS,
};
pub use snapshot::TelemetrySnapshot;
pub use span::{arg, EventRecord, SpanHandle, SpanId, SpanRecord, SpanScope};
pub use trace::{render_trace, trace_events, write_trace, TraceWriteError};

use metrics::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The shared sink behind a recording handle.
#[derive(Debug)]
struct Inner {
    /// The reference timeline every scope is aligned onto.
    clock: MonotonicClock,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
    /// Next span id (1-based; 0 is the null id).
    next_span: AtomicU64,
    /// Next scope track (trace viewer lane).
    next_track: AtomicU64,
    metrics: Registry,
    /// The installed reporter, ticked by [`Telemetry::pulse`].
    reporter: Mutex<Option<Reporter>>,
}

/// 1-in-N per-item span sampling for very large workloads. Metrics
/// (counters, gauges, histograms) are never sampled — only the
/// per-item span volume is thinned, so tracing a many-thousand-bundle
/// round stays cheap while the aggregates stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSampling {
    /// Sampling kicks in only when a stage has at least this many
    /// items; smaller stages keep full per-item span detail.
    pub threshold: u64,
    /// Record every Nth per-item span once over the threshold
    /// (`1` = record all).
    pub every: u64,
}

/// A cloneable instrumentation handle: either a shared recording sink
/// or a no-op. Clones share the sink, so one handle can be passed down
/// through the harness, the ingest worker pool, and the archive and
/// everything lands in one snapshot.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    /// Per-item span sampling; rides on the handle (not the sink) so a
    /// caller can thin one pipeline's spans while other holders of the
    /// same sink keep recording everything.
    sampling: Option<SpanSampling>,
}

impl Telemetry {
    /// A recording handle with a fresh, empty sink. The sink's
    /// reference clock starts now.
    pub fn recording() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock: MonotonicClock::new(),
                spans: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(1),
                next_track: AtomicU64::new(1),
                metrics: Registry::default(),
                reporter: Mutex::new(None),
            })),
            sampling: None,
        }
    }

    /// The no-op handle (also [`Telemetry::default`]). Scopes and
    /// metric handles minted from it record nothing and never allocate.
    pub fn disabled() -> Self {
        Telemetry { inner: None, sampling: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns this handle with 1-in-N per-item span sampling armed.
    /// Instrumented loops consult [`Telemetry::span_stride`] with their
    /// item count; stages below `sampling.threshold` are unaffected.
    pub fn with_span_sampling(mut self, sampling: SpanSampling) -> Self {
        self.sampling = Some(sampling);
        self
    }

    /// The sampling configuration, if armed.
    pub fn span_sampling(&self) -> Option<SpanSampling> {
        self.sampling
    }

    /// The per-item span stride for a stage of `items` items: `every`
    /// when sampling is armed and the stage meets the threshold,
    /// otherwise 1 (record every span).
    pub fn span_stride(&self, items: u64) -> u64 {
        match self.sampling {
            Some(s) if self.is_enabled() && items >= s.threshold => s.every.max(1),
            _ => 1,
        }
    }

    /// A root span scope over the caller's clock, on a fresh track.
    /// The clock's origin is aligned onto the sink timeline here, once.
    pub fn scope<'a>(&'a self, clock: &'a dyn Clock) -> SpanScope<'a> {
        self.scope_under(clock, None)
    }

    /// Like [`Telemetry::scope`], with every root span in the new scope
    /// parented under `parent` — how a worker thread nests its spans
    /// under the coordinating span of another scope.
    pub fn scope_under<'a>(
        &'a self,
        clock: &'a dyn Clock,
        parent: Option<SpanId>,
    ) -> SpanScope<'a> {
        let Some(inner) = &self.inner else {
            return SpanScope::disabled();
        };
        let offset_us = inner.clock.now().as_micros() as i64 - clock.now().as_micros() as i64;
        let track = inner.next_track.fetch_add(1, Ordering::Relaxed);
        SpanScope::new(self, clock, offset_us, track, parent)
    }

    /// A span scope over the sink's own reference clock (no alignment
    /// needed) — for call sites with no clock of their own.
    pub fn timeline_scope(&self) -> SpanScope<'_> {
        self.timeline_scope_under(None)
    }

    /// [`Telemetry::timeline_scope`] with an explicit parent span.
    pub fn timeline_scope_under(&self, parent: Option<SpanId>) -> SpanScope<'_> {
        let Some(inner) = &self.inner else {
            return SpanScope::disabled();
        };
        let track = inner.next_track.fetch_add(1, Ordering::Relaxed);
        SpanScope::new(self, &inner.clock, 0, track, parent)
    }

    /// The named counter (registered on first use). A disabled handle
    /// returns an inert counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.as_ref().map_or_else(Counter::disabled, |inner| inner.metrics.counter(name))
    }

    /// The named gauge (registered on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.as_ref().map_or_else(Gauge::disabled, |inner| inner.metrics.gauge(name))
    }

    /// The named histogram. The first registration fixes `bounds`
    /// (inclusive upper bucket bounds, strictly increasing).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::disabled, |inner| inner.metrics.histogram(name, bounds))
    }

    /// The named quantile sketch at the default relative-error bound
    /// ([`DEFAULT_SKETCH_ALPHA`]). A disabled handle returns an inert
    /// sketch.
    pub fn sketch(&self, name: &str) -> Sketch {
        self.sketch_with_alpha(name, DEFAULT_SKETCH_ALPHA)
    }

    /// The named quantile sketch. The first registration fixes
    /// `alpha`.
    pub fn sketch_with_alpha(&self, name: &str, alpha: f64) -> Sketch {
        self.inner.as_ref().map_or_else(Sketch::disabled, |inner| inner.metrics.sketch(name, alpha))
    }

    /// The named time-series with the default ring capacity. The first
    /// registration fixes the kind.
    pub fn time_series(&self, name: &str, kind: SeriesKind) -> TimeSeries {
        self.time_series_with_capacity(name, kind, DEFAULT_SERIES_CAPACITY)
    }

    /// [`Telemetry::time_series`] with an explicit ring capacity
    /// (fixed by the first registration).
    pub fn time_series_with_capacity(
        &self,
        name: &str,
        kind: SeriesKind,
        capacity: usize,
    ) -> TimeSeries {
        self.inner.as_ref().map_or_else(TimeSeries::disabled, |inner| {
            inner.metrics.time_series(name, kind, capacity)
        })
    }

    /// Installs `reporter` into the sink; subsequent
    /// [`Telemetry::pulse`] calls (from any clone, any thread) tick it
    /// on the sink's monotonic clock. Replaces any previous reporter.
    /// No-op on a disabled handle.
    pub fn install_reporter(&self, reporter: Reporter) {
        if let Some(inner) = &self.inner {
            *inner.reporter.lock().expect("reporter slot poisoned") = Some(reporter);
        }
    }

    /// Gives the installed reporter a chance to sample, at the sink
    /// clock's current time. Cheap when no reporter is installed or
    /// the interval has not elapsed; instrumented loops call this once
    /// per processed item.
    pub fn pulse(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut slot = inner.reporter.lock().expect("reporter slot poisoned");
        if let Some(reporter) = slot.as_mut() {
            reporter.maybe_tick(inner.clock.now());
        }
    }

    /// Forces the installed reporter to take a final sample now, so
    /// even a run shorter than the sampling interval closes at least
    /// one window before a snapshot is taken.
    pub fn flush_reporter(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut slot = inner.reporter.lock().expect("reporter slot poisoned");
        if let Some(reporter) = slot.as_mut() {
            reporter.tick(inner.clock.now());
        }
    }

    /// A copy of everything recorded so far. Spans come back sorted by
    /// `(start_us, id)` regardless of completion order.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let mut spans = inner.spans.lock().expect("span sink poisoned").clone();
        spans.sort_by_key(|s| (s.start_us, s.id));
        let mut events = inner.events.lock().expect("event sink poisoned").clone();
        events.sort_by_key(|e| (e.ts_us, e.id));
        TelemetrySnapshot {
            spans,
            events,
            counters: inner.metrics.counter_snapshots(),
            gauges: inner.metrics.gauge_snapshots(),
            histograms: inner.metrics.histogram_snapshots(),
            sketches: inner.metrics.sketch_snapshots(),
            series: inner.metrics.series_snapshots(),
        }
    }

    /// Allocates the next span id. Only called by enabled scopes.
    pub(crate) fn allocate_span_id(&self) -> u64 {
        let inner = self.inner.as_ref().expect("span id requested from disabled telemetry");
        inner.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Stores one completed span. Only called by enabled scopes.
    pub(crate) fn record_span(&self, record: SpanRecord) {
        let inner = self.inner.as_ref().expect("span recorded into disabled telemetry");
        inner.spans.lock().expect("span sink poisoned").push(record);
    }

    /// Stores one instant event. Only called by enabled scopes.
    pub(crate) fn record_event(&self, record: EventRecord) {
        let inner = self.inner.as_ref().expect("event recorded into disabled telemetry");
        inner.events.lock().expect("event sink poisoned").push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_handle_is_disabled() {
        let telemetry = Telemetry::default();
        assert!(!telemetry.is_enabled());
        assert!(telemetry.snapshot().is_empty());
    }

    #[test]
    fn span_stride_respects_threshold_and_handle_state() {
        let plain = Telemetry::recording();
        assert_eq!(plain.span_stride(1_000_000), 1, "no sampling unless armed");

        let sampled =
            Telemetry::recording().with_span_sampling(SpanSampling { threshold: 100, every: 8 });
        assert_eq!(sampled.span_stride(99), 1, "below threshold records everything");
        assert_eq!(sampled.span_stride(100), 8);
        assert_eq!(sampled.span_stride(100_000), 8);
        assert_eq!(sampled.span_sampling(), Some(SpanSampling { threshold: 100, every: 8 }));

        // Sampling rides on the handle, not the sink: a plain clone of
        // the same sink still records everything.
        let clone = Telemetry { inner: sampled.inner.clone(), sampling: None };
        assert_eq!(clone.span_stride(100_000), 1);

        let disabled =
            Telemetry::disabled().with_span_sampling(SpanSampling { threshold: 0, every: 4 });
        assert_eq!(disabled.span_stride(1_000), 1, "disabled handles have no spans to thin");

        let degenerate =
            Telemetry::recording().with_span_sampling(SpanSampling { threshold: 0, every: 0 });
        assert_eq!(degenerate.span_stride(10), 1, "every=0 clamps to recording all");
    }

    #[test]
    fn clones_share_one_sink() {
        let telemetry = Telemetry::recording();
        let clone = telemetry.clone();
        clone.counter("shared").add(2);
        telemetry.counter("shared").incr();
        assert_eq!(telemetry.snapshot().counters[0].value, 3);

        let mut scope = clone.timeline_scope();
        scope.record("test", "from_clone", || ());
        assert_eq!(telemetry.snapshot().spans.len(), 1);
    }

    #[test]
    fn snapshot_sorts_spans_by_start_time() {
        let telemetry = Telemetry::recording();
        let mut scope = telemetry.timeline_scope();
        let outer = scope.start("test", "first");
        let inner = scope.start("test", "second");
        scope.end(inner);
        scope.end(outer);
        // "second" completes first but starts later; the snapshot
        // orders by start.
        let spans = telemetry.snapshot().spans;
        assert_eq!(spans[0].name, "first");
        assert_eq!(spans[1].name, "second");
        assert!(spans[0].id < spans[1].id);
    }

    #[test]
    fn snapshot_reports_layers_in_first_seen_order() {
        let telemetry = Telemetry::recording();
        let mut scope = telemetry.timeline_scope();
        scope.record("harness", "run", || ());
        scope.record("ingest", "parse", || ());
        scope.record("harness", "run", || ());
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.layers(), vec!["harness", "ingest"]);
        assert_eq!(snapshot.spans_in("harness").count(), 2);
    }

    #[test]
    fn installed_reporter_samples_through_pulse_and_flush() {
        let telemetry = Telemetry::recording();
        let counter = telemetry.counter("items");
        let mut reporter = Reporter::new(std::time::Duration::ZERO);
        reporter.track_counter(&telemetry, "items", counter.clone());
        telemetry.install_reporter(reporter);
        telemetry.pulse(); // baseline sample
        counter.add(7);
        telemetry.flush_reporter();
        let snapshot = telemetry.snapshot();
        let series = snapshot.series.iter().find(|s| s.name == "items").unwrap();
        assert!(series.samples.len() >= 2);
        assert_eq!(series.last().unwrap().value, 7.0);
        let deltas: f64 = series.windows().iter().map(|w| w.delta).sum();
        assert_eq!(deltas as u64, counter.value());
    }

    #[test]
    fn disabled_handles_mint_inert_sketches_and_series() {
        let telemetry = Telemetry::disabled();
        telemetry.sketch("s").observe(1.0);
        telemetry.time_series("t", SeriesKind::Counter).push(std::time::Duration::ZERO, 1.0);
        telemetry.install_reporter(Reporter::new(std::time::Duration::ZERO));
        telemetry.pulse();
        telemetry.flush_reporter();
        assert!(telemetry.snapshot().is_empty());
    }

    #[test]
    fn sketches_and_series_land_in_the_snapshot() {
        let telemetry = Telemetry::recording();
        let sketch = telemetry.sketch("latency");
        for i in 1..=100 {
            sketch.observe(i as f64);
        }
        telemetry
            .time_series("depth", SeriesKind::Gauge)
            .push(std::time::Duration::from_secs(1), 3.0);
        let snapshot = telemetry.snapshot();
        assert!(!snapshot.is_empty());
        assert_eq!(snapshot.sketches.len(), 1);
        assert_eq!(snapshot.sketches[0].count, 100);
        let p50 = snapshot.sketches[0].quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() <= 0.5 + 1e-9, "p50 within 1%: {p50}");
        assert_eq!(snapshot.series.len(), 1);
        assert_eq!(snapshot.series[0].last().unwrap().value, 3.0);
    }

    #[test]
    fn scopes_get_distinct_tracks() {
        let telemetry = Telemetry::recording();
        let mut a = telemetry.timeline_scope();
        let mut b = telemetry.timeline_scope();
        a.record("test", "a", || ());
        b.record("test", "b", || ());
        let spans = telemetry.snapshot().spans;
        assert_ne!(spans[0].track, spans[1].track);
    }
}
