//! Hierarchical spans: named, timestamped intervals forming a tree.
//!
//! Spans are emitted through a [`SpanScope`] — a per-thread cursor over
//! an explicit [`Clock`] that maintains the open-span stack (children
//! nest under the innermost open span) and pushes completed
//! [`SpanRecord`]s into the shared sink. Scopes on different threads
//! emit concurrently; each gets its own `track` (the trace viewer's
//! thread lane), and the sink aligns every scope's clock onto one
//! timeline so spans from different clocks stay comparable.

use crate::clock::Clock;
use crate::Telemetry;
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};

/// Identifies one emitted span, for explicit cross-scope parent links.
/// `0` is the null id a disabled scope hands out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Whether this id names a real recorded span.
    pub fn is_recorded(&self) -> bool {
        self.0 != 0
    }
}

/// One completed span, as the sink stores it and the exporters read it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within the sink (1-based; ids are allocated at start
    /// order, so a parent's id is always smaller than its children's).
    pub id: u64,
    /// The enclosing span's id, `None` for a root.
    pub parent: Option<u64>,
    /// The emitting scope's lane — one per scope, so concurrent workers
    /// never interleave on one lane.
    pub track: u64,
    /// Which instrumented layer emitted this (`harness`, `ingest`,
    /// `store`, …) — the Chrome trace category.
    pub layer: String,
    /// Span name (`epoch`, `parse_log`, `write_round`, …).
    pub name: String,
    /// Start timestamp on the sink timeline, microseconds.
    pub start_us: u64,
    /// End timestamp on the sink timeline, microseconds.
    pub end_us: u64,
    /// Structured key/value annotations.
    pub args: Map,
}

impl SpanRecord {
    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One instant event: a point on the timeline rather than an interval.
/// Used for decisions and state changes with no meaningful duration —
/// e.g. review quarantining a bundle — which Chrome traces render as a
/// vertical tick on the emitting track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Unique id within the sink (shares the span id space).
    pub id: u64,
    /// The open span the event happened inside, `None` at top level.
    pub parent: Option<u64>,
    /// The emitting scope's lane.
    pub track: u64,
    /// Which instrumented layer emitted this — the trace category.
    pub layer: String,
    /// Event name (`quarantine`, `storage_fault`, …).
    pub name: String,
    /// Timestamp on the sink timeline, microseconds.
    pub ts_us: u64,
    /// Structured key/value annotations.
    pub args: Map,
}

/// A span opened by [`SpanScope::start`] and not yet ended.
#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    layer: &'static str,
    name: String,
    start_us: u64,
    args: Map,
}

/// A handle to an open span: pass it back to [`SpanScope::end`]. Ends
/// are stack-disciplined — ending a span also ends any still-open
/// descendants it encloses.
#[derive(Debug, Clone, Copy)]
#[must_use = "a started span should be ended; dropping the scope ends it implicitly"]
pub struct SpanHandle {
    /// The started span's id (null when the scope is disabled).
    pub id: SpanId,
    /// Stack depth of the span (its index + 1); `end` pops to here.
    depth: usize,
}

/// The live state of an enabled scope.
pub(crate) struct ScopeState<'a> {
    pub(crate) telemetry: &'a Telemetry,
    pub(crate) clock: &'a dyn Clock,
    /// Added to this scope's clock readings to land them on the sink
    /// timeline (sink elapsed minus clock reading, sampled once at
    /// scope creation).
    pub(crate) offset_us: i64,
    pub(crate) track: u64,
    pub(crate) parent: Option<u64>,
    stack: Vec<OpenSpan>,
}

/// A per-thread span emitter over an explicit [`Clock`].
///
/// Created by [`Telemetry::scope`] (caller's clock, aligned onto the
/// sink timeline) or [`Telemetry::timeline_scope`] (the sink's own
/// monotonic clock). A scope created from a disabled [`Telemetry`] is
/// a no-op: `start`/`end` never read the clock and never allocate.
///
/// Dropping a scope ends any spans still open in it.
pub struct SpanScope<'a> {
    pub(crate) state: Option<ScopeState<'a>>,
}

impl<'a> SpanScope<'a> {
    pub(crate) fn new(
        telemetry: &'a Telemetry,
        clock: &'a dyn Clock,
        offset_us: i64,
        track: u64,
        parent: Option<SpanId>,
    ) -> Self {
        SpanScope {
            state: Some(ScopeState {
                telemetry,
                clock,
                offset_us,
                track,
                parent: parent.filter(SpanId::is_recorded).map(|p| p.0),
                stack: Vec::new(),
            }),
        }
    }

    pub(crate) fn disabled() -> Self {
        SpanScope { state: None }
    }

    /// Whether this scope records anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// The innermost open span, if any — the parent a sibling scope
    /// (e.g. a worker thread) should nest under.
    pub fn current(&self) -> Option<SpanId> {
        let state = self.state.as_ref()?;
        state.stack.last().map(|s| SpanId(s.id)).or(state.parent.map(SpanId))
    }

    /// Opens a span nested under the innermost open span (or the
    /// scope's parent). Returns a handle for [`SpanScope::end`].
    pub fn start(&mut self, layer: &'static str, name: &str) -> SpanHandle {
        self.start_with(layer, name, Map::new)
    }

    /// Like [`SpanScope::start`], with annotations. `args` is a closure
    /// so a disabled scope never evaluates (or allocates) them.
    pub fn start_with(
        &mut self,
        layer: &'static str,
        name: &str,
        args: impl FnOnce() -> Map,
    ) -> SpanHandle {
        let Some(state) = self.state.as_mut() else {
            return SpanHandle { id: SpanId(0), depth: 0 };
        };
        let now_us = scope_now_us(state.clock, state.offset_us);
        let id = state.telemetry.allocate_span_id();
        let parent = state.stack.last().map(|s| s.id).or(state.parent);
        state.stack.push(OpenSpan {
            id,
            parent,
            layer,
            name: name.to_string(),
            start_us: now_us,
            args: args(),
        });
        SpanHandle { id: SpanId(id), depth: state.stack.len() }
    }

    /// Ends the span behind `handle` (and any still-open spans nested
    /// inside it, innermost first), recording it into the sink.
    pub fn end(&mut self, handle: SpanHandle) {
        self.end_with(handle, Map::new)
    }

    /// Like [`SpanScope::end`], merging extra annotations into the
    /// ended span. `args` is a closure so a disabled scope never
    /// evaluates them.
    pub fn end_with(&mut self, handle: SpanHandle, args: impl FnOnce() -> Map) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        if handle.depth == 0 || state.stack.len() < handle.depth {
            return; // handle from another scope generation; ignore
        }
        let now_us = scope_now_us(state.clock, state.offset_us);
        let mut extra = Some(args());
        while state.stack.len() >= handle.depth {
            let open = state.stack.pop().expect("stack length checked");
            let mut record_args = open.args;
            if state.stack.len() + 1 == handle.depth {
                // This is the span the handle names; merge its args.
                record_args.extend(extra.take().expect("extra args taken once"));
            }
            state.telemetry.record_span(SpanRecord {
                id: open.id,
                parent: open.parent,
                track: state.track,
                layer: open.layer.to_string(),
                name: open.name,
                start_us: open.start_us,
                end_us: now_us.max(open.start_us),
                args: record_args,
            });
        }
    }

    /// Records an instant event under the innermost open span (or the
    /// scope's parent) — a point on the timeline, not an interval.
    pub fn event(&mut self, layer: &'static str, name: &str) {
        self.event_with(layer, name, Map::new)
    }

    /// Like [`SpanScope::event`], with annotations. `args` is a closure
    /// so a disabled scope never evaluates (or allocates) them.
    pub fn event_with(&mut self, layer: &'static str, name: &str, args: impl FnOnce() -> Map) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        let ts_us = scope_now_us(state.clock, state.offset_us);
        let id = state.telemetry.allocate_span_id();
        let parent = state.stack.last().map(|s| s.id).or(state.parent);
        state.telemetry.record_event(EventRecord {
            id,
            parent,
            track: state.track,
            layer: layer.to_string(),
            name: name.to_string(),
            ts_us,
            args: args(),
        });
    }

    /// Convenience: times `f` inside a span.
    pub fn record<R>(&mut self, layer: &'static str, name: &str, f: impl FnOnce() -> R) -> R {
        let handle = self.start(layer, name);
        let out = f();
        self.end(handle);
        out
    }
}

impl Drop for SpanScope<'_> {
    fn drop(&mut self) {
        let open = self.state.as_ref().is_some_and(|s| !s.stack.is_empty());
        if open {
            self.end(SpanHandle { id: SpanId(0), depth: 1 });
        }
    }
}

/// The current time on the sink timeline for a scope's clock.
fn scope_now_us(clock: &dyn Clock, offset_us: i64) -> u64 {
    (clock.now().as_micros() as i64 + offset_us).max(0) as u64
}

/// One `(key, value)` entry for a span args [`Map`] — sugar for
/// `Map::from([arg("epoch", json!(3))])` at instrumentation sites.
pub fn arg(key: &str, value: Value) -> (String, Value) {
    (key.to_string(), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use serde_json::json;
    use std::cell::Cell;
    use std::time::Duration;

    /// A scriptable clock for deterministic span tests.
    struct TestClock(Cell<u64>);
    impl TestClock {
        fn new() -> Self {
            TestClock(Cell::new(0))
        }
        fn advance_us(&self, us: u64) {
            self.0.set(self.0.get() + us);
        }
    }
    impl Clock for TestClock {
        fn now(&self) -> Duration {
            Duration::from_micros(self.0.get())
        }
    }

    #[test]
    fn spans_nest_under_the_innermost_open_span() {
        let telemetry = Telemetry::recording();
        let clock = TestClock::new();
        let mut scope = telemetry.scope(&clock);
        let outer = scope.start("test", "outer");
        clock.advance_us(10);
        let inner = scope.start("test", "inner");
        clock.advance_us(5);
        scope.end(inner);
        clock.advance_us(10);
        scope.end(outer);

        let spans = telemetry.snapshot().spans;
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.duration_us(), 5);
        assert_eq!(outer.duration_us(), 25);
        assert!(outer.start_us <= inner.start_us && inner.end_us <= outer.end_us);
    }

    #[test]
    fn ending_a_span_closes_forgotten_children() {
        let telemetry = Telemetry::recording();
        let clock = TestClock::new();
        let mut scope = telemetry.scope(&clock);
        let outer = scope.start("test", "outer");
        let _forgotten = scope.start("test", "forgotten");
        clock.advance_us(7);
        scope.end(outer);
        let spans = telemetry.snapshot().spans;
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.end_us - s.start_us == 7));
    }

    #[test]
    fn dropping_a_scope_closes_open_spans() {
        let telemetry = Telemetry::recording();
        let clock = TestClock::new();
        {
            let mut scope = telemetry.scope(&clock);
            let _open = scope.start("test", "open");
            clock.advance_us(3);
        }
        let spans = telemetry.snapshot().spans;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration_us(), 3);
    }

    #[test]
    fn explicit_parent_links_scopes_across_threads() {
        let telemetry = Telemetry::recording();
        let clock = TestClock::new();
        let mut scope = telemetry.scope(&clock);
        let root = scope.start("test", "root");
        let parent = scope.current();
        assert_eq!(parent, Some(root.id));

        let worker_clock = TestClock::new();
        let mut worker = telemetry.scope_under(&worker_clock, parent);
        let item = worker.start("test", "item");
        worker_clock.advance_us(2);
        worker.end(item);
        drop(worker);
        scope.end(root);

        let spans = telemetry.snapshot().spans;
        let item = spans.iter().find(|s| s.name == "item").unwrap();
        assert_eq!(item.parent, Some(root.id.0));
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_ne!(item.track, root.track, "each scope gets its own track");
    }

    #[test]
    fn start_and_end_args_are_merged() {
        let telemetry = Telemetry::recording();
        let clock = TestClock::new();
        let mut scope = telemetry.scope(&clock);
        let h = scope.start_with("test", "annotated", || {
            Map::from([arg("epoch", json!(3)), arg("phase", json!("train"))])
        });
        scope.end_with(h, || Map::from([arg("quality", json!(0.75))]));
        let spans = telemetry.snapshot().spans;
        assert_eq!(spans[0].args.get("epoch"), Some(&json!(3)));
        assert_eq!(spans[0].args.get("quality"), Some(&json!(0.75)));
    }

    #[test]
    fn disabled_scope_records_nothing_and_never_reads_the_clock() {
        /// A clock that panics when read: proves the disabled path
        /// never samples time.
        struct PanicClock;
        impl Clock for PanicClock {
            fn now(&self) -> Duration {
                panic!("disabled telemetry must not read the clock")
            }
        }
        let telemetry = Telemetry::disabled();
        let mut scope = telemetry.scope(&PanicClock);
        assert!(!scope.is_enabled());
        let h = scope.start_with("test", "nothing", || panic!("args must not be evaluated"));
        assert!(!h.id.is_recorded());
        scope.end_with(h, || panic!("args must not be evaluated"));
        scope.event_with("test", "nothing", || panic!("args must not be evaluated"));
        assert!(telemetry.snapshot().spans.is_empty());
        assert!(telemetry.snapshot().events.is_empty());
    }

    #[test]
    fn events_record_a_point_under_the_open_span() {
        let telemetry = Telemetry::recording();
        let clock = TestClock::new();
        let mut scope = telemetry.scope(&clock);
        let outer = scope.start("test", "review");
        clock.advance_us(4);
        scope.event_with("test", "quarantine", || Map::from([arg("org", json!("Borealis"))]));
        clock.advance_us(4);
        scope.end(outer);

        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.events.len(), 1);
        let event = &snapshot.events[0];
        let span = &snapshot.spans[0];
        assert_eq!(event.name, "quarantine");
        assert_eq!(event.parent, Some(span.id), "event nests under the open span");
        assert!(span.start_us <= event.ts_us && event.ts_us <= span.end_us);
        assert_eq!(event.args.get("org"), Some(&json!("Borealis")));
    }

    #[test]
    fn top_level_events_have_no_parent() {
        let telemetry = Telemetry::recording();
        let clock = TestClock::new();
        let mut scope = telemetry.scope(&clock);
        scope.event("test", "lone");
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.events[0].parent, None);
    }

    #[test]
    fn sink_aligns_scopes_with_different_clock_origins() {
        let telemetry = Telemetry::recording();
        let early = TestClock::new();
        let late = TestClock::new();
        late.advance_us(1_000_000); // origin skewed by a full second
        let mut a = telemetry.scope(&early);
        let mut b = telemetry.scope(&late);
        let ha = a.start("test", "a");
        let hb = b.start("test", "b");
        a.end(ha);
        b.end(hb);
        let spans = telemetry.snapshot().spans;
        let (sa, sb) = (&spans[0], &spans[1]);
        // Both scopes were created at (nearly) the same sink instant,
        // so despite the 1s clock skew the aligned timestamps agree to
        // well under that.
        let diff = sa.start_us.abs_diff(sb.start_us);
        assert!(diff < 100_000, "alignment failed: {diff}µs apart");
    }
}
