//! Chrome `trace_event` export: one JSON object per line.
//!
//! Every span becomes a complete (`"ph": "X"`) event and every metric a
//! counter (`"ph": "C"`) event, so the file loads directly in
//! `chrome://tracing` / Perfetto (both accept concatenated JSON
//! events) while staying trivially greppable and parseable line by
//! line. The file is written atomically — tmp file then rename — the
//! same discipline the round archive uses for its manifests, so a
//! crashed writer never leaves a truncated trace next to the archive.

use crate::snapshot::TelemetrySnapshot;
use serde_json::{json, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a trace file could not be written.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWriteError {
    /// The path being written.
    pub path: PathBuf,
    /// The OS error text.
    pub error: String,
}

impl fmt::Display for TraceWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.error)
    }
}

impl std::error::Error for TraceWriteError {}

/// The Chrome `trace_event` objects for a snapshot: metadata
/// (`"ph": "M"`) events naming the process and every span track, then
/// one complete-span event per span (chronological), one instant
/// (`"ph": "i"`) event per recorded [`crate::EventRecord`], then one
/// counter event per metric. The metadata makes `chrome://tracing` /
/// Perfetto label lanes with the emitting layer instead of bare track
/// ids.
pub fn trace_events(snapshot: &TelemetrySnapshot) -> Vec<Value> {
    let mut events = Vec::new();
    if !snapshot.is_empty() {
        events.push(json!({
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "ts": 0,
            "args": {"name": "mlperf-suite"},
        }));
        // One thread_name per track, labeled with the first layer seen
        // there (snapshot order = start order, so "first" is stable).
        let mut tracks: std::collections::BTreeMap<u64, &str> = std::collections::BTreeMap::new();
        for span in &snapshot.spans {
            tracks.entry(span.track).or_insert(&span.layer);
        }
        for event in &snapshot.events {
            tracks.entry(event.track).or_insert(&event.layer);
        }
        let has_metrics = !snapshot.counters.is_empty()
            || !snapshot.gauges.is_empty()
            || !snapshot.histograms.is_empty();
        if has_metrics {
            tracks.entry(0).or_insert("metrics");
        }
        for (track, layer) in tracks {
            let label =
                if track == 0 { layer.to_string() } else { format!("{layer} (track {track})") };
            events.push(json!({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": track,
                "ts": 0,
                "args": {"name": label},
            }));
        }
    }
    let last_ts = snapshot
        .spans
        .iter()
        .map(|s| s.end_us)
        .chain(snapshot.events.iter().map(|e| e.ts_us))
        .max()
        .unwrap_or(0);
    for span in &snapshot.spans {
        let mut args = span.args.clone();
        args.insert("span_id".to_string(), json!(span.id));
        if let Some(parent) = span.parent {
            args.insert("parent_id".to_string(), json!(parent));
        }
        events.push(json!({
            "name": span.name,
            "cat": span.layer,
            "ph": "X",
            "pid": 1,
            "tid": span.track,
            "ts": span.start_us,
            "dur": span.duration_us(),
            "args": Value::Object(args),
        }));
    }
    for instant in &snapshot.events {
        let mut args = instant.args.clone();
        args.insert("event_id".to_string(), json!(instant.id));
        if let Some(parent) = instant.parent {
            args.insert("parent_id".to_string(), json!(parent));
        }
        events.push(json!({
            "name": instant.name,
            "cat": instant.layer,
            "ph": "i",
            // Thread scope: the tick renders on the emitting track only.
            "s": "t",
            "pid": 1,
            "tid": instant.track,
            "ts": instant.ts_us,
            "args": Value::Object(args),
        }));
    }
    for counter in &snapshot.counters {
        events.push(json!({
            "name": counter.name,
            "cat": "metric",
            "ph": "C",
            "pid": 1,
            "tid": 0,
            "ts": last_ts,
            "args": {"value": counter.value},
        }));
    }
    for gauge in &snapshot.gauges {
        events.push(json!({
            "name": gauge.name,
            "cat": "metric",
            "ph": "C",
            "pid": 1,
            "tid": 0,
            "ts": last_ts,
            "args": {"value": gauge.value},
        }));
    }
    for histogram in &snapshot.histograms {
        let mut args = serde_json::Map::new();
        args.insert("count".to_string(), json!(histogram.count));
        args.insert("sum".to_string(), json!(histogram.sum));
        for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
            args.insert(format!("le_{bound}"), json!(*count));
        }
        args.insert("le_inf".to_string(), json!(histogram.counts.last().copied().unwrap_or(0)));
        events.push(json!({
            "name": histogram.name,
            "cat": "metric",
            "ph": "C",
            "pid": 1,
            "tid": 0,
            "ts": last_ts,
            "args": Value::Object(args),
        }));
    }
    events
}

/// Renders a snapshot as JSON-lines trace text (one event per line,
/// trailing newline when non-empty).
pub fn render_trace(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for event in trace_events(snapshot) {
        out.push_str(&serde_json::to_string(&event).expect("trace events serialize"));
        out.push('\n');
    }
    out
}

/// Writes the snapshot's trace to `path` atomically (sibling tmp file,
/// then rename), so readers never observe a half-written trace.
///
/// # Errors
///
/// [`TraceWriteError`] when the tmp file cannot be written or renamed.
pub fn write_trace(snapshot: &TelemetrySnapshot, path: &Path) -> Result<(), TraceWriteError> {
    let contents = render_trace(snapshot);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    let err = |p: &Path, e: &std::io::Error| TraceWriteError {
        path: p.to_path_buf(),
        error: e.to_string(),
    };
    std::fs::write(&tmp, &contents).map_err(|e| err(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| err(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MonotonicClock;
    use crate::Telemetry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let telemetry = Telemetry::recording();
        let clock = MonotonicClock::new();
        let mut scope = telemetry.scope(&clock);
        let outer = scope.start("test", "outer");
        let inner = scope.start("test", "inner");
        scope.end(inner);
        scope.end(outer);
        telemetry.counter("events").add(2);
        telemetry.gauge("workers").set(4);
        telemetry.histogram("sizes", &[1.0, 8.0]).observe(3.0);
        telemetry.snapshot()
    }

    #[test]
    fn events_carry_chrome_trace_fields() {
        let events = trace_events(&sample_snapshot());
        // process_name + span-track thread_name + metrics thread_name,
        // then two spans and three metrics.
        assert_eq!(events.len(), 3 + 2 + 3);
        for event in &events {
            assert!(event.get("name").is_some());
            assert!(event.get("ph").is_some());
            assert!(event.get("ts").is_some());
            assert_eq!(event["pid"], json!(1));
        }
        let span = events.iter().find(|e| e["ph"] == json!("X")).unwrap();
        assert!(span.get("dur").is_some());
        let counter = events.iter().find(|e| e["name"] == json!("events")).unwrap();
        assert_eq!(counter["ph"], json!("C"));
        assert_eq!(counter["args"]["value"], json!(2));
    }

    #[test]
    fn metadata_events_label_process_and_tracks() {
        let events = trace_events(&sample_snapshot());
        assert_eq!(events[0]["name"], json!("process_name"));
        assert_eq!(events[0]["ph"], json!("M"));
        assert_eq!(events[0]["args"]["name"], json!("mlperf-suite"));
        let span = events.iter().find(|e| e["ph"] == json!("X")).unwrap();
        let lane = events
            .iter()
            .find(|e| e["name"] == json!("thread_name") && e["tid"] == span["tid"])
            .expect("the span's track is labeled");
        assert_eq!(lane["ph"], json!("M"));
        let label = lane["args"]["name"].as_str().unwrap();
        assert!(label.starts_with("test"), "lane named after the layer: {label}");
        let metrics_lane = events
            .iter()
            .find(|e| e["name"] == json!("thread_name") && e["tid"] == json!(0))
            .expect("the metrics lane is labeled");
        assert_eq!(metrics_lane["args"]["name"], json!("metrics"));
    }

    #[test]
    fn child_events_name_their_parent() {
        let events = trace_events(&sample_snapshot());
        let inner = events.iter().find(|e| e["name"] == json!("inner")).unwrap();
        let outer = events.iter().find(|e| e["name"] == json!("outer")).unwrap();
        assert_eq!(inner["args"]["parent_id"], outer["args"]["span_id"]);
        assert!(outer["args"].get("parent_id").is_none());
    }

    #[test]
    fn histogram_event_flattens_buckets() {
        let events = trace_events(&sample_snapshot());
        let hist = events.iter().find(|e| e["name"] == json!("sizes")).unwrap();
        assert_eq!(hist["args"]["count"], json!(1));
        assert_eq!(hist["args"]["le_8"], json!(1));
        assert_eq!(hist["args"]["le_inf"], json!(0));
    }

    #[test]
    fn rendered_trace_is_valid_json_lines() {
        let text = render_trace(&sample_snapshot());
        assert!(text.ends_with('\n'));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8, "3 metadata + 2 spans + 3 metrics");
        for line in lines {
            let value: Value = serde_json::from_str(line).expect("every line parses alone");
            assert!(value.as_object().is_some());
        }
    }

    #[test]
    fn write_trace_lands_atomically() {
        let dir =
            std::env::temp_dir().join(format!("mlperf-telemetry-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.trace");
        let snapshot = sample_snapshot();
        write_trace(&snapshot, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, render_trace(&snapshot));
        assert!(!dir.join(".out.trace.tmp").exists(), "tmp file renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn instant_events_render_as_chrome_instants() {
        use crate::arg;
        use serde_json::Map;
        let telemetry = Telemetry::recording();
        let clock = MonotonicClock::new();
        let mut scope = telemetry.scope(&clock);
        let review = scope.start("ingest", "review");
        scope.event_with("ingest", "quarantine", || Map::from([arg("org", json!("Borealis"))]));
        scope.end(review);

        let events = trace_events(&telemetry.snapshot());
        let instant = events.iter().find(|e| e["ph"] == json!("i")).unwrap();
        assert_eq!(instant["name"], json!("quarantine"));
        assert_eq!(instant["cat"], json!("ingest"));
        assert_eq!(instant["s"], json!("t"), "instants are thread-scoped ticks");
        assert_eq!(instant["args"]["org"], json!("Borealis"));
        let span = events.iter().find(|e| e["name"] == json!("review")).unwrap();
        assert_eq!(instant["args"]["parent_id"], span["args"]["span_id"]);
        assert_eq!(instant["tid"], span["tid"], "the tick lands on the emitting track");
    }

    #[test]
    fn empty_snapshot_renders_empty_trace() {
        assert_eq!(render_trace(&Telemetry::disabled().snapshot()), "");
    }
}
