//! Windowed time-series: ring buffers of `(timestamp, value)` samples
//! that turn cumulative counters into rates over time.
//!
//! A [`TimeSeries`] is registered by name like any other metric and
//! holds a fixed-capacity ring of [`SeriesSample`]s — memory is bounded
//! by construction (`capacity` samples; the oldest fall off and are
//! counted in `dropped`). Series of [`SeriesKind::Counter`] store the
//! *cumulative* counter reading at each sample, so the deltas of
//! consecutive samples telescope: however increments interleave with
//! sampling, the window deltas always sum to `last − first` with
//! nothing lost or double-counted. [`SeriesKind::Gauge`] series store
//! instantaneous readings (worker-pool occupancy, queue depth).
//!
//! A [`Reporter`] owns the sampling cadence: it is configured with
//! sources (counter handles, gauge handles, or plain closures for
//! stats that live outside the registry, like `mlperf-pool`'s global
//! worker gauges), creates one series per source, and samples them all
//! on each tick. Ticks are clock-driven and explicit —
//! [`Reporter::maybe_tick`] from any clock (tests drive it from a
//! simulated clock), or [`crate::Telemetry::pulse`] which ticks the
//! reporter installed in the sink from the sink's own monotonic clock.
//! Instrumented loops call `pulse()` once per item; the reporter turns
//! that into interval-spaced samples and (optionally) a live progress
//! line on stderr.

use crate::metrics::{Counter, Gauge};
use crate::Telemetry;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default ring capacity for reporter-created series.
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// What a series' samples mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Samples are cumulative counter readings; consumers look at
    /// window deltas and rates.
    Counter,
    /// Samples are instantaneous readings; consumers look at last and
    /// peak values.
    Gauge,
}

/// One `(timestamp, value)` sample on the sink timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSample {
    /// Microseconds since the sink's clock origin.
    pub t_us: u64,
    /// Cumulative or instantaneous reading, per [`SeriesKind`].
    pub value: f64,
}

#[derive(Debug)]
struct SeriesState {
    samples: VecDeque<SeriesSample>,
    dropped: u64,
}

/// Shared storage behind a registered [`TimeSeries`] handle.
#[derive(Debug)]
pub(crate) struct TimeSeriesCore {
    pub(crate) kind: SeriesKind,
    capacity: usize,
    state: Mutex<SeriesState>,
}

impl TimeSeriesCore {
    pub(crate) fn new(kind: SeriesKind, capacity: usize) -> Self {
        TimeSeriesCore {
            kind,
            capacity: capacity.max(2),
            state: Mutex::new(SeriesState { samples: VecDeque::new(), dropped: 0 }),
        }
    }

    pub(crate) fn snapshot(&self, name: &str) -> TimeSeriesSnapshot {
        let state = self.state.lock().expect("series poisoned");
        TimeSeriesSnapshot {
            name: name.to_string(),
            kind: self.kind,
            samples: state.samples.iter().copied().collect(),
            dropped: state.dropped,
        }
    }
}

/// A registry-backed time-series handle (clones share the ring).
#[derive(Debug, Clone)]
pub struct TimeSeries(pub(crate) Option<Arc<TimeSeriesCore>>);

impl TimeSeries {
    /// A no-op series (what a disabled registry hands out).
    pub fn disabled() -> Self {
        TimeSeries(None)
    }

    /// Appends a sample at `t` on the sink timeline, evicting the
    /// oldest sample when the ring is full. No-op when disabled.
    pub fn push(&self, t: Duration, value: f64) {
        let Some(core) = &self.0 else {
            return;
        };
        let mut state = core.state.lock().expect("series poisoned");
        if state.samples.len() == core.capacity {
            state.samples.pop_front();
            state.dropped += 1;
        }
        state.samples.push_back(SeriesSample { t_us: t.as_micros() as u64, value });
    }
}

/// One closed sampling window: the interval between two consecutive
/// samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start, microseconds on the sink timeline.
    pub start_us: u64,
    /// Window end, microseconds on the sink timeline.
    pub end_us: u64,
    /// `value(end) − value(start)`.
    pub delta: f64,
    /// `delta` per second of window (counter series); gauges carry the
    /// end-of-window reading change like any other delta.
    pub rate_per_sec: f64,
}

/// A series' retained samples at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSnapshot {
    /// Registered name.
    pub name: String,
    /// What the samples mean.
    pub kind: SeriesKind,
    /// Retained samples, oldest first.
    pub samples: Vec<SeriesSample>,
    /// Samples evicted because the ring was full.
    pub dropped: u64,
}

impl TimeSeriesSnapshot {
    /// The closed windows between consecutive retained samples.
    pub fn windows(&self) -> Vec<Window> {
        self.samples
            .windows(2)
            .map(|pair| {
                let delta = pair[1].value - pair[0].value;
                let dt_us = pair[1].t_us.saturating_sub(pair[0].t_us).max(1);
                Window {
                    start_us: pair[0].t_us,
                    end_us: pair[1].t_us,
                    delta,
                    rate_per_sec: delta * 1e6 / dt_us as f64,
                }
            })
            .collect()
    }

    /// The newest sample.
    pub fn last(&self) -> Option<SeriesSample> {
        self.samples.last().copied()
    }

    /// Largest retained sample value (how `pool.workers_busy` peaks
    /// survive to the end of a run).
    pub fn peak(&self) -> Option<f64> {
        self.samples.iter().map(|s| s.value).reduce(f64::max)
    }

    /// Mean rate across all retained samples: `(last − first) /
    /// elapsed`. For counter series this is the overall throughput of
    /// the retained window; `None` with fewer than two samples.
    pub fn mean_rate_per_sec(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let (first, last) = (self.samples.first()?, self.samples.last()?);
        let dt_us = last.t_us.saturating_sub(first.t_us).max(1);
        Some((last.value - first.value) * 1e6 / dt_us as f64)
    }
}

/// How a [`Reporter`] reads one source on each tick.
enum Reading {
    Counter(Counter),
    Gauge(Gauge),
    Fn(Box<dyn Fn() -> f64 + Send>),
}

impl std::fmt::Debug for Reading {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reading::Counter(_) => f.write_str("Counter"),
            Reading::Gauge(_) => f.write_str("Gauge"),
            Reading::Fn(_) => f.write_str("Fn"),
        }
    }
}

#[derive(Debug)]
struct Source {
    name: String,
    kind: SeriesKind,
    series: TimeSeries,
    read: Reading,
    /// Reading at the previous tick (for progress-line rates).
    last_value: f64,
}

struct Progress {
    label: String,
    emit: Box<dyn Fn(&str) + Send>,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress").field("label", &self.label).finish_non_exhaustive()
    }
}

/// Samples a set of sources into time-series on a fixed interval (see
/// module docs). Drive it directly with [`Reporter::maybe_tick`] /
/// [`Reporter::tick`], or install it into a recording
/// [`crate::Telemetry`] and let instrumented loops drive it through
/// [`crate::Telemetry::pulse`].
#[derive(Debug)]
pub struct Reporter {
    interval: Duration,
    capacity: usize,
    next_due: Option<Duration>,
    last_tick: Option<Duration>,
    sources: Vec<Source>,
    progress: Option<Progress>,
}

impl Reporter {
    /// A reporter sampling every `interval` (the first
    /// `maybe_tick`/`tick` always samples, establishing the baseline).
    pub fn new(interval: Duration) -> Self {
        Reporter {
            interval,
            capacity: DEFAULT_SERIES_CAPACITY,
            next_due: None,
            last_tick: None,
            sources: Vec::new(),
            progress: None,
        }
    }

    /// Ring capacity for series created by *subsequent* `track_*`
    /// calls.
    pub fn with_series_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Emit a progress line (stderr by default) on every interval
    /// tick: `[label] +12.3s name 1234 (96.1/s) ...`.
    pub fn with_progress(mut self, label: &str) -> Self {
        self.progress =
            Some(Progress { label: label.to_string(), emit: Box::new(|line| eprintln!("{line}")) });
        self
    }

    /// Replaces the progress emitter (tests capture lines with this).
    pub fn with_progress_emitter(mut self, emit: impl Fn(&str) + Send + 'static) -> Self {
        if let Some(progress) = &mut self.progress {
            progress.emit = Box::new(emit);
        }
        self
    }

    /// Samples `counter` into a counter-kind series named `name`.
    pub fn track_counter(&mut self, telemetry: &Telemetry, name: &str, counter: Counter) {
        self.track(telemetry, name, SeriesKind::Counter, Reading::Counter(counter));
    }

    /// Samples `gauge` into a gauge-kind series named `name`.
    pub fn track_gauge(&mut self, telemetry: &Telemetry, name: &str, gauge: Gauge) {
        self.track(telemetry, name, SeriesKind::Gauge, Reading::Gauge(gauge));
    }

    /// Samples `read()` into a counter-kind series — the bridge for
    /// cumulative stats living outside the registry (e.g.
    /// `mlperf-pool`'s completed-item count). `read` must not call
    /// back into telemetry.
    pub fn track_counter_fn(
        &mut self,
        telemetry: &Telemetry,
        name: &str,
        read: impl Fn() -> f64 + Send + 'static,
    ) {
        self.track(telemetry, name, SeriesKind::Counter, Reading::Fn(Box::new(read)));
    }

    /// Samples `read()` into a gauge-kind series (worker occupancy,
    /// queue depth). `read` must not call back into telemetry.
    pub fn track_gauge_fn(
        &mut self,
        telemetry: &Telemetry,
        name: &str,
        read: impl Fn() -> f64 + Send + 'static,
    ) {
        self.track(telemetry, name, SeriesKind::Gauge, Reading::Fn(Box::new(read)));
    }

    fn track(&mut self, telemetry: &Telemetry, name: &str, kind: SeriesKind, read: Reading) {
        let series = telemetry.time_series_with_capacity(name, kind, self.capacity);
        self.sources.push(Source { name: name.to_string(), kind, series, read, last_value: 0.0 });
    }

    /// Number of configured sources.
    pub fn source_len(&self) -> usize {
        self.sources.len()
    }

    /// Samples every source if the interval has elapsed since the last
    /// tick (the very first call always samples). Returns whether a
    /// sample was taken.
    pub fn maybe_tick(&mut self, now: Duration) -> bool {
        match self.next_due {
            Some(due) if now < due => false,
            _ => {
                self.tick(now);
                true
            }
        }
    }

    /// Samples every source unconditionally — the final flush before a
    /// snapshot takes one of these so even a sub-interval run closes a
    /// window.
    pub fn tick(&mut self, now: Duration) {
        let dt = self.last_tick.map(|last| now.saturating_sub(last));
        let mut line = String::new();
        for source in &mut self.sources {
            let value = match &source.read {
                Reading::Counter(counter) => counter.value() as f64,
                Reading::Gauge(gauge) => gauge.value() as f64,
                Reading::Fn(read) => read(),
            };
            source.series.push(now, value);
            if self.progress.is_some() {
                match source.kind {
                    SeriesKind::Counter => {
                        let rate = match dt {
                            Some(dt) if !dt.is_zero() => {
                                (value - source.last_value) / dt.as_secs_f64()
                            }
                            _ => 0.0,
                        };
                        let _ = write!(line, "  {} {value:.0} ({rate:.1}/s)", source.name);
                    }
                    SeriesKind::Gauge => {
                        let _ = write!(line, "  {} {value:.0}", source.name);
                    }
                }
            }
            source.last_value = value;
        }
        if let Some(progress) = &self.progress {
            // The baseline tick (no previous tick) stays silent: every
            // reading is zero and the line would only be noise.
            if self.last_tick.is_some() {
                (progress.emit)(&format!("[{}] +{:.1}s{line}", progress.label, now.as_secs_f64()));
            }
        }
        self.last_tick = Some(now);
        self.next_due = Some(now + self.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let core = Arc::new(TimeSeriesCore::new(SeriesKind::Gauge, 3));
        let series = TimeSeries(Some(Arc::clone(&core)));
        for i in 0..5u64 {
            series.push(Duration::from_micros(i * 10), i as f64);
        }
        let snap = core.snapshot("g");
        assert_eq!(snap.dropped, 2);
        assert_eq!(
            snap.samples,
            vec![
                SeriesSample { t_us: 20, value: 2.0 },
                SeriesSample { t_us: 30, value: 3.0 },
                SeriesSample { t_us: 40, value: 4.0 },
            ]
        );
        assert_eq!(snap.peak(), Some(4.0));
        assert_eq!(snap.last(), Some(SeriesSample { t_us: 40, value: 4.0 }));
    }

    #[test]
    fn windows_carry_deltas_and_rates() {
        let core = Arc::new(TimeSeriesCore::new(SeriesKind::Counter, 8));
        let series = TimeSeries(Some(Arc::clone(&core)));
        series.push(Duration::from_secs(0), 0.0);
        series.push(Duration::from_secs(1), 100.0);
        series.push(Duration::from_secs(3), 150.0);
        let snap = core.snapshot("c");
        let windows = snap.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].delta, 100.0);
        assert!((windows[0].rate_per_sec - 100.0).abs() < 1e-9);
        assert_eq!(windows[1].delta, 50.0);
        assert!((windows[1].rate_per_sec - 25.0).abs() < 1e-9);
        assert!((snap.mean_rate_per_sec().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn reporter_respects_the_interval() {
        let telemetry = Telemetry::recording();
        let counter = telemetry.counter("work");
        let mut reporter = Reporter::new(Duration::from_millis(100));
        reporter.track_counter(&telemetry, "work", counter.clone());
        assert!(reporter.maybe_tick(Duration::from_millis(0)), "first tick is the baseline");
        counter.add(10);
        assert!(!reporter.maybe_tick(Duration::from_millis(50)), "not due yet");
        assert!(reporter.maybe_tick(Duration::from_millis(100)));
        counter.add(5);
        reporter.tick(Duration::from_millis(120)); // unconditional flush
        let snap = telemetry.snapshot();
        let series = snap.series.iter().find(|s| s.name == "work").unwrap();
        let values: Vec<f64> = series.samples.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![0.0, 10.0, 15.0]);
        let deltas: f64 = series.windows().iter().map(|w| w.delta).sum();
        assert_eq!(deltas as u64, counter.value());
    }

    #[test]
    fn progress_lines_report_rates_after_the_baseline() {
        let telemetry = Telemetry::recording();
        let counter = telemetry.counter("ingest.bundles");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        let mut reporter = Reporter::new(Duration::from_secs(1))
            .with_progress("ingest")
            .with_progress_emitter(move |line| sink.lock().unwrap().push(line.to_string()));
        reporter.track_counter(&telemetry, "ingest.bundles", counter.clone());
        reporter.tick(Duration::from_secs(0));
        counter.add(250);
        reporter.tick(Duration::from_secs(2));
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1, "baseline tick is silent");
        assert!(lines[0].starts_with("[ingest] +2.0s"), "line: {}", lines[0]);
        assert!(lines[0].contains("ingest.bundles 250 (125.0/s)"), "line: {}", lines[0]);
    }

    #[test]
    fn disabled_series_is_inert() {
        let series = TimeSeries::disabled();
        series.push(Duration::from_secs(1), 1.0);
        assert!(series.0.is_none());
    }
}
