//! The metrics registry: monotonic counters, last-value gauges, and
//! fixed-bucket histograms.
//!
//! Registration (looking a metric up by name) takes a mutex on the
//! registry map — a cold path instrumentation sites hit once. The hot
//! path — `add`/`set`/`observe` — is lock-free: every handle is an
//! `Arc` around atomics, so the scoped worker pool can hammer one
//! counter from every core without serializing. Handles from a
//! disabled [`crate::Telemetry`] carry no storage at all; their hot
//! path is a no-op branch.

use crate::series::{SeriesKind, TimeSeries, TimeSeriesCore, TimeSeriesSnapshot};
use crate::sketch::{Sketch, SketchCore, SketchSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what a disabled registry hands out).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Adds `n` to the counter. Lock-free; no-op when disabled.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value gauge (e.g. worker-pool size, items claimed).
#[derive(Debug, Clone)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Sets the gauge. Lock-free; no-op when disabled.
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is higher than the current
    /// reading (a high-water mark).
    pub fn set_max(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// The current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared storage of one histogram: fixed upper-bound buckets plus an
/// overflow bucket, all atomics.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing. An observation `v`
    /// lands in the first bucket with `v <= bound`; larger values land
    /// in the overflow bucket.
    pub(crate) bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket
    /// (`counts.len() == bounds.len() + 1`).
    pub(crate) counts: Vec<AtomicU64>,
    /// Sum of all observations, stored as `f64` bits.
    pub(crate) sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|bound| value > *bound);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation: CAS the bit pattern.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A no-op histogram.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Records one observation. Lock-free; no-op when disabled.
    pub fn observe(&self, value: f64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// Records a duration in milliseconds.
    pub fn observe_duration_ms(&self, duration: std::time::Duration) {
        self.observe(duration.as_secs_f64() * 1e3);
    }
}

/// The name → handle maps behind a recording [`crate::Telemetry`].
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<HistogramCore>)>>,
    sketches: Mutex<Vec<(String, Arc<SketchCore>)>>,
    series: Mutex<Vec<(String, Arc<TimeSeriesCore>)>>,
}

fn intern<T>(slots: &Mutex<Vec<(String, Arc<T>)>>, name: &str, make: impl FnOnce() -> T) -> Arc<T> {
    let mut slots = slots.lock().expect("metrics registry poisoned");
    if let Some((_, existing)) = slots.iter().find(|(n, _)| n == name) {
        return Arc::clone(existing);
    }
    let created = Arc::new(make());
    slots.push((name.to_string(), Arc::clone(&created)));
    created
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        Counter(Some(intern(&self.counters, name, || AtomicU64::new(0))))
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        Gauge(Some(intern(&self.gauges, name, || AtomicU64::new(0))))
    }

    /// Registers (or re-fetches) a histogram. The first registration
    /// fixes the bucket bounds; later calls get the existing buckets
    /// regardless of the bounds they pass.
    pub(crate) fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        Histogram(Some(intern(&self.histograms, name, || HistogramCore::new(bounds))))
    }

    /// Registers (or re-fetches) a quantile sketch. The first
    /// registration fixes `alpha`.
    pub(crate) fn sketch(&self, name: &str, alpha: f64) -> Sketch {
        Sketch(Some(intern(&self.sketches, name, || SketchCore::new(alpha))))
    }

    /// Registers (or re-fetches) a time-series. The first registration
    /// fixes the kind and ring capacity.
    pub(crate) fn time_series(&self, name: &str, kind: SeriesKind, capacity: usize) -> TimeSeries {
        TimeSeries(Some(intern(&self.series, name, || TimeSeriesCore::new(kind, capacity))))
    }

    pub(crate) fn counter_snapshots(&self) -> Vec<CounterSnapshot> {
        let slots = self.counters.lock().expect("metrics registry poisoned");
        slots
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect()
    }

    pub(crate) fn gauge_snapshots(&self) -> Vec<GaugeSnapshot> {
        let slots = self.gauges.lock().expect("metrics registry poisoned");
        slots
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect()
    }

    pub(crate) fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        let slots = self.histograms.lock().expect("metrics registry poisoned");
        slots
            .iter()
            .map(|(name, core)| {
                let counts: Vec<u64> =
                    core.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
                HistogramSnapshot {
                    name: name.clone(),
                    bounds: core.bounds.clone(),
                    count: counts.iter().sum(),
                    sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                    counts,
                }
            })
            .collect()
    }

    pub(crate) fn sketch_snapshots(&self) -> Vec<SketchSnapshot> {
        let slots = self.sketches.lock().expect("metrics registry poisoned");
        slots
            .iter()
            .map(|(name, core)| {
                let sketch = core.sketch.lock().expect("sketch poisoned").clone();
                SketchSnapshot {
                    name: name.clone(),
                    count: sketch.count(),
                    sum: sketch.sum(),
                    sketch,
                }
            })
            .collect()
    }

    pub(crate) fn series_snapshots(&self) -> Vec<TimeSeriesSnapshot> {
        let slots = self.series.lock().expect("metrics registry poisoned");
        slots.iter().map(|(name, core)| core.snapshot(name)).collect()
    }
}

/// A counter's name and value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A gauge's name and value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Inclusive bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// One count per bound plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Bucket-interpolated `q`-quantile (`q` in `[0, 1]`), `None` when
    /// empty.
    ///
    /// Uses the nearest-rank rule (`rank = ceil(q·count)` clamped to
    /// `[1, count]`), finds the bucket holding that rank, and
    /// interpolates linearly through it. The first bucket interpolates
    /// from `min(0, bounds[0])` (observations *under* the first bound
    /// have no recorded lower edge); ranks landing in the overflow
    /// bucket clamp to the last bound, the largest value the histogram
    /// can attest to. Fixed-bucket quantiles are coarse — the quantile
    /// sketch is the precise tool — but they let existing histograms
    /// report approximate percentiles in text reports.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &bucket_count) in self.counts.iter().enumerate() {
            let before = cum;
            cum += bucket_count;
            if cum < rank {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: no upper edge to interpolate toward.
                return self.bounds.last().copied();
            };
            let lower = if i == 0 { upper.min(0.0) } else { self.bounds[i - 1] };
            let frac = (rank - before) as f64 / bucket_count as f64;
            return Some(lower + frac * (upper - lower));
        }
        self.bounds.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reread() {
        let registry = Registry::default();
        let a = registry.counter("ingest.logs");
        let again = registry.counter("ingest.logs");
        a.add(3);
        again.incr();
        assert_eq!(a.value(), 4, "both handles share storage");
        assert_eq!(
            registry.counter_snapshots(),
            vec![CounterSnapshot { name: "ingest.logs".into(), value: 4 }]
        );
    }

    #[test]
    fn gauges_keep_the_last_value_and_high_water_mark() {
        let registry = Registry::default();
        let g = registry.gauge("pool.workers");
        g.set(8);
        g.set(4);
        assert_eq!(g.value(), 4);
        g.set_max(2);
        assert_eq!(g.value(), 4);
        g.set_max(16);
        assert_eq!(g.value(), 16);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let registry = Registry::default();
        let h = registry.histogram("latency", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 10.0, 99.9, 100.0, 1000.0] {
            h.observe(v);
        }
        let snap = registry.histogram_snapshots().remove(0);
        assert_eq!(snap.counts, vec![2, 2, 2, 1], "le-1, le-10, le-100, overflow");
        assert_eq!(snap.count, 7);
        assert!((snap.sum - 1216.4).abs() < 1e-9);
        assert!((snap.mean().unwrap() - 1216.4 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        let registry = Registry::default();
        let h = registry.histogram("hot", &[10.0]);
        let c = registry.counter("hot.count");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (h, c) = (h.clone(), c.clone());
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe((i % 20) as f64);
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        let snap = registry.histogram_snapshots().remove(0);
        assert_eq!(snap.count, 8000);
        // Sum of 0..20 repeated: 8 threads × 50 reps × 190.
        assert!((snap.sum - 8.0 * 50.0 * 190.0).abs() < 1e-6);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.add(5);
        assert_eq!(c.value(), 0);
        let g = Gauge::disabled();
        g.set(5);
        assert_eq!(g.value(), 0);
        let h = Histogram::disabled();
        h.observe(5.0);
        assert!(h.0.is_none());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        HistogramCore::new(&[10.0, 1.0]);
    }

    #[test]
    fn histogram_quantile_interpolates_within_buckets() {
        let registry = Registry::default();
        let h = registry.histogram("latency", &[10.0, 20.0, 40.0]);
        // 10 observations in (10, 20]; ranks 1..=10 spread evenly.
        for i in 0..10 {
            h.observe(11.0 + i as f64);
        }
        let snap = registry.histogram_snapshots().remove(0);
        // rank = ceil(0.5 * 10) = 5 → 5/10 through (10, 20].
        assert_eq!(snap.quantile(0.5), Some(15.0));
        assert_eq!(snap.quantile(1.0), Some(20.0));
        // rank clamps to 1 → 1/10 through the bucket.
        assert_eq!(snap.quantile(0.0), Some(11.0));
    }

    #[test]
    fn histogram_quantile_handles_under_and_overflow_buckets() {
        let registry = Registry::default();
        let h = registry.histogram("latency", &[10.0, 20.0]);
        h.observe(2.0); // under the first bound
        h.observe(15.0);
        h.observe(99.0); // overflow
        h.observe(99.0); // overflow
        let snap = registry.histogram_snapshots().remove(0);
        // rank 1 lands in the first bucket, which interpolates from 0.
        assert_eq!(snap.quantile(0.25), Some(10.0));
        // rank 2 → fully through (10, 20].
        assert_eq!(snap.quantile(0.5), Some(20.0));
        // Overflow ranks clamp to the last bound.
        assert_eq!(snap.quantile(0.99), Some(20.0));
        assert_eq!(snap.quantile(1.0), Some(20.0));
    }

    #[test]
    fn histogram_quantile_is_none_when_empty() {
        let registry = Registry::default();
        registry.histogram("empty", &[1.0]);
        assert_eq!(registry.histogram_snapshots().remove(0).quantile(0.5), None);
    }
}
