//! The time source spans read their timestamps from.
//!
//! Telemetry never calls `Instant::now()` behind the caller's back: a
//! [`crate::SpanScope`] is built over an explicit [`Clock`], so the
//! harness can drive spans from its simulated test clock and the ingest
//! pipeline from a shared monotonic one. `mlperf-core`'s `timing`
//! module re-exports this trait, so a single `Clock` implementation
//! serves both the time-to-train timer and the telemetry layer.

use std::time::{Duration, Instant};

/// A monotonic time source: time elapsed since an arbitrary fixed
/// origin. Implementations must be monotonic (readings never decrease)
/// but origins may differ between instances — the telemetry sink
/// aligns every scope's clock onto its own timeline (see
/// [`crate::Telemetry::scope`]).
pub trait Clock {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// Wall-clock time via [`Instant`], origin at creation. `Sync`, so one
/// instance can be shared across a scoped worker pool to give every
/// worker the same timeline.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock with origin at creation.
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.now() > a);
    }
}
