//! Prometheus text exposition of the metrics registry.
//!
//! [`render_prometheus`] turns a [`TelemetrySnapshot`] into the
//! `text/plain; version=0.0.4` exposition format a Prometheus server
//! scrapes: counters as `<name>_total`, gauges as-is, histograms with
//! cumulative `le` buckets plus `_sum`/`_count`, quantile sketches as
//! summaries with `quantile` labels, and time-series as derived
//! gauges — counter-kind series export their mean throughput over the
//! retained window as `<name>_per_sec`, gauge-kind series export the
//! last reading plus a `<name>_peak` high-water mark. Metric names are
//! sanitized (dots become underscores) but the registry's original
//! name is preserved in the `# HELP` line.
//!
//! The suite has no HTTP endpoint to scrape yet — `round_pipeline
//! --metrics FILE` writes one exposition at exit, which is exactly the
//! file the node-exporter "textfile collector" pattern picks up.

use crate::snapshot::TelemetrySnapshot;
use crate::trace::TraceWriteError;
use std::fmt::Write as _;
use std::path::Path;

/// A metric name restricted to the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes `_`, and
/// a leading digit is prefixed with `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// An `le` / value label in canonical form: integral floats print
/// without the trailing `.0` so buckets read `le="10"` not
/// `le="10.0"`.
fn number(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn header(out: &mut String, name: &str, kind: &str, original: &str) {
    let _ = writeln!(out, "# HELP {name} mlperf {kind} `{original}`.");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the snapshot's full registry in Prometheus text exposition
/// format (see module docs for the mapping). Spans and events are not
/// exported here — they belong to the trace and flamegraph exporters.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for counter in &snapshot.counters {
        let name = format!("{}_total", sanitize(&counter.name));
        header(&mut out, &name, "counter", &counter.name);
        let _ = writeln!(out, "{name} {}", counter.value);
    }
    for gauge in &snapshot.gauges {
        let name = sanitize(&gauge.name);
        header(&mut out, &name, "gauge", &gauge.name);
        let _ = writeln!(out, "{name} {}", gauge.value);
    }
    for histogram in &snapshot.histograms {
        let name = sanitize(&histogram.name);
        header(&mut out, &name, "histogram", &histogram.name);
        let mut cumulative = 0u64;
        for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", number(*bound));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count);
        let _ = writeln!(out, "{name}_sum {}", number(histogram.sum));
        let _ = writeln!(out, "{name}_count {}", histogram.count);
    }
    for sketch in &snapshot.sketches {
        let name = sanitize(&sketch.name);
        header(&mut out, &name, "summary", &sketch.name);
        for q in [0.5, 0.9, 0.99] {
            if let Some(value) = sketch.quantile(q) {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", number(value));
            }
        }
        let _ = writeln!(out, "{name}_sum {}", number(sketch.sum));
        let _ = writeln!(out, "{name}_count {}", sketch.count);
    }
    for series in &snapshot.series {
        match series.kind {
            crate::series::SeriesKind::Counter => {
                let name = format!("{}_per_sec", sanitize(&series.name));
                let rate = series.mean_rate_per_sec().unwrap_or(0.0);
                header(&mut out, &name, "gauge", &series.name);
                let _ = writeln!(out, "{name} {}", number(rate));
            }
            crate::series::SeriesKind::Gauge => {
                let name = sanitize(&series.name);
                header(&mut out, &name, "gauge", &series.name);
                let _ = writeln!(out, "{name} {}", number(series.last().map_or(0.0, |s| s.value)));
                let peak = format!("{name}_peak");
                header(&mut out, &peak, "gauge", &series.name);
                let _ = writeln!(out, "{peak} {}", number(series.peak().unwrap_or(0.0)));
            }
        }
    }
    out
}

/// Writes the exposition to `path` atomically (sibling tmp file, then
/// rename) — the discipline every exporter in this crate shares, and
/// what makes the file safe for a textfile-collector scrape loop.
///
/// # Errors
///
/// [`TraceWriteError`] when the tmp file cannot be written or renamed.
pub fn write_prometheus(snapshot: &TelemetrySnapshot, path: &Path) -> Result<(), TraceWriteError> {
    let contents = render_prometheus(snapshot);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "metrics".to_string());
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    let err = |p: &Path, e: &std::io::Error| TraceWriteError {
        path: p.to_path_buf(),
        error: e.to_string(),
    };
    std::fs::write(&tmp, &contents).map_err(|e| err(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| err(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesKind;
    use crate::{Reporter, Telemetry};
    use std::time::Duration;

    #[test]
    fn sanitize_restricts_the_charset() {
        assert_eq!(sanitize("ingest.bundles_reviewed"), "ingest_bundles_reviewed");
        assert_eq!(sanitize("loadgen latency-ms"), "loadgen_latency_ms");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn counters_gauges_histograms_render_canonically() {
        let telemetry = Telemetry::recording();
        telemetry.counter("ingest.bundles_reviewed").add(42);
        telemetry.gauge("pool.workers").set(8);
        let h = telemetry.histogram("latency.ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let text = render_prometheus(&telemetry.snapshot());
        assert!(text.contains("# TYPE ingest_bundles_reviewed_total counter\n"));
        assert!(text.contains("ingest_bundles_reviewed_total 42\n"));
        assert!(text.contains(
            "# HELP ingest_bundles_reviewed_total mlperf counter `ingest.bundles_reviewed`.\n"
        ));
        assert!(text.contains("# TYPE pool_workers gauge\n"));
        assert!(text.contains("pool_workers 8\n"));
        // Histogram buckets are cumulative and close with +Inf.
        assert!(text.contains("latency_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("latency_ms_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("latency_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_ms_sum 105.5\n"));
        assert!(text.contains("latency_ms_count 3\n"));
    }

    #[test]
    fn sketches_render_as_summaries() {
        let telemetry = Telemetry::recording();
        let sketch = telemetry.sketch("loadgen.latency_ms");
        for i in 1..=100 {
            sketch.observe(i as f64);
        }
        let text = render_prometheus(&telemetry.snapshot());
        assert!(text.contains("# TYPE loadgen_latency_ms summary\n"));
        assert!(text.contains("loadgen_latency_ms{quantile=\"0.5\"}"));
        assert!(text.contains("loadgen_latency_ms{quantile=\"0.99\"}"));
        assert!(text.contains("loadgen_latency_ms_count 100\n"));
    }

    #[test]
    fn counter_series_export_their_mean_rate() {
        let telemetry = Telemetry::recording();
        let counter = telemetry.counter("ingest.bundles");
        let mut reporter = Reporter::new(Duration::from_secs(1));
        reporter.track_counter(&telemetry, "ingest.bundles", counter.clone());
        reporter.tick(Duration::from_secs(0));
        counter.add(500);
        reporter.tick(Duration::from_secs(2));
        let text = render_prometheus(&telemetry.snapshot());
        assert!(text.contains("# TYPE ingest_bundles_per_sec gauge\n"));
        assert!(text.contains("ingest_bundles_per_sec 250\n"), "text: {text}");
    }

    #[test]
    fn gauge_series_export_last_and_peak() {
        let telemetry = Telemetry::recording();
        let series = telemetry.time_series("pool.workers_busy", SeriesKind::Gauge);
        series.push(Duration::from_secs(1), 6.0);
        series.push(Duration::from_secs(2), 2.0);
        let text = render_prometheus(&telemetry.snapshot());
        assert!(text.contains("pool_workers_busy 2\n"));
        assert!(text.contains("pool_workers_busy_peak 6\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty_exposition() {
        assert_eq!(render_prometheus(&Telemetry::disabled().snapshot()), "");
    }

    #[test]
    fn write_prometheus_lands_atomically() {
        let dir =
            std::env::temp_dir().join(format!("mlperf-telemetry-prom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let telemetry = Telemetry::recording();
        telemetry.counter("c").incr();
        let snapshot = telemetry.snapshot();
        write_prometheus(&snapshot, &path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), render_prometheus(&snapshot));
        assert!(!dir.join(".metrics.prom.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
