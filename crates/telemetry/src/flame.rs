//! Collapsed-stack flamegraph export folded from completed span trees.
//!
//! [`render_collapsed`] walks every recorded span, reconstructs its
//! ancestry through the `parent` links, and emits one line per unique
//! stack in the "folded"/"collapsed" format `flamegraph.pl` and
//! `inferno-flamegraph` consume:
//!
//! ```text
//! harness:run;tensor:gemm 1523
//! ```
//!
//! Frames are `layer:name` joined with `;`, and the trailing count is
//! the stack's **self time** in microseconds — each span's duration
//! minus the duration of its children, clamped at zero (concurrent
//! children recorded under one parent can overlap it). Identical
//! stacks aggregate, and stacks are emitted in lexicographic order so
//! the output is deterministic for a given snapshot.

use crate::snapshot::TelemetrySnapshot;
use crate::span::SpanRecord;
use crate::trace::TraceWriteError;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::path::Path;

/// A frame label safe for the folded format: `;` separates frames and
/// the last space separates the count, so both (and control
/// characters) are replaced with `_`.
fn frame(span: &SpanRecord) -> String {
    let raw = format!("{}:{}", span.layer, span.name);
    raw.chars().map(|c| if c == ';' || c == ' ' || c.is_control() { '_' } else { c }).collect()
}

/// Folds the snapshot's spans into collapsed-stack lines (see module
/// docs). Spans with zero self time contribute no line of their own —
/// their time is entirely attributed to their children — so the output
/// always parses as `stack;frames count` with positive counts.
pub fn render_collapsed(snapshot: &TelemetrySnapshot) -> String {
    let by_id: HashMap<u64, &SpanRecord> = snapshot.spans.iter().map(|s| (s.id, s)).collect();
    let mut child_time: HashMap<u64, u64> = HashMap::new();
    for span in &snapshot.spans {
        if let Some(parent) = span.parent {
            *child_time.entry(parent).or_insert(0) += span.duration_us();
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in &snapshot.spans {
        let self_us =
            span.duration_us().saturating_sub(child_time.get(&span.id).copied().unwrap_or(0));
        if self_us == 0 {
            continue;
        }
        let mut frames = vec![frame(span)];
        let mut current = span;
        // Parent ids are always allocated before their children's, so a
        // well-formed snapshot can't cycle; the depth cap contains a
        // corrupted one.
        for _ in 0..128 {
            let Some(parent) = current.parent.and_then(|id| by_id.get(&id)) else {
                break;
            };
            frames.push(frame(parent));
            current = parent;
        }
        frames.reverse();
        *stacks.entry(frames.join(";")).or_insert(0) += self_us;
    }
    let mut out = String::new();
    for (stack, count) in stacks {
        let _ = writeln!(out, "{stack} {count}");
    }
    out
}

/// Writes the collapsed-stack profile to `path` atomically (sibling
/// tmp file, then rename).
///
/// # Errors
///
/// [`TraceWriteError`] when the tmp file cannot be written or renamed.
pub fn write_collapsed(snapshot: &TelemetrySnapshot, path: &Path) -> Result<(), TraceWriteError> {
    let contents = render_collapsed(snapshot);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "flame".to_string());
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    let err = |p: &Path, e: &std::io::Error| TraceWriteError {
        path: p.to_path_buf(),
        error: e.to_string(),
    };
    std::fs::write(&tmp, &contents).map_err(|e| err(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| err(path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::Telemetry;
    use std::cell::Cell;
    use std::time::Duration;

    /// A hand-cranked test clock so span durations are exact.
    #[derive(Debug)]
    struct StepClock(Cell<u64>);

    impl Clock for StepClock {
        fn now(&self) -> Duration {
            Duration::from_micros(self.0.get())
        }
    }

    fn at(clock: &StepClock, us: u64) {
        clock.0.set(us);
    }

    #[test]
    fn self_time_excludes_children_and_stacks_aggregate() {
        let telemetry = Telemetry::recording();
        let clock = StepClock(Cell::new(0));
        let mut scope = telemetry.scope(&clock);
        let run = scope.start("harness", "run");
        at(&clock, 100);
        let gemm = scope.start("tensor", "gemm");
        at(&clock, 400);
        scope.end(gemm);
        let gemm = scope.start("tensor", "gemm");
        at(&clock, 600);
        scope.end(gemm);
        at(&clock, 1000);
        scope.end(run);

        let text = render_collapsed(&telemetry.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "harness:run 500",             // 1000 total − 500 in children
                "harness:run;tensor:gemm 500", // 300 + 200, aggregated
            ]
        );
    }

    #[test]
    fn lines_parse_as_stack_and_positive_count() {
        let telemetry = Telemetry::recording();
        let clock = StepClock(Cell::new(0));
        let mut scope = telemetry.scope(&clock);
        let outer = scope.start("a", "outer name"); // space gets sanitized
        at(&clock, 10);
        let inner = scope.start("b", "in;ner");
        at(&clock, 30);
        scope.end(inner);
        scope.end(outer);
        let text = render_collapsed(&telemetry.snapshot());
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("space separates the count");
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().expect("count is an integer") > 0);
            for f in stack.split(';') {
                assert!(!f.is_empty());
                assert!(!f.contains(' '), "frames carry no spaces: {f}");
            }
        }
        assert!(text.contains("a:outer_name;b:in_ner 20\n"));
    }

    #[test]
    fn zero_self_time_spans_are_folded_into_children() {
        let telemetry = Telemetry::recording();
        let clock = StepClock(Cell::new(0));
        let mut scope = telemetry.scope(&clock);
        let outer = scope.start("x", "wrapper");
        let inner = scope.start("x", "work");
        at(&clock, 50);
        scope.end(inner);
        scope.end(outer); // wrapper's entire duration is inside `work`
        let text = render_collapsed(&telemetry.snapshot());
        assert_eq!(text, "x:wrapper;x:work 50\n");
    }

    #[test]
    fn empty_snapshot_renders_empty_profile() {
        assert_eq!(render_collapsed(&Telemetry::disabled().snapshot()), "");
    }

    #[test]
    fn write_collapsed_lands_atomically() {
        let dir =
            std::env::temp_dir().join(format!("mlperf-telemetry-flame-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.folded");
        let telemetry = Telemetry::recording();
        let clock = StepClock(Cell::new(0));
        let mut scope = telemetry.scope(&clock);
        let span = scope.start("t", "s");
        at(&clock, 5);
        scope.end(span);
        let snapshot = telemetry.snapshot();
        write_collapsed(&snapshot, &path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), render_collapsed(&snapshot));
        assert!(!dir.join(".profile.folded.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
