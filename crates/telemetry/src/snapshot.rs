//! A point-in-time copy of everything a [`crate::Telemetry`] sink has
//! recorded, decoupled from the live atomics so exporters and report
//! renderers work on stable data.

use crate::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
use crate::series::TimeSeriesSnapshot;
use crate::sketch::SketchSnapshot;
use crate::span::{EventRecord, SpanRecord};

/// Everything recorded so far: completed spans (sorted by start time,
/// then id), instant events (sorted by timestamp, then id), and the
/// metric registry's current readings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Completed spans, sorted by `(start_us, id)`.
    pub spans: Vec<SpanRecord>,
    /// Instant events, sorted by `(ts_us, id)`.
    pub events: Vec<EventRecord>,
    /// Counters in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms in registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Quantile sketches in registration order.
    pub sketches: Vec<SketchSnapshot>,
    /// Time-series in registration order.
    pub series: Vec<TimeSeriesSnapshot>,
}

impl TelemetrySnapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.events.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
            && self.series.is_empty()
    }

    /// The instant events emitted by one instrumented layer.
    pub fn events_in<'a>(&'a self, layer: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.layer == layer)
    }

    /// The spans emitted by one instrumented layer (trace category).
    pub fn spans_in<'a>(&'a self, layer: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.layer == layer)
    }

    /// The distinct layers that emitted spans, in first-seen order.
    pub fn layers(&self) -> Vec<&str> {
        let mut layers: Vec<&str> = Vec::new();
        for span in &self.spans {
            if !layers.contains(&span.layer.as_str()) {
                layers.push(&span.layer);
            }
        }
        layers
    }
}
