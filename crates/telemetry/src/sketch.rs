//! A mergeable quantile sketch with bounded memory and a documented
//! relative-error guarantee.
//!
//! [`QuantileSketch`] keeps log-spaced buckets (the DDSketch family —
//! chosen over P² and CKMS because bucket-wise merging of per-worker
//! shards is exact, not heuristic): a value `v > 0` lands in bucket
//! `ceil(ln(v)/ln(γ))` with `γ = (1+α)/(1−α)`, so every value in a
//! bucket is within relative error `α` of the bucket's midpoint
//! estimate. The quantile rank rule is the same nearest-rank rule as
//! the exact `percentile()` oracle in `mlperf-loadgen`
//! (`rank = ceil(q·n)` clamped to `[1, n]`), which gives the bound the
//! differential tests pin down:
//!
//! > for any `q`, `|quantile(q) − exact_percentile(q)| ≤ α ·
//! > exact_percentile(q)` while the sketch has not collapsed buckets.
//!
//! Memory is bounded by `max_buckets` entries (default 1024 — at the
//! default `α = 0.01` that spans a value range of about `e^20 ≈ 5·10^8`
//! to one, far wider than any latency distribution the suite records).
//! If a stream is wider still, the *lowest* buckets are collapsed
//! together — the tail quantiles the suite cares about stay within the
//! bound, and [`QuantileSketch::is_collapsed`] reports that the bottom
//! of the distribution is now approximate.
//!
//! The registry-facing [`Sketch`] handle wraps one shared sketch behind
//! a mutex; per-worker [`SketchShard`]s accumulate locally without any
//! synchronization and fold into the shared sketch when dropped (or
//! flushed), so the worker-pool hot path never contends on the lock.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default relative-error bound (1%).
pub const DEFAULT_SKETCH_ALPHA: f64 = 0.01;

/// Default cap on live buckets (see module docs for the range this
/// buys at the default `α`).
pub const DEFAULT_SKETCH_MAX_BUCKETS: usize = 1024;

/// Values at or below this magnitude are tracked in a dedicated zero
/// bucket instead of a log bucket.
const ZERO_THRESHOLD: f64 = 1e-9;

/// A fixed-memory, mergeable quantile sketch (see module docs for the
/// error bound and memory bound).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    /// `ln(γ)` where `γ = (1+α)/(1−α)`; bucket index of `v` is
    /// `ceil(ln(v)/gamma_ln)`.
    gamma_ln: f64,
    max_buckets: usize,
    /// Log bucket index → observation count. A `BTreeMap` keeps
    /// iteration in value order, which makes quantile walks and
    /// renderings deterministic across runs and platforms.
    buckets: BTreeMap<i32, u64>,
    /// Observations with `value <= ZERO_THRESHOLD` (incl. negatives,
    /// which a latency stream should never contain but a robust sketch
    /// must not lose).
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    collapsed: bool,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_SKETCH_ALPHA)
    }
}

impl QuantileSketch {
    /// A sketch guaranteeing relative error `alpha` (`0 < alpha < 1`)
    /// with the default bucket cap.
    pub fn new(alpha: f64) -> Self {
        QuantileSketch::with_max_buckets(alpha, DEFAULT_SKETCH_MAX_BUCKETS)
    }

    /// [`QuantileSketch::new`] with an explicit bucket cap (at least 2).
    pub fn with_max_buckets(alpha: f64, max_buckets: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "sketch alpha must be in (0, 1)");
        assert!(max_buckets >= 2, "sketch needs at least two buckets");
        QuantileSketch {
            alpha,
            gamma_ln: ((1.0 + alpha) / (1.0 - alpha)).ln(),
            max_buckets,
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            collapsed: false,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.observe_n(value, 1);
    }

    /// Records `n` identical observations (how the offline loadgen
    /// scenario accounts a whole completed batch at once).
    pub fn observe_n(&mut self, value: f64, n: u64) {
        if n == 0 || !value.is_finite() {
            return;
        }
        self.count += n;
        self.sum += value * n as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= ZERO_THRESHOLD {
            self.zero_count += n;
            return;
        }
        let key = (value.ln() / self.gamma_ln).ceil() as i32;
        *self.buckets.entry(key).or_insert(0) += n;
        while self.buckets.len() > self.max_buckets {
            // Collapse the lowest bucket into its neighbour above: the
            // tail (high quantiles) keeps its guarantee, the far bottom
            // of the distribution becomes approximate.
            let (lowest, c) = self.buckets.pop_first().expect("bucket map cannot be empty here");
            let (_, next) = self
                .buckets
                .range_mut(lowest..)
                .next()
                .expect("max_buckets >= 2 leaves a neighbour");
            *next += c;
            self.collapsed = true;
        }
    }

    /// Folds `other` into `self`. Exact: the merged sketch is
    /// identical to one that observed both streams, provided both
    /// sketches were built with the same `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if the sketches disagree on `alpha` (their buckets would
    /// not line up).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha == other.alpha,
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.count += other.count;
        self.sum += other.sum;
        self.zero_count += other.zero_count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.collapsed |= other.collapsed;
        for (key, c) in &other.buckets {
            *self.buckets.entry(*key).or_insert(0) += c;
        }
        while self.buckets.len() > self.max_buckets {
            let (lowest, c) = self.buckets.pop_first().expect("bucket map cannot be empty here");
            let (_, next) = self
                .buckets
                .range_mut(lowest..)
                .next()
                .expect("max_buckets >= 2 leaves a neighbour");
            *next += c;
            self.collapsed = true;
        }
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`), `None` when the
    /// sketch is empty. Uses the nearest-rank rule
    /// `rank = ceil(q·count)` clamped to `[1, count]`, matching the
    /// exact-percentile oracle, and clamps the estimate into the
    /// observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero_count {
            return Some(self.min.min(ZERO_THRESHOLD));
        }
        let mut cum = self.zero_count;
        for (key, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                // Midpoint (harmonic) estimate of bucket
                // (γ^(k−1), γ^k]: 2γ^k/(γ+1), within α of any value
                // in the bucket.
                let gamma = self.gamma_ln.exp();
                let upper = (*key as f64 * self.gamma_ln).exp();
                let estimate = 2.0 * upper / (gamma + 1.0);
                return Some(estimate.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The relative-error bound this sketch was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of live log buckets (bounded by the construction cap).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the bucket cap ever forced low buckets to collapse
    /// (tail quantiles keep the `α` bound; bottom quantiles may not).
    pub fn is_collapsed(&self) -> bool {
        self.collapsed
    }
}

/// Shared storage behind a registered [`Sketch`] handle.
#[derive(Debug)]
pub(crate) struct SketchCore {
    pub(crate) sketch: Mutex<QuantileSketch>,
}

impl SketchCore {
    pub(crate) fn new(alpha: f64) -> Self {
        SketchCore { sketch: Mutex::new(QuantileSketch::new(alpha)) }
    }
}

/// A registry-backed quantile sketch handle (clones share storage).
/// `observe` takes a short uncontended mutex; hot loops on worker
/// threads should use a [`SketchShard`] instead.
#[derive(Debug, Clone)]
pub struct Sketch(pub(crate) Option<Arc<SketchCore>>);

impl Sketch {
    /// A no-op sketch (what a disabled registry hands out).
    pub fn disabled() -> Self {
        Sketch(None)
    }

    /// Records one observation; no-op when disabled.
    pub fn observe(&self, value: f64) {
        if let Some(core) = &self.0 {
            core.sketch.lock().expect("sketch poisoned").observe(value);
        }
    }

    /// Records `n` identical observations; no-op when disabled.
    pub fn observe_n(&self, value: f64, n: u64) {
        if let Some(core) = &self.0 {
            core.sketch.lock().expect("sketch poisoned").observe_n(value, n);
        }
    }

    /// A private shard for one worker: observations accumulate locally
    /// (no lock) and merge into the shared sketch when the shard drops
    /// or [`SketchShard::flush`] is called.
    pub fn shard(&self) -> SketchShard {
        let local = match &self.0 {
            Some(core) => core.sketch.lock().expect("sketch poisoned").clone_empty(),
            None => QuantileSketch::default(),
        };
        SketchShard { local, target: self.0.clone() }
    }
}

impl QuantileSketch {
    /// An empty sketch with the same `alpha` and bucket cap.
    fn clone_empty(&self) -> QuantileSketch {
        QuantileSketch::with_max_buckets(self.alpha, self.max_buckets)
    }
}

/// One worker's lock-free view of a shared [`Sketch`] (see
/// [`Sketch::shard`]).
#[derive(Debug)]
pub struct SketchShard {
    local: QuantileSketch,
    target: Option<Arc<SketchCore>>,
}

impl SketchShard {
    /// Records one observation into the local shard.
    pub fn observe(&mut self, value: f64) {
        if self.target.is_some() {
            self.local.observe(value);
        }
    }

    /// Records `n` identical observations into the local shard.
    pub fn observe_n(&mut self, value: f64, n: u64) {
        if self.target.is_some() {
            self.local.observe_n(value, n);
        }
    }

    /// Merges the shard into the shared sketch now (also happens on
    /// drop).
    pub fn flush(&mut self) {
        if self.local.count() == 0 {
            return;
        }
        if let Some(target) = &self.target {
            target.sketch.lock().expect("sketch poisoned").merge(&self.local);
        }
        self.local = self.local.clone_empty();
    }
}

impl Drop for SketchShard {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A sketch's state at snapshot time: summary statistics plus the full
/// sketch, so reports can ask for arbitrary quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// The sketch itself (bounded memory, so cloning it is cheap).
    pub sketch: QuantileSketch,
}

impl SketchSnapshot {
    /// The estimated `q`-quantile (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_exact_values_within_alpha() {
        let mut sketch = QuantileSketch::new(0.01);
        for i in 1..=10_000u64 {
            sketch.observe(i as f64 / 10.0); // 0.1 .. 1000.0
        }
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * 10_000.0_f64).ceil() as u64).clamp(1, 10_000);
            let exact = rank as f64 / 10.0;
            let est = sketch.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= 0.01 * exact + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert!(!sketch.is_collapsed());
        assert_eq!(sketch.count(), 10_000);
        assert_eq!(sketch.min(), Some(0.1));
        assert_eq!(sketch.max(), Some(1000.0));
    }

    #[test]
    fn merge_matches_observing_both_streams() {
        let mut all = QuantileSketch::new(0.02);
        let mut left = QuantileSketch::new(0.02);
        let mut right = QuantileSketch::new(0.02);
        for i in 0..1000u64 {
            let v = (i as f64 + 0.5) * 0.37;
            all.observe(v);
            if i % 2 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, all, "bucket-wise merge is exact");
    }

    #[test]
    fn zero_and_negative_values_are_not_lost() {
        let mut sketch = QuantileSketch::default();
        sketch.observe(0.0);
        sketch.observe(-3.0);
        sketch.observe(5.0);
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.quantile(0.0).unwrap(), -3.0, "zero-bucket ranks report the min");
        assert!((sketch.quantile(1.0).unwrap() - 5.0).abs() <= 0.05);
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sketch = QuantileSketch::default();
        assert_eq!(sketch.quantile(0.5), None);
        assert_eq!(sketch.min(), None);
        assert_eq!(sketch.max(), None);
    }

    #[test]
    fn bucket_cap_collapses_the_bottom_not_the_tail() {
        let mut sketch = QuantileSketch::with_max_buckets(0.01, 16);
        // A huge dynamic range forces collapsing.
        for e in 0..24 {
            sketch.observe(2f64.powi(e));
        }
        assert!(sketch.is_collapsed());
        assert!(sketch.bucket_len() <= 16);
        let p99 = sketch.quantile(1.0).unwrap();
        let exact = 2f64.powi(23);
        assert!((p99 - exact).abs() <= 0.01 * exact, "tail survives collapse");
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut bulk = QuantileSketch::default();
        bulk.observe_n(42.0, 100);
        let mut loop_ = QuantileSketch::default();
        for _ in 0..100 {
            loop_.observe(42.0);
        }
        assert_eq!(bulk, loop_);
    }

    #[test]
    fn shards_fold_into_the_shared_sketch() {
        let core = Arc::new(SketchCore::new(0.01));
        let handle = Sketch(Some(Arc::clone(&core)));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let mut shard = handle.shard();
                scope.spawn(move || {
                    for i in 0..1000 {
                        shard.observe((t * 1000 + i) as f64 + 1.0);
                    }
                });
            }
        });
        let merged = core.sketch.lock().unwrap().clone();
        assert_eq!(merged.count(), 4000);
        let est = merged.quantile(0.5).unwrap();
        let exact = 2000.0; // rank 2000 of 1.0..=4000.0
        assert!((est - exact).abs() <= 0.01 * exact);
    }

    #[test]
    fn disabled_sketch_is_inert() {
        let sketch = Sketch::disabled();
        sketch.observe(1.0);
        let mut shard = sketch.shard();
        shard.observe(2.0);
        shard.flush();
        assert!(sketch.0.is_none());
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merging_incompatible_sketches_panics() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }
}
