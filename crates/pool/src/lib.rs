//! A scoped worker pool with an atomic work cursor.
//!
//! This is the one pool idiom the whole workspace shares: `N` scoped
//! threads (one per available core, capped at the item count) pull work
//! items off a shared [`AtomicUsize`] cursor, so cheap items never wait
//! behind an unlucky static partition. It was born in the submission
//! ingest pipeline (`mlperf-submission`) and is now also the outer loop
//! of the `Blocked` tensor backend (`mlperf-tensor`), which is why it
//! lives at the bottom of the dependency graph with no dependencies of
//! its own.
//!
//! Two families of entry points:
//!
//! - [`parallel_map`] / [`parallel_map_workers`] apply a function to
//!   every item of a slice and return the results in item order. The
//!   `_workers` variant threads explicit per-worker state through
//!   (created on the worker, torn down with the worker's claimed-item
//!   count), which is how the ingest pipeline hangs telemetry scopes
//!   and histograms off the pool without this crate knowing what
//!   telemetry is.
//! - [`parallel_chunks_mut`] / [`parallel_chunks_mut_with`] split one
//!   mutable buffer into disjoint chunks and process each chunk on the
//!   pool — the shape tensor kernels want, where workers write disjoint
//!   slices of a shared output buffer.
//!
//! On a single-core host (or for a single item/chunk) every entry point
//! degrades to an inline serial loop on the calling thread: no threads
//! are spawned, so using the pool never costs anything when there is no
//! parallelism to be had.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Number of pool workers for `items` work items: one per available
/// core, capped at the item count, and at least one.
pub fn workers_for(items: usize) -> usize {
    thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1).min(items).max(1)
}

// Process-global pool statistics. This crate sits at the bottom of the
// dependency graph and cannot know what telemetry is, so it exposes
// plain atomics that `mlperf-telemetry`'s `Reporter` samples through
// closure sources. Every entry point — including the inline serial
// degradations — updates them, so a single-core CI host still records
// a busy-worker peak of at least one.
static WORKERS_BUSY: AtomicU64 = AtomicU64::new(0);
static WORKERS_BUSY_PEAK: AtomicU64 = AtomicU64::new(0);
static QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
static ACTIVE_POOLS: AtomicU64 = AtomicU64::new(0);
static ITEMS_COMPLETED: AtomicU64 = AtomicU64::new(0);
static FANOUTS: AtomicU64 = AtomicU64::new(0);
static FANOUT_WIDTH_PEAK: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-global pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Workers currently inside a work loop (serial degradations count
    /// as one busy worker).
    pub workers_busy: u64,
    /// High-water mark of `workers_busy` since process start.
    pub workers_busy_peak: u64,
    /// Items (or chunks) claimed by no worker yet.
    pub queue_depth: u64,
    /// Pool invocations currently in flight.
    pub active_pools: u64,
    /// Items (or chunks) completed since process start.
    pub items_completed: u64,
    /// Pool invocations since process start.
    pub fanouts: u64,
    /// Widest fan-out (worker count of one invocation) since process
    /// start.
    pub fanout_width_peak: u64,
}

/// Reads the process-global pool statistics (monotone fields keep
/// growing for the life of the process; gauges are instantaneous).
pub fn pool_stats() -> PoolSnapshot {
    PoolSnapshot {
        workers_busy: WORKERS_BUSY.load(Ordering::Relaxed),
        workers_busy_peak: WORKERS_BUSY_PEAK.load(Ordering::Relaxed),
        queue_depth: QUEUE_DEPTH.load(Ordering::Relaxed),
        active_pools: ACTIVE_POOLS.load(Ordering::Relaxed),
        items_completed: ITEMS_COMPLETED.load(Ordering::Relaxed),
        fanouts: FANOUTS.load(Ordering::Relaxed),
        fanout_width_peak: FANOUT_WIDTH_PEAK.load(Ordering::Relaxed),
    }
}

/// Scope guard for one pool invocation: enqueues the work on entry,
/// drops the pool-active count (and any unconsumed queue) on exit,
/// even on panic unwind. Workers report completions through it, so it
/// is shared by reference across the scoped threads.
struct PoolScope {
    queued: AtomicU64,
}

impl PoolScope {
    fn enter(width: usize, queued: usize) -> PoolScope {
        ACTIVE_POOLS.fetch_add(1, Ordering::Relaxed);
        FANOUTS.fetch_add(1, Ordering::Relaxed);
        FANOUT_WIDTH_PEAK.fetch_max(width as u64, Ordering::Relaxed);
        QUEUE_DEPTH.fetch_add(queued as u64, Ordering::Relaxed);
        PoolScope { queued: AtomicU64::new(queued as u64) }
    }

    /// Marks `n` items complete: off the queue, onto the completed
    /// total.
    fn items_done(&self, n: u64) {
        self.queued.fetch_sub(n, Ordering::Relaxed);
        QUEUE_DEPTH.fetch_sub(n, Ordering::Relaxed);
        ITEMS_COMPLETED.fetch_add(n, Ordering::Relaxed);
    }
}

impl Drop for PoolScope {
    fn drop(&mut self) {
        ACTIVE_POOLS.fetch_sub(1, Ordering::Relaxed);
        // Anything still queued did not complete (panic unwind);
        // release it so the gauge does not leak upward forever.
        QUEUE_DEPTH.fetch_sub(self.queued.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Scope guard for one busy worker (serial loops count as one).
struct BusyWorker;

impl BusyWorker {
    fn enter() -> BusyWorker {
        let busy = WORKERS_BUSY.fetch_add(1, Ordering::Relaxed) + 1;
        WORKERS_BUSY_PEAK.fetch_max(busy, Ordering::Relaxed);
        BusyWorker
    }
}

impl Drop for BusyWorker {
    fn drop(&mut self) {
        WORKERS_BUSY.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Applies `f` to every item on the pool and returns the results in
/// item order.
///
/// The uninstrumented convenience over [`parallel_map_workers`]: no
/// per-worker state, the body sees only the item.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_workers(items, || (), |(), _, item| f(item), |(), _| ())
}

/// The fully general pool map: applies `f` to every item and returns
/// the results in item order, threading explicit per-worker state
/// through.
///
/// Each worker calls `init` once when it starts, passes the state to
/// every `f(state, index, item)` call for the items it claims, and
/// finally calls `done(state, claimed)` with how many items it claimed
/// — the hook instrumented callers use for per-worker histograms.
///
/// With one worker (single core, or a single item) everything runs
/// inline on the calling thread.
///
/// # Panics
///
/// A panic in `f` on a worker thread propagates to the caller once the
/// scope joins; callers that must survive faulty items should catch
/// panics inside `f` (as the submission ingest pipeline does).
pub fn parallel_map_workers<T, R, S, I, F, D>(items: &[T], init: I, f: F, done: D) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S, u64) + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers_for(items.len());
    let pool = PoolScope::enter(workers, items.len());
    if workers == 1 {
        let _busy = BusyWorker::enter();
        let mut state = init();
        let out = items.iter().enumerate().map(|(i, item)| f(&mut state, i, item)).collect();
        done(state, items.len() as u64);
        pool.items_done(items.len() as u64);
        return out;
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, init, f, done) = (&next, &init, &f, &done);
                let pool = &pool;
                scope.spawn(move || {
                    let _busy = BusyWorker::enter();
                    let mut state = init();
                    let mut out = Vec::new();
                    let mut claimed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        claimed += 1;
                        out.push((i, f(&mut state, i, &items[i])));
                        pool.items_done(1);
                    }
                    done(state, claimed);
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("pool worker panicked")).collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Splits `data` into chunks of `chunk_len` elements (the last chunk
/// may be shorter) and runs `f(chunk_index, chunk)` for each on the
/// pool. Chunks are disjoint, so workers mutate them without
/// synchronization.
pub fn parallel_chunks_mut<E, F>(data: &mut [E], chunk_len: usize, f: F)
where
    E: Send,
    F: Fn(usize, &mut [E]) + Sync,
{
    parallel_chunks_mut_with(data, chunk_len, || (), |(), i, chunk| f(i, chunk));
}

/// [`parallel_chunks_mut`] with per-worker scratch state: each worker
/// calls `init` once and passes the state to every chunk it claims.
/// Tensor kernels use this to reuse one scratch buffer (an im2col
/// lowering, a packed GEMM panel) across all the chunks a worker
/// processes instead of allocating per chunk.
///
/// # Panics
///
/// Panics if `chunk_len` is zero (with non-empty data); a panic in `f`
/// propagates to the caller.
pub fn parallel_chunks_mut_with<E, S, I, F>(data: &mut [E], chunk_len: usize, init: I, f: F)
where
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [E]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = workers_for(n_chunks);
    let pool = PoolScope::enter(workers, n_chunks);
    if workers == 1 {
        let _busy = BusyWorker::enter();
        let mut state = init();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(&mut state, i, chunk);
        }
        pool.items_done(n_chunks as u64);
        return;
    }
    // Hand each chunk to exactly one worker through a take-once slot;
    // the mutex is uncontended (each slot is locked once) and keeps the
    // distribution safe without unsafe pointer arithmetic.
    let chunks: Vec<Mutex<Option<&mut [E]>>> =
        data.chunks_mut(chunk_len).map(|c| Mutex::new(Some(c))).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..workers {
            let (next, chunks, init, f) = (&next, &chunks, &init, &f);
            let pool = &pool;
            scope.spawn(move || {
                let _busy = BusyWorker::enter();
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[i]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed twice");
                    f(&mut state, i, chunk);
                    pool.items_done(1);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = parallel_map(&items, |i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        assert!(parallel_map::<usize, usize, _>(&[], |i| *i).is_empty());
    }

    #[test]
    fn workers_state_counts_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let total_claimed = AtomicU64::new(0);
        let inits = AtomicU64::new(0);
        let sums: Vec<u64> = parallel_map_workers(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |state, i, item| {
                *state += 1;
                item + i as u64
            },
            |_, claimed| {
                total_claimed.fetch_add(claimed, Ordering::Relaxed);
            },
        );
        assert_eq!(sums, (0..100).map(|i| 2 * i).collect::<Vec<u64>>());
        assert_eq!(total_claimed.load(Ordering::Relaxed), 100);
        let inits = inits.load(Ordering::Relaxed);
        assert!(inits >= 1 && inits <= workers_for(100) as u64);
    }

    #[test]
    fn chunks_mut_covers_whole_buffer() {
        let mut data = vec![0u32; 1000];
        parallel_chunks_mut(&mut data, 7, |i, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = (i * 7 + off) as u32;
            }
        });
        assert_eq!(data, (0..1000).collect::<Vec<u32>>());
    }

    #[test]
    fn chunks_mut_with_reuses_worker_scratch() {
        let mut data = vec![1.0f32; 64];
        parallel_chunks_mut_with(
            &mut data,
            16,
            || vec![2.0f32; 16],
            |scratch, _, chunk| {
                for (v, s) in chunk.iter_mut().zip(scratch.iter()) {
                    *v *= s;
                }
            },
        );
        assert_eq!(data, vec![2.0f32; 64]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        parallel_chunks_mut::<u8, _>(&mut [], 4, |_, _| panic!("no chunks expected"));
        let mut one = [5u8];
        parallel_chunks_mut(&mut one, 100, |i, chunk| {
            assert_eq!(i, 0);
            chunk[0] += 1;
        });
        assert_eq!(one, [6]);
    }

    #[test]
    fn workers_for_bounds() {
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(1_000_000) >= 1);
    }

    // The stats are process-global and other tests run concurrently,
    // so these assert monotone deltas and invariants, never absolute
    // values.

    #[test]
    fn stats_count_completed_items_and_fanouts() {
        let before = pool_stats();
        let items: Vec<usize> = (0..321).collect();
        parallel_map(&items, |i| i + 1);
        let mut data = vec![0u8; 100];
        parallel_chunks_mut(&mut data, 10, |_, chunk| chunk.fill(1));
        let after = pool_stats();
        assert!(after.items_completed >= before.items_completed + 321 + 10);
        assert!(after.fanouts >= before.fanouts + 2);
        assert!(after.workers_busy_peak >= 1, "even a serial loop counts as one busy worker");
        assert!(after.fanout_width_peak >= 1);
    }

    #[test]
    fn stats_gauges_return_to_idle() {
        let items: Vec<usize> = (0..64).collect();
        parallel_map(&items, |i| *i);
        // Our own work is done; other tests may still be running, so
        // the gauges are bounded, not zero.
        let stats = pool_stats();
        assert!(stats.queue_depth < 1_000_000, "no leaked queue depth");
        assert!(stats.active_pools < 1_000, "no leaked active pools");
        assert!(stats.workers_busy <= stats.workers_busy_peak);
    }

    #[test]
    fn stats_observe_busy_workers_mid_flight() {
        let before = pool_stats();
        let items: Vec<usize> = (0..workers_for(usize::MAX).max(2) * 4).collect();
        parallel_map(&items, |i| {
            let seen = pool_stats();
            assert!(seen.workers_busy >= 1, "the observing worker itself is busy");
            assert!(seen.active_pools >= 1);
            *i
        });
        assert!(pool_stats().workers_busy_peak >= before.workers_busy_peak.max(1));
    }
}
