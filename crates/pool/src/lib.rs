//! A scoped worker pool with an atomic work cursor.
//!
//! This is the one pool idiom the whole workspace shares: `N` scoped
//! threads (one per available core, capped at the item count) pull work
//! items off a shared [`AtomicUsize`] cursor, so cheap items never wait
//! behind an unlucky static partition. It was born in the submission
//! ingest pipeline (`mlperf-submission`) and is now also the outer loop
//! of the `Blocked` tensor backend (`mlperf-tensor`), which is why it
//! lives at the bottom of the dependency graph with no dependencies of
//! its own.
//!
//! Two families of entry points:
//!
//! - [`parallel_map`] / [`parallel_map_workers`] apply a function to
//!   every item of a slice and return the results in item order. The
//!   `_workers` variant threads explicit per-worker state through
//!   (created on the worker, torn down with the worker's claimed-item
//!   count), which is how the ingest pipeline hangs telemetry scopes
//!   and histograms off the pool without this crate knowing what
//!   telemetry is.
//! - [`parallel_chunks_mut`] / [`parallel_chunks_mut_with`] split one
//!   mutable buffer into disjoint chunks and process each chunk on the
//!   pool — the shape tensor kernels want, where workers write disjoint
//!   slices of a shared output buffer.
//!
//! On a single-core host (or for a single item/chunk) every entry point
//! degrades to an inline serial loop on the calling thread: no threads
//! are spawned, so using the pool never costs anything when there is no
//! parallelism to be had.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Number of pool workers for `items` work items: one per available
/// core, capped at the item count, and at least one.
pub fn workers_for(items: usize) -> usize {
    thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1).min(items).max(1)
}

/// Applies `f` to every item on the pool and returns the results in
/// item order.
///
/// The uninstrumented convenience over [`parallel_map_workers`]: no
/// per-worker state, the body sees only the item.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_workers(items, || (), |(), _, item| f(item), |(), _| ())
}

/// The fully general pool map: applies `f` to every item and returns
/// the results in item order, threading explicit per-worker state
/// through.
///
/// Each worker calls `init` once when it starts, passes the state to
/// every `f(state, index, item)` call for the items it claims, and
/// finally calls `done(state, claimed)` with how many items it claimed
/// — the hook instrumented callers use for per-worker histograms.
///
/// With one worker (single core, or a single item) everything runs
/// inline on the calling thread.
///
/// # Panics
///
/// A panic in `f` on a worker thread propagates to the caller once the
/// scope joins; callers that must survive faulty items should catch
/// panics inside `f` (as the submission ingest pipeline does).
pub fn parallel_map_workers<T, R, S, I, F, D>(items: &[T], init: I, f: F, done: D) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    D: Fn(S, u64) + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers_for(items.len());
    if workers == 1 {
        let mut state = init();
        let out = items.iter().enumerate().map(|(i, item)| f(&mut state, i, item)).collect();
        done(state, items.len() as u64);
        return out;
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, init, f, done) = (&next, &init, &f, &done);
                scope.spawn(move || {
                    let mut state = init();
                    let mut out = Vec::new();
                    let mut claimed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        claimed += 1;
                        out.push((i, f(&mut state, i, &items[i])));
                    }
                    done(state, claimed);
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("pool worker panicked")).collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Splits `data` into chunks of `chunk_len` elements (the last chunk
/// may be shorter) and runs `f(chunk_index, chunk)` for each on the
/// pool. Chunks are disjoint, so workers mutate them without
/// synchronization.
pub fn parallel_chunks_mut<E, F>(data: &mut [E], chunk_len: usize, f: F)
where
    E: Send,
    F: Fn(usize, &mut [E]) + Sync,
{
    parallel_chunks_mut_with(data, chunk_len, || (), |(), i, chunk| f(i, chunk));
}

/// [`parallel_chunks_mut`] with per-worker scratch state: each worker
/// calls `init` once and passes the state to every chunk it claims.
/// Tensor kernels use this to reuse one scratch buffer (an im2col
/// lowering, a packed GEMM panel) across all the chunks a worker
/// processes instead of allocating per chunk.
///
/// # Panics
///
/// Panics if `chunk_len` is zero (with non-empty data); a panic in `f`
/// propagates to the caller.
pub fn parallel_chunks_mut_with<E, S, I, F>(data: &mut [E], chunk_len: usize, init: I, f: F)
where
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [E]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = workers_for(n_chunks);
    if workers == 1 {
        let mut state = init();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(&mut state, i, chunk);
        }
        return;
    }
    // Hand each chunk to exactly one worker through a take-once slot;
    // the mutex is uncontended (each slot is locked once) and keeps the
    // distribution safe without unsafe pointer arithmetic.
    let chunks: Vec<Mutex<Option<&mut [E]>>> =
        data.chunks_mut(chunk_len).map(|c| Mutex::new(Some(c))).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..workers {
            let (next, chunks, init, f) = (&next, &chunks, &init, &f);
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[i]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed twice");
                    f(&mut state, i, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = parallel_map(&items, |i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        assert!(parallel_map::<usize, usize, _>(&[], |i| *i).is_empty());
    }

    #[test]
    fn workers_state_counts_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let total_claimed = AtomicU64::new(0);
        let inits = AtomicU64::new(0);
        let sums: Vec<u64> = parallel_map_workers(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |state, i, item| {
                *state += 1;
                item + i as u64
            },
            |_, claimed| {
                total_claimed.fetch_add(claimed, Ordering::Relaxed);
            },
        );
        assert_eq!(sums, (0..100).map(|i| 2 * i).collect::<Vec<u64>>());
        assert_eq!(total_claimed.load(Ordering::Relaxed), 100);
        let inits = inits.load(Ordering::Relaxed);
        assert!(inits >= 1 && inits <= workers_for(100) as u64);
    }

    #[test]
    fn chunks_mut_covers_whole_buffer() {
        let mut data = vec![0u32; 1000];
        parallel_chunks_mut(&mut data, 7, |i, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = (i * 7 + off) as u32;
            }
        });
        assert_eq!(data, (0..1000).collect::<Vec<u32>>());
    }

    #[test]
    fn chunks_mut_with_reuses_worker_scratch() {
        let mut data = vec![1.0f32; 64];
        parallel_chunks_mut_with(
            &mut data,
            16,
            || vec![2.0f32; 16],
            |scratch, _, chunk| {
                for (v, s) in chunk.iter_mut().zip(scratch.iter()) {
                    *v *= s;
                }
            },
        );
        assert_eq!(data, vec![2.0f32; 64]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        parallel_chunks_mut::<u8, _>(&mut [], 4, |_, _| panic!("no chunks expected"));
        let mut one = [5u8];
        parallel_chunks_mut(&mut one, 100, |i, chunk| {
            assert_eq!(i, 0);
            chunk[0] += 1;
        });
        assert_eq!(one, [6]);
    }

    #[test]
    fn workers_for_bounds() {
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(1_000_000) >= 1);
    }
}
