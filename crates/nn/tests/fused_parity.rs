//! Differential tests for the fused Blocked-backend graph nodes.
//!
//! `LayerNorm` and `MultiHeadAttention` dispatch to single fused nodes
//! when their input is tagged `Blocked`, and to the primitive-op
//! composition on `Reference`. The fused implementations are required
//! to be *bit-identical* to the compositions — in the forward value AND
//! in every gradient — because the harness asserts that training
//! trajectories match across backends. These tests run the same layer
//! on both backends and compare raw `f32` bits, no tolerance.

use mlperf_autograd::Var;
use mlperf_nn::{causal_mask, LayerNorm, Module, MultiHeadAttention};
use mlperf_tensor::{BackendKind, Tensor, TensorRng};

fn assert_bits_equal(label: &str, reference: &Tensor, blocked: &Tensor) {
    assert_eq!(reference.shape(), blocked.shape(), "{label}: shape mismatch");
    for (i, (r, b)) in reference.data().iter().zip(blocked.data()).enumerate() {
        assert_eq!(r.to_bits(), b.to_bits(), "{label}: element {i} diverged: {r} vs {b}");
    }
}

/// Runs `f` on both backends with identical weights and input, and
/// asserts bitwise equality of output, input gradient, and every
/// parameter gradient.
fn assert_layer_parity(
    shape: &[usize],
    seed: u64,
    f: impl Fn(&mut TensorRng, &Var) -> (Var, Vec<Var>),
) {
    let mut outputs = Vec::new();
    for kind in BackendKind::ALL {
        let mut rng = TensorRng::new(seed).with_backend(kind);
        let x = Var::param(rng.normal(shape, 0.0, 1.0));
        let (y, params) = f(&mut rng, &x);
        y.sum().backward();
        let grads: Vec<Tensor> = std::iter::once(&x)
            .chain(params.iter())
            .map(|p| p.grad().expect("gradient missing"))
            .collect();
        outputs.push((y.value_clone(), grads));
    }
    let (ref_out, ref_grads) = &outputs[0];
    let (blk_out, blk_grads) = &outputs[1];
    assert_bits_equal("forward", ref_out, blk_out);
    assert_eq!(ref_grads.len(), blk_grads.len());
    for (i, (r, b)) in ref_grads.iter().zip(blk_grads).enumerate() {
        assert_bits_equal(&format!("grad {i}"), r, b);
    }
}

#[test]
fn layernorm_fused_matches_composition() {
    for shape in [&[16usize, 12, 16][..], &[5, 16][..], &[3, 7, 9][..], &[2, 3, 4, 8][..]] {
        assert_layer_parity(shape, 11, |_, x| {
            let ln = LayerNorm::new(*shape.last().unwrap());
            (ln.forward(x), ln.params())
        });
    }
}

#[test]
fn attention_fused_matches_composition() {
    for (b, t, d, h) in [(16usize, 12usize, 16usize, 2usize), (2, 5, 8, 4), (1, 3, 6, 1)] {
        assert_layer_parity(&[b, t, d], 13, |rng, x| {
            let mha = MultiHeadAttention::new(d, h, rng);
            (mha.self_attention(x, None), mha.params())
        });
    }
}

#[test]
fn masked_attention_fused_matches_composition() {
    assert_layer_parity(&[3, 6, 8], 17, |rng, x| {
        let mha = MultiHeadAttention::new(8, 2, rng);
        (mha.self_attention(x, Some(&causal_mask(6))), mha.params())
    });
}

#[test]
fn cross_attention_fused_matches_composition() {
    // Distinct query and key/value lengths exercise the tq != tk paths.
    for kind in BackendKind::ALL {
        let mut rng = TensorRng::new(19).with_backend(kind);
        let q = Var::param(rng.normal(&[2, 4, 8], 0.0, 1.0));
        let kv = Var::param(rng.normal(&[2, 7, 8], 0.0, 1.0));
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        mha.forward(&q, &kv, &kv, None).sum().backward();
        // Compare against a freshly seeded reference run.
        if kind == BackendKind::Blocked {
            let mut rng2 = TensorRng::new(19).with_backend(BackendKind::Reference);
            let q2 = Var::param(rng2.normal(&[2, 4, 8], 0.0, 1.0));
            let kv2 = Var::param(rng2.normal(&[2, 7, 8], 0.0, 1.0));
            let mha2 = MultiHeadAttention::new(8, 2, &mut rng2);
            mha2.forward(&q2, &kv2, &kv2, None).sum().backward();
            assert_bits_equal("cross q grad", &q2.grad().unwrap(), &q.grad().unwrap());
            assert_bits_equal("cross kv grad", &kv2.grad().unwrap(), &kv.grad().unwrap());
        }
    }
}
