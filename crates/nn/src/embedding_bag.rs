//! Pooled embedding lookup — DLRM's sparse-feature motif.

use crate::Module;
use mlperf_autograd::Var;
use mlperf_tensor::{Tensor, TensorRng};

/// How an [`EmbeddingBag`] pools the vectors of one bag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BagMode {
    /// Sum the bag's embedding vectors.
    Sum,
    /// Average the bag's embedding vectors.
    Mean,
}

/// An embedding table read through variable-length *bags* of ids, each
/// bag pooled to one vector — the lookup DLRM performs for its
/// multi-valued categorical features (PyTorch's `EmbeddingBag`).
#[derive(Debug)]
pub struct EmbeddingBag {
    table: Var,
    vocab: usize,
    dim: usize,
    mode: BagMode,
}

impl EmbeddingBag {
    /// Creates a `[vocab, dim]` table with the same N(0, √dim⁻¹)
    /// initialization as [`Embedding`](crate::Embedding).
    pub fn new(vocab: usize, dim: usize, mode: BagMode, rng: &mut TensorRng) -> Self {
        let std = 1.0 / (dim as f32).sqrt();
        EmbeddingBag { table: Var::param(rng.normal(&[vocab, dim], 0.0, std)), vocab, dim, mode }
    }

    /// Pools each bag of ids to one vector, returning
    /// `[bags.len(), dim]`.
    ///
    /// The pooling is expressed as one selection matmul over the
    /// gathered rows, so gradients flow back to every looked-up table
    /// row (with repeats accumulating, like `Embedding`).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, an empty bag, or an out-of-vocabulary
    /// id.
    pub fn forward(&self, bags: &[Vec<usize>]) -> Var {
        assert!(!bags.is_empty(), "empty batch");
        let flat: Vec<usize> = bags
            .iter()
            .flat_map(|bag| {
                assert!(!bag.is_empty(), "empty bag");
                bag.iter().copied()
            })
            .collect();
        for &id in &flat {
            assert!(id < self.vocab, "id {id} out of vocabulary {}", self.vocab);
        }
        let gathered = self.table.gather_rows(&flat);
        // [bags, total] selection matrix: 1 (or 1/len for Mean) where
        // the flattened row belongs to the bag.
        let mut sel = vec![0.0f32; bags.len() * flat.len()];
        let mut offset = 0;
        for (b, bag) in bags.iter().enumerate() {
            let w = match self.mode {
                BagMode::Sum => 1.0,
                BagMode::Mean => 1.0 / bag.len() as f32,
            };
            for i in 0..bag.len() {
                sel[b * flat.len() + offset + i] = w;
            }
            offset += bag.len();
        }
        Var::constant(Tensor::from_vec(sel, &[bags.len(), flat.len()])).matmul(&gathered)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The table parameter.
    pub fn table(&self) -> &Var {
        &self.table
    }
}

impl Module for EmbeddingBag {
    fn params(&self) -> Vec<Var> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_shapes() {
        let mut rng = TensorRng::new(0);
        let e = EmbeddingBag::new(10, 4, BagMode::Sum, &mut rng);
        let out = e.forward(&[vec![1], vec![2, 3, 4]]);
        assert_eq!(out.shape(), vec![2, 4]);
    }

    #[test]
    fn sum_mode_adds_bag_vectors() {
        let mut rng = TensorRng::new(1);
        let e = EmbeddingBag::new(6, 3, BagMode::Sum, &mut rng);
        let single = e.forward(&[vec![2], vec![5]]);
        let pooled = e.forward(&[vec![2, 5]]);
        let expect: Vec<f32> =
            (0..3).map(|i| single.value().data()[i] + single.value().data()[3 + i]).collect();
        for (a, b) in pooled.value().data().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_mode_divides_by_bag_length() {
        let mut rng = TensorRng::new(2);
        let e = EmbeddingBag::new(6, 2, BagMode::Mean, &mut rng);
        let sum = {
            let mut rng2 = TensorRng::new(2);
            EmbeddingBag::new(6, 2, BagMode::Sum, &mut rng2).forward(&[vec![1, 3]])
        };
        let mean = e.forward(&[vec![1, 3]]);
        for (m, s) in mean.value().data().iter().zip(sum.value().data()) {
            assert!((m - s / 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_accumulate_per_bag_member() {
        let mut rng = TensorRng::new(3);
        let e = EmbeddingBag::new(5, 2, BagMode::Sum, &mut rng);
        e.forward(&[vec![4, 4], vec![0]]).sum().backward();
        let g = e.table().grad().unwrap();
        assert_eq!(g.data()[4 * 2], 2.0);
        assert_eq!(g.data()[0], 1.0);
        assert_eq!(g.data()[1 * 2], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let mut rng = TensorRng::new(4);
        EmbeddingBag::new(5, 2, BagMode::Sum, &mut rng).forward(&[vec![5]]);
    }
}
