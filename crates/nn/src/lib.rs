//! Neural-network layers for the MLPerf Training reproduction.
//!
//! Every layer owns its parameters as [`mlperf_autograd::Var`] leaves and
//! exposes them through the [`Module`] trait so optimizers can iterate
//! over them uniformly. Layers are deliberately close to their framework
//! counterparts (PyTorch naming, Kaiming/Xavier initialization) because
//! the paper's Closed division requires submissions to be mathematically
//! equivalent to reference implementations — this crate *is* the
//! reference implementation layer zoo.
//!
//! ```
//! use mlperf_nn::{Linear, Module};
//! use mlperf_autograd::Var;
//! use mlperf_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::new(0);
//! let layer = Linear::new(4, 2, true, &mut rng);
//! let x = Var::constant(Tensor::ones(&[3, 4]));
//! let y = layer.forward(&x);
//! assert_eq!(y.shape(), vec![3, 2]);
//! assert_eq!(layer.params().len(), 2);
//! ```

#![warn(missing_docs)]

mod attention;
mod conv;
mod ctc;
mod embedding;
mod embedding_bag;
mod linear;
mod mlm;
mod norm;
mod rnn;

pub use attention::{causal_mask, MultiHeadAttention};
pub use conv::Conv2d;
pub use ctc::{ctc_alignment_loss, edit_distance, greedy_ctc_decode, label_error_rate};
pub use embedding::Embedding;
pub use embedding_bag::{BagMode, EmbeddingBag};
pub use linear::Linear;
pub use mlm::MaskedLmHead;
pub use norm::{BatchNorm2d, LayerNorm};
pub use rnn::{LstmCell, LstmState};

use mlperf_autograd::Var;

/// A collection of trainable parameters.
///
/// Implemented by every layer and by every model in `mlperf-models`;
/// optimizers consume the parameter list this trait exposes.
pub trait Module {
    /// The trainable parameter leaves, in a stable order.
    fn params(&self) -> Vec<Var>;

    /// Clears accumulated gradients on every parameter.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.value().len()).sum()
    }
}

impl<M: Module + ?Sized> Module for &M {
    fn params(&self) -> Vec<Var> {
        (**self).params()
    }
}

/// Concatenates the parameter lists of several modules (helper for
/// composite models).
pub fn collect_params(modules: &[&dyn Module]) -> Vec<Var> {
    modules.iter().flat_map(|m| m.params()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_tensor::TensorRng;

    #[test]
    fn collect_params_concatenates() {
        let mut rng = TensorRng::new(1);
        let a = Linear::new(2, 2, true, &mut rng);
        let b = Linear::new(2, 2, false, &mut rng);
        let ps = collect_params(&[&a, &b]);
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn num_params_counts_scalars() {
        let mut rng = TensorRng::new(2);
        let l = Linear::new(3, 5, true, &mut rng);
        assert_eq!(l.num_params(), 3 * 5 + 5);
    }
}
