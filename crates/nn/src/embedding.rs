//! Embedding table.

use crate::Module;
use mlperf_autograd::Var;
use mlperf_tensor::TensorRng;

/// A lookup table mapping integer ids to dense vectors, the dominant
/// compute motif of the recommendation benchmark (NCF) and the token
/// embedding of the translation benchmarks.
#[derive(Debug)]
pub struct Embedding {
    table: Var,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a `[vocab, dim]` table with N(0, 0.01·√dim⁻¹)-style
    /// normal initialization.
    pub fn new(vocab: usize, dim: usize, rng: &mut TensorRng) -> Self {
        let std = 1.0 / (dim as f32).sqrt();
        Embedding { table: Var::param(rng.normal(&[vocab, dim], 0.0, std)), vocab, dim }
    }

    /// Looks up `ids`, returning `[ids.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn forward(&self, ids: &[usize]) -> Var {
        for &id in ids {
            assert!(id < self.vocab, "id {id} out of vocabulary {}", self.vocab);
        }
        self.table.gather_rows(ids)
    }

    /// Looks up a batch of sequences, returning `[batch, seq, dim]`.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or ids are out of range.
    pub fn forward_batch(&self, sequences: &[Vec<usize>]) -> Var {
        assert!(!sequences.is_empty(), "empty batch");
        let seq_len = sequences[0].len();
        let flat: Vec<usize> = sequences
            .iter()
            .flat_map(|s| {
                assert_eq!(s.len(), seq_len, "ragged batch");
                s.iter().copied()
            })
            .collect();
        self.forward(&flat).reshape(&[sequences.len(), seq_len, self.dim])
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The table parameter.
    pub fn table(&self) -> &Var {
        &self.table
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Var> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_shapes() {
        let mut rng = TensorRng::new(0);
        let e = Embedding::new(10, 4, &mut rng);
        assert_eq!(e.forward(&[1, 2, 3]).shape(), vec![3, 4]);
        assert_eq!(e.forward_batch(&[vec![0, 1], vec![2, 3]]).shape(), vec![2, 2, 4]);
    }

    #[test]
    fn repeated_ids_accumulate_gradient() {
        let mut rng = TensorRng::new(1);
        let e = Embedding::new(5, 2, &mut rng);
        e.forward(&[3, 3, 3]).sum().backward();
        let g = e.table().grad().unwrap();
        assert_eq!(g.data()[3 * 2], 3.0);
        assert_eq!(g.data()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let mut rng = TensorRng::new(2);
        let e = Embedding::new(5, 2, &mut rng);
        e.forward(&[5]);
    }
}
