//! Fully connected layer.

use crate::Module;
use mlperf_autograd::Var;
use mlperf_tensor::TensorRng;

/// A fully connected (dense) layer: `y = x W + b`.
///
/// Weights are stored `[in_features, out_features]` and initialized with
/// Kaiming-uniform scaling; the bias starts at zero.
#[derive(Debug)]
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut TensorRng) -> Self {
        // Kaiming expects fan-in as the trailing product; our storage is
        // [in, out], so initialize the transposed view and transpose.
        let w = rng.kaiming_uniform(&[out_features, in_features]).transpose();
        Linear {
            weight: Var::param(w),
            bias: bias.then(|| Var::param(mlperf_tensor::Tensor::zeros(&[out_features]))),
            in_features,
            out_features,
        }
    }

    /// Applies the layer to a `[batch, in_features]` input.
    ///
    /// Inputs of higher rank are flattened over the leading dimensions
    /// and restored afterwards, mirroring PyTorch semantics.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimension differs from `in_features`.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        let last = *shape.last().expect("linear input must have rank >= 1");
        assert_eq!(
            last, self.in_features,
            "linear expects trailing dim {}, got {last}",
            self.in_features
        );
        let lead: usize = shape[..shape.len() - 1].iter().product();
        let flat = x.reshape(&[lead, self.in_features]);
        let y = match &self.bias {
            Some(b) => flat.matmul_bias(&self.weight, b),
            None => flat.matmul(&self.weight),
        };
        let mut out_shape = shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_features;
        y.reshape(&out_shape)
    }

    /// The input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter (`[in, out]`).
    pub fn weight(&self) -> &Var {
        &self.weight
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Var> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_autograd::Var;
    use mlperf_tensor::Tensor;

    #[test]
    fn forward_shape_2d_and_3d() {
        let mut rng = TensorRng::new(0);
        let l = Linear::new(4, 6, true, &mut rng);
        let x2 = Var::constant(Tensor::ones(&[5, 4]));
        assert_eq!(l.forward(&x2).shape(), vec![5, 6]);
        let x3 = Var::constant(Tensor::ones(&[2, 3, 4]));
        assert_eq!(l.forward(&x3).shape(), vec![2, 3, 6]);
    }

    #[test]
    fn gradients_reach_weight_and_bias() {
        let mut rng = TensorRng::new(1);
        let l = Linear::new(3, 2, true, &mut rng);
        let x = Var::constant(Tensor::ones(&[4, 3]));
        l.forward(&x).sum().backward();
        for p in l.params() {
            assert!(p.grad().is_some(), "parameter missing gradient");
        }
        // Bias gradient is the batch size for a sum loss.
        assert_eq!(l.params()[1].grad().unwrap().data(), &[4.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "trailing dim")]
    fn wrong_input_width_panics() {
        let mut rng = TensorRng::new(2);
        let l = Linear::new(3, 2, false, &mut rng);
        l.forward(&Var::constant(Tensor::ones(&[1, 4])));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = TensorRng::new(7);
        let mut r2 = TensorRng::new(7);
        let a = Linear::new(8, 8, true, &mut r1);
        let b = Linear::new(8, 8, true, &mut r2);
        assert_eq!(a.weight().value_clone(), b.weight().value_clone());
    }
}
