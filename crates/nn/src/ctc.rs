//! CTC-style alignment loss and greedy decoding — the transducer
//! objective of the RNN-T speech benchmark, miniaturized.
//!
//! The full RNN-T loss marginalizes over all alignments with a
//! forward-backward pass. This reproduction keeps the parts that shape
//! the workload — a blank symbol, framewise emission training, and
//! collapse-repeats/drop-blanks decoding — but trains against the
//! generator's known frame alignment instead of marginalizing, the same
//! time-to-quality substitution the miniature datasets make.

use mlperf_autograd::Var;
use mlperf_tensor::Tensor;

/// Framewise cross-entropy of `logits` (`[batch, frames, classes]`,
/// class `blank` included) against per-frame target alignments.
///
/// # Panics
///
/// Panics when an alignment's length differs from the frame count or a
/// label is out of range.
pub fn ctc_alignment_loss(logits: &Var, alignments: &[Vec<usize>]) -> Var {
    let shape = logits.shape();
    assert_eq!(shape.len(), 3, "logits must be [batch, frames, classes]");
    let (batch, frames, classes) = (shape[0], shape[1], shape[2]);
    assert_eq!(alignments.len(), batch, "one alignment per sequence");
    let mut labels = Vec::with_capacity(batch * frames);
    for alignment in alignments {
        assert_eq!(alignment.len(), frames, "alignment must label every frame");
        for &l in alignment {
            assert!(l < classes, "label {l} out of range for {classes} classes");
        }
        labels.extend_from_slice(alignment);
    }
    logits.reshape(&[batch * frames, classes]).cross_entropy_logits(&labels)
}

/// Greedy CTC decoding: per-frame argmax, collapse repeats, drop
/// `blank`. Returns one label sequence per batch row.
pub fn greedy_ctc_decode(logits: &Tensor, blank: usize) -> Vec<Vec<usize>> {
    let shape = logits.shape();
    assert_eq!(shape.len(), 3, "logits must be [batch, frames, classes]");
    let (batch, frames) = (shape[0], shape[1]);
    let frame_argmax = logits.argmax_last_axis();
    (0..batch)
        .map(|b| {
            let mut out = Vec::new();
            let mut prev = usize::MAX;
            for &label in &frame_argmax[b * frames..(b + 1) * frames] {
                if label != blank && label != prev {
                    out.push(label);
                }
                prev = label;
            }
            out
        })
        .collect()
}

/// Levenshtein edit distance between two label sequences.
pub fn edit_distance(a: &[usize], b: &[usize]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &x) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Corpus-level error rate: total edit distance over total reference
/// length — WER with labels standing in for words.
///
/// # Panics
///
/// Panics when the corpora differ in length or the references are
/// empty.
pub fn label_error_rate(hypotheses: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(hypotheses.len(), references.len(), "one hypothesis per reference");
    let total: usize = references.iter().map(Vec::len).sum();
    assert!(total > 0, "empty reference corpus");
    let errors: usize = hypotheses.iter().zip(references).map(|(h, r)| edit_distance(h, r)).sum();
    errors as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_for(frames: &[usize], classes: usize) -> Tensor {
        // One-hot-ish logits: 5.0 on the chosen class per frame.
        let mut data = vec![0.0f32; frames.len() * classes];
        for (t, &c) in frames.iter().enumerate() {
            data[t * classes + c] = 5.0;
        }
        Tensor::from_vec(data, &[1, frames.len(), classes])
    }

    #[test]
    fn decode_collapses_repeats_and_drops_blanks() {
        // blank = 0; frames spell out "1 1 0 2 2 0 1".
        let decoded = greedy_ctc_decode(&logits_for(&[1, 1, 0, 2, 2, 0, 1], 4), 0);
        assert_eq!(decoded, vec![vec![1, 2, 1]]);
    }

    #[test]
    fn decode_keeps_separated_duplicates() {
        let decoded = greedy_ctc_decode(&logits_for(&[3, 0, 3], 4), 0);
        assert_eq!(decoded, vec![vec![3, 3]]);
    }

    #[test]
    fn edit_distance_matches_hand_counts() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(edit_distance(&[], &[4, 5]), 2);
        assert_eq!(edit_distance(&[1, 2], &[2, 1]), 2);
    }

    #[test]
    fn error_rate_is_corpus_level() {
        let refs = vec![vec![1, 2], vec![3, 4, 5, 6]];
        let hyps = vec![vec![1, 2], vec![3, 4, 5, 9]];
        // 1 error over 6 reference labels.
        assert!((label_error_rate(&hyps, &refs) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn alignment_loss_trains_toward_the_alignment() {
        let logits = Var::param(Tensor::zeros(&[1, 3, 4]));
        let loss = ctc_alignment_loss(&logits, &[vec![0, 2, 0]]);
        loss.backward();
        let g = logits.grad().unwrap();
        // Gradient pushes the aligned class up (negative grad) on every
        // frame.
        assert!(g.data()[0] < 0.0); // frame 0, class 0
        assert!(g.data()[4 + 2] < 0.0); // frame 1, class 2
        assert!(g.data()[8] < 0.0); // frame 2, class 0
    }

    #[test]
    #[should_panic(expected = "alignment must label every frame")]
    fn short_alignment_panics() {
        ctc_alignment_loss(&Var::constant(Tensor::zeros(&[1, 3, 4])), &[vec![0, 1]]);
    }
}
