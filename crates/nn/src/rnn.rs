//! Recurrent cells. GNMT (the suite's RNN representative) is built from
//! stacked LSTM cells.

use crate::Module;
use mlperf_autograd::Var;
use mlperf_tensor::{Tensor, TensorRng};

/// A single LSTM cell with combined gate projection.
///
/// Gate order in the packed `[.., 4*hidden]` projections is
/// input, forget, cell (candidate), output. The forget-gate bias is
/// initialized to 1, the standard trick for stable early training.
#[derive(Debug)]
pub struct LstmCell {
    wx: Var,
    wh: Var,
    bias: Var,
    input_size: usize,
    hidden_size: usize,
}

/// Hidden and cell state of an LSTM layer for one batch.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden state `[batch, hidden]`.
    pub h: Var,
    /// Cell state `[batch, hidden]`.
    pub c: Var,
}

impl LstmCell {
    /// Creates a cell with Xavier-uniform projections.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut TensorRng) -> Self {
        let wx = rng.xavier_uniform(&[4 * hidden_size, input_size]).transpose();
        let wh = rng.xavier_uniform(&[4 * hidden_size, hidden_size]).transpose();
        let mut bias = Tensor::zeros(&[4 * hidden_size]);
        // Forget-gate slice starts after the input gate.
        for i in hidden_size..2 * hidden_size {
            bias.data_mut()[i] = 1.0;
        }
        LstmCell {
            wx: Var::param(wx),
            wh: Var::param(wh),
            bias: Var::param(bias),
            input_size,
            hidden_size,
        }
    }

    /// Zeroed initial state for a batch.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        LstmState {
            h: Var::constant(Tensor::zeros(&[batch, self.hidden_size])),
            c: Var::constant(Tensor::zeros(&[batch, self.hidden_size])),
        }
    }

    /// Advances one timestep: `x` is `[batch, input_size]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or the state have mismatched widths.
    pub fn step(&self, x: &Var, state: &LstmState) -> LstmState {
        assert_eq!(
            x.shape()[1],
            self.input_size,
            "lstm expects input width {}, got {}",
            self.input_size,
            x.shape()[1]
        );
        let h = self.hidden_size;
        let gates = x.matmul(&self.wx).add(&state.h.matmul(&self.wh)).add(&self.bias);
        let i = gates.narrow(1, 0, h).sigmoid();
        let f = gates.narrow(1, h, h).sigmoid();
        let g = gates.narrow(1, 2 * h, h).tanh();
        let o = gates.narrow(1, 3 * h, h).sigmoid();
        let c = f.mul(&state.c).add(&i.mul(&g));
        let hh = o.mul(&c.tanh());
        LstmState { h: hh, c }
    }

    /// Runs the cell over a full sequence `[batch, time, input_size]`,
    /// returning all hidden states stacked as `[batch, time, hidden]`
    /// and the final state.
    pub fn run(&self, xs: &Var, init: &LstmState) -> (Var, LstmState) {
        let shape = xs.shape();
        assert_eq!(shape.len(), 3, "lstm run expects [batch, time, input]");
        let (batch, time, _) = (shape[0], shape[1], shape[2]);
        let mut state = init.clone();
        let mut outputs = Vec::with_capacity(time);
        for t in 0..time {
            let xt = xs.narrow(1, t, 1).reshape(&[batch, self.input_size]);
            state = self.step(&xt, &state);
            outputs.push(state.h.reshape(&[batch, 1, self.hidden_size]));
        }
        let refs: Vec<&Var> = outputs.iter().collect();
        (Var::concat(&refs, 1), state)
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }
}

impl Module for LstmCell {
    fn params(&self) -> Vec<Var> {
        vec![self.wx.clone(), self.wh.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_shapes_and_bounds() {
        let mut rng = TensorRng::new(0);
        let cell = LstmCell::new(3, 5, &mut rng);
        let state = cell.zero_state(2);
        let x = Var::constant(rng.normal(&[2, 3], 0.0, 1.0));
        let next = cell.step(&x, &state);
        assert_eq!(next.h.shape(), vec![2, 5]);
        assert_eq!(next.c.shape(), vec![2, 5]);
        // tanh(o * tanh(c)) keeps h in (-1, 1).
        assert!(next.h.value().data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn run_stacks_time_steps() {
        let mut rng = TensorRng::new(1);
        let cell = LstmCell::new(2, 4, &mut rng);
        let xs = Var::constant(rng.normal(&[3, 6, 2], 0.0, 1.0));
        let (ys, last) = cell.run(&xs, &cell.zero_state(3));
        assert_eq!(ys.shape(), vec![3, 6, 4]);
        // Final slice of ys equals final hidden state.
        let tail = ys.value().narrow(1, 5, 1).reshape(&[3, 4]);
        assert_eq!(tail, last.h.value_clone());
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = TensorRng::new(2);
        let cell = LstmCell::new(2, 3, &mut rng);
        let xs = Var::constant(rng.normal(&[1, 4, 2], 0.0, 1.0));
        let (ys, _) = cell.run(&xs, &cell.zero_state(1));
        ys.sum().backward();
        for p in cell.params() {
            let g = p.grad().expect("grad missing");
            assert!(g.norm() > 0.0, "zero gradient through time");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = TensorRng::new(3);
        let cell = LstmCell::new(2, 3, &mut rng);
        let b = cell.params()[2].value_clone();
        assert_eq!(&b.data()[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&b.data()[0..3], &[0.0, 0.0, 0.0]);
    }
}
