//! Masked-language-model head — BERT's pretraining objective over an
//! encoder stack.

use crate::{collect_params, LayerNorm, Linear, Module};
use mlperf_autograd::Var;
use mlperf_tensor::TensorRng;

/// The BERT masked-LM head: a dense transform with nonlinearity and
/// layer norm, then a projection to vocabulary logits. The loss is
/// cross-entropy over the *masked positions only* — unmasked tokens
/// contribute nothing, exactly the sparse supervision that makes the
/// objective self-supervised.
#[derive(Debug)]
pub struct MaskedLmHead {
    transform: Linear,
    norm: LayerNorm,
    proj: Linear,
    vocab: usize,
}

impl MaskedLmHead {
    /// Creates a head for `model_dim`-wide encoder states over a
    /// `vocab`-token vocabulary.
    pub fn new(model_dim: usize, vocab: usize, rng: &mut TensorRng) -> Self {
        MaskedLmHead {
            transform: Linear::new(model_dim, model_dim, true, rng),
            norm: LayerNorm::new(model_dim),
            proj: Linear::new(model_dim, vocab, true, rng),
            vocab,
        }
    }

    /// Vocabulary logits `[batch, seq, vocab]` for encoder states
    /// `[batch, seq, model_dim]`.
    pub fn forward(&self, hidden: &Var) -> Var {
        self.proj.forward(&self.norm.forward(&self.transform.forward(hidden).relu()))
    }

    /// Cross-entropy over the masked positions.
    ///
    /// `hidden` is `[batch, seq, model_dim]`; each entry of `masked`
    /// names one supervised position `(batch, seq, original_token)`.
    ///
    /// # Panics
    ///
    /// Panics when `masked` is empty or names an out-of-range position
    /// or token.
    pub fn loss(&self, hidden: &Var, masked: &[(usize, usize, usize)]) -> Var {
        let (rows, labels) = self.masked_rows(hidden, masked);
        let shape = hidden.shape();
        let flat = self.forward(hidden).reshape(&[shape[0] * shape[1], self.vocab]);
        flat.gather_rows(&rows).cross_entropy_logits(&labels)
    }

    /// Fraction of masked positions whose argmax logit is the original
    /// token — the paper's masked-LM accuracy metric.
    pub fn accuracy(&self, hidden: &Var, masked: &[(usize, usize, usize)]) -> f64 {
        let (rows, labels) = self.masked_rows(hidden, masked);
        let shape = hidden.shape();
        let flat = self.forward(hidden).reshape(&[shape[0] * shape[1], self.vocab]);
        let predicted = flat.value().gather_rows(&rows).argmax_last_axis();
        let hits = predicted.iter().zip(&labels).filter(|(p, l)| p == l).count();
        hits as f64 / labels.len() as f64
    }

    /// Flattened row indices and labels for the masked positions.
    fn masked_rows(
        &self,
        hidden: &Var,
        masked: &[(usize, usize, usize)],
    ) -> (Vec<usize>, Vec<usize>) {
        assert!(!masked.is_empty(), "no masked positions");
        let shape = hidden.shape();
        let (batch, seq) = (shape[0], shape[1]);
        let mut rows = Vec::with_capacity(masked.len());
        let mut labels = Vec::with_capacity(masked.len());
        for &(b, t, token) in masked {
            assert!(b < batch && t < seq, "masked position ({b}, {t}) out of range");
            assert!(token < self.vocab, "token {token} out of vocabulary {}", self.vocab);
            rows.push(b * seq + t);
            labels.push(token);
        }
        (rows, labels)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

impl Module for MaskedLmHead {
    fn params(&self) -> Vec<Var> {
        collect_params(&[&self.transform, &self.norm, &self.proj])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_tensor::Tensor;

    #[test]
    fn logits_cover_the_vocabulary() {
        let mut rng = TensorRng::new(0);
        let head = MaskedLmHead::new(8, 12, &mut rng);
        let hidden = Var::constant(Tensor::ones(&[2, 5, 8]));
        assert_eq!(head.forward(&hidden).shape(), vec![2, 5, 12]);
    }

    #[test]
    fn loss_only_sees_masked_positions() {
        let mut rng = TensorRng::new(1);
        let head = MaskedLmHead::new(4, 6, &mut rng);
        let hidden = Var::param(TensorRng::new(9).normal(&[1, 3, 4], 0.0, 1.0));
        head.loss(&hidden, &[(0, 1, 2)]).backward();
        let g = hidden.grad().unwrap();
        // Gradient reaches only the supervised time step.
        let row = |t: usize| &g.data()[t * 4..(t + 1) * 4];
        assert!(row(1).iter().any(|v| *v != 0.0));
        assert!(row(0).iter().all(|v| *v == 0.0));
        assert!(row(2).iter().all(|v| *v == 0.0));
    }

    #[test]
    fn accuracy_is_a_fraction() {
        let mut rng = TensorRng::new(2);
        let head = MaskedLmHead::new(4, 6, &mut rng);
        let hidden = Var::constant(TensorRng::new(3).normal(&[2, 4, 4], 0.0, 1.0));
        let acc = head.accuracy(&hidden, &[(0, 0, 1), (1, 3, 5)]);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        let mut rng = TensorRng::new(4);
        let head = MaskedLmHead::new(4, 6, &mut rng);
        head.loss(&Var::constant(Tensor::ones(&[1, 2, 4])), &[(0, 2, 0)]);
    }
}
