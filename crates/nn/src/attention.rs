//! Multi-head scaled dot-product attention (the Transformer benchmark's
//! core operator).

use crate::{Linear, Module};
use mlperf_autograd::Var;
use mlperf_tensor::{BackendKind, Tensor, TensorRng};

/// Multi-head attention with separate query/key/value/output
/// projections, after Vaswani et al. (2017).
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    model_dim: usize,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block.
    ///
    /// # Panics
    ///
    /// Panics if `model_dim` is not divisible by `heads`.
    pub fn new(model_dim: usize, heads: usize, rng: &mut TensorRng) -> Self {
        assert_eq!(model_dim % heads, 0, "model dim {model_dim} not divisible by {heads} heads");
        MultiHeadAttention {
            wq: Linear::new(model_dim, model_dim, false, rng),
            wk: Linear::new(model_dim, model_dim, false, rng),
            wv: Linear::new(model_dim, model_dim, false, rng),
            wo: Linear::new(model_dim, model_dim, false, rng),
            model_dim,
            heads,
            head_dim: model_dim / heads,
        }
    }

    /// Attends `query` over `key`/`value`.
    ///
    /// All inputs are `[batch, time, model_dim]`; `mask`, if present, is
    /// `[t_q, t_k]` with 0 for visible and `-inf`-like large negatives
    /// for hidden positions (use [`causal_mask`]).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn forward(&self, query: &Var, key: &Var, value: &Var, mask: Option<&Tensor>) -> Var {
        let (b, tq, d) = dims3(query);
        let (_, tk, _) = dims3(key);
        assert_eq!(d, self.model_dim, "attention model-dim mismatch");
        if query.value().backend() == BackendKind::Blocked {
            // One fused graph node for everything between the q/k/v
            // projections and the output projection, bit-identical to
            // the composition below.
            let merged = Var::attention_core(
                &self.wq.forward(query),
                &self.wk.forward(key),
                &self.wv.forward(value),
                mask,
                self.heads,
            );
            return self.wo.forward(&merged);
        }
        let q = self.split_heads(&self.wq.forward(query), b, tq);
        let k = self.split_heads(&self.wk.forward(key), b, tk);
        let v = self.split_heads(&self.wv.forward(value), b, tk);
        // [b*h, tq, dh] x [b*h, dh, tk] -> [b*h, tq, tk]
        let mut scores = q.bmm(&k.permute(&[0, 2, 1])).scale(1.0 / (self.head_dim as f32).sqrt());
        if let Some(m) = mask {
            assert_eq!(m.shape(), &[tq, tk], "mask must be [t_q, t_k]");
            scores = scores.add(&Var::constant(m.clone()));
        }
        let attn = scores.softmax_last_axis();
        let ctx = attn.bmm(&v); // [b*h, tq, dh]
        let merged = ctx
            .reshape(&[b, self.heads, tq, self.head_dim])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b, tq, self.model_dim]);
        self.wo.forward(&merged)
    }

    /// Self-attention convenience: query = key = value.
    pub fn self_attention(&self, x: &Var, mask: Option<&Tensor>) -> Var {
        self.forward(x, x, x, mask)
    }

    fn split_heads(&self, x: &Var, b: usize, t: usize) -> Var {
        x.reshape(&[b, t, self.heads, self.head_dim]).permute(&[0, 2, 1, 3]).reshape(&[
            b * self.heads,
            t,
            self.head_dim,
        ])
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Var> {
        [&self.wq, &self.wk, &self.wv, &self.wo].iter().flat_map(|l| l.params()).collect()
    }
}

/// Builds a `[t, t]` causal mask: 0 on and below the diagonal, a large
/// negative value above (so softmax assigns ~0 weight to the future).
pub fn causal_mask(t: usize) -> Tensor {
    let mut m = Tensor::zeros(&[t, t]);
    for i in 0..t {
        for j in (i + 1)..t {
            m.data_mut()[i * t + j] = -1e9;
        }
    }
    m
}

fn dims3(v: &Var) -> (usize, usize, usize) {
    let s = v.shape();
    assert_eq!(s.len(), 3, "attention expects [batch, time, dim], got {s:?}");
    (s[0], s[1], s[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_matches_query() {
        let mut rng = TensorRng::new(0);
        let mha = MultiHeadAttention::new(8, 2, &mut rng);
        let q = Var::constant(rng.normal(&[2, 5, 8], 0.0, 1.0));
        let kv = Var::constant(rng.normal(&[2, 7, 8], 0.0, 1.0));
        let y = mha.forward(&q, &kv, &kv, None);
        assert_eq!(y.shape(), vec![2, 5, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut rng = TensorRng::new(1);
        let mha = MultiHeadAttention::new(4, 1, &mut rng);
        // Two inputs identical except at the final timestep must produce
        // identical outputs at position 0 under a causal mask.
        let mut a = rng.normal(&[1, 3, 4], 0.0, 1.0);
        let mut b = a.clone();
        for i in 8..12 {
            b.data_mut()[i] += 10.0; // perturb last timestep only
        }
        let mask = causal_mask(3);
        let ya = mha.self_attention(&Var::constant(a.clone()), Some(&mask));
        let yb = mha.self_attention(&Var::constant(b.clone()), Some(&mask));
        let first_a = ya.value().narrow(1, 0, 1).into_vec();
        let first_b = yb.value().narrow(1, 0, 1).into_vec();
        mlperf_tensor::assert_close(&first_a, &first_b, 1e-5);
        // Without the mask the outputs at position 0 must differ.
        let ya2 = mha.self_attention(&Var::constant(a.clone()), None);
        let yb2 = mha.self_attention(&Var::constant(b.clone()), None);
        let d: f32 = ya2
            .value()
            .narrow(1, 0, 1)
            .into_vec()
            .iter()
            .zip(yb2.value().narrow(1, 0, 1).into_vec().iter())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(d > 1e-4, "unmasked attention ignored the future");
        // Silence unused warnings for the perturbed buffers.
        let _ = (a.data_mut(), b.data_mut());
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut rng = TensorRng::new(2);
        let mha = MultiHeadAttention::new(8, 4, &mut rng);
        let x = Var::constant(rng.normal(&[1, 3, 8], 0.0, 1.0));
        mha.self_attention(&x, None).square().sum().backward();
        assert_eq!(mha.params().len(), 4);
        assert!(mha.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_panics() {
        let mut rng = TensorRng::new(3);
        MultiHeadAttention::new(6, 4, &mut rng);
    }

    #[test]
    fn attention_weights_are_permutation_sensitive() {
        // Attention over a permuted key sequence permutes nothing in the
        // output (it is a weighted sum) — verify outputs are equal when
        // keys and values are permuted together.
        let mut rng = TensorRng::new(4);
        let mha = MultiHeadAttention::new(4, 1, &mut rng);
        let q = Var::constant(rng.normal(&[1, 2, 4], 0.0, 1.0));
        let kv = rng.normal(&[1, 3, 4], 0.0, 1.0);
        let swapped = {
            let a = kv.narrow(1, 0, 1);
            let b = kv.narrow(1, 1, 1);
            let c = kv.narrow(1, 2, 1);
            Tensor::concat(&[&c, &b, &a], 1)
        };
        let y1 = mha.forward(&q, &Var::constant(kv.clone()), &Var::constant(kv), None);
        let y2 = mha.forward(&q, &Var::constant(swapped.clone()), &Var::constant(swapped), None);
        mlperf_tensor::assert_close(y1.value().data(), y2.value().data(), 1e-5);
    }
}
