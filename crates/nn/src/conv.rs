//! Convolutional layer.

use crate::Module;
use mlperf_autograd::Var;
use mlperf_tensor::{Conv2dSpec, Tensor, TensorRng};

/// A 2-D convolution layer over NCHW inputs.
#[derive(Debug)]
pub struct Conv2d {
    weight: Var,
    bias: Option<Var>,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl Conv2d {
    /// Creates a layer with Kaiming-uniform weights of shape
    /// `[out_channels, in_channels, kernel, kernel]`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        spec: Conv2dSpec,
        bias: bool,
        rng: &mut TensorRng,
    ) -> Self {
        let w = rng.kaiming_uniform(&[out_channels, in_channels, spec.kernel, spec.kernel]);
        Conv2d {
            weight: Var::param(w),
            bias: bias.then(|| Var::param(Tensor::zeros(&[out_channels]))),
            spec,
            in_channels,
            out_channels,
        }
    }

    /// Applies the convolution to `[n, in_channels, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if the channel count disagrees.
    pub fn forward(&self, x: &Var) -> Var {
        assert_eq!(
            x.shape()[1],
            self.in_channels,
            "conv2d expects {} input channels, got {}",
            self.in_channels,
            x.shape()[1]
        );
        x.conv2d(&self.weight, self.bias.as_ref(), self.spec)
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Var {
        &self.weight
    }
}

impl Module for Conv2d {
    fn params(&self) -> Vec<Var> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_preserves_spatial_extent() {
        let mut rng = TensorRng::new(0);
        let c = Conv2d::new(3, 8, Conv2dSpec::new(3, 1, 1), true, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 3, 7, 7]));
        let y = c.forward(&x);
        assert_eq!(y.shape(), vec![2, 8, 7, 7]);
    }

    #[test]
    fn stride_two_halves_extent() {
        let mut rng = TensorRng::new(1);
        let c = Conv2d::new(1, 4, Conv2dSpec::new(3, 2, 1), false, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 1, 8, 8]));
        assert_eq!(c.forward(&x).shape(), vec![1, 4, 4, 4]);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = TensorRng::new(2);
        let c = Conv2d::new(2, 2, Conv2dSpec::new(3, 1, 1), true, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 2, 4, 4]));
        c.forward(&x).sum().backward();
        assert!(c.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_panics() {
        let mut rng = TensorRng::new(3);
        let c = Conv2d::new(3, 4, Conv2dSpec::new(3, 1, 1), false, &mut rng);
        c.forward(&Var::constant(Tensor::ones(&[1, 2, 4, 4])));
    }
}
