//! Normalization layers: batch normalization (NCHW) and layer
//! normalization (last axis).

use crate::Module;
use mlperf_autograd::Var;
use mlperf_tensor::{BackendKind, Tensor};
use std::cell::RefCell;

/// Batch normalization over the channel dimension of NCHW inputs, with
/// running statistics for evaluation mode.
///
/// The ResNet-50 v1.5 definition in the paper pins down exactly where
/// batch norm sits relative to the residual addition; the model crate
/// relies on this layer matching the standard semantics (biased batch
/// variance in training, running estimates at eval).
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    running_mean: RefCell<Tensor>,
    running_var: RefCell<Tensor>,
    channels: usize,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a layer with unit scale, zero shift, and running stats
    /// initialized to the standard normal.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Var::param(Tensor::ones(&[channels])),
            beta: Var::param(Tensor::zeros(&[channels])),
            running_mean: RefCell::new(Tensor::zeros(&[channels])),
            running_var: RefCell::new(Tensor::ones(&[channels])),
            channels,
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Sets the running-statistics momentum (default 0.1).
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Normalizes `[n, channels, h, w]`. In training mode batch
    /// statistics are used (and folded into the running estimates); in
    /// eval mode the running estimates are used.
    ///
    /// # Panics
    ///
    /// Panics if the channel count disagrees.
    pub fn forward(&self, x: &Var, training: bool) -> Var {
        let s = x.shape();
        assert_eq!(s.len(), 4, "batch norm expects NCHW input");
        assert_eq!(s[1], self.channels, "batch norm channel mismatch");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let m = n * h * w;
        // [n,c,h,w] -> [c, n*h*w]
        let xt = x.permute(&[1, 0, 2, 3]).reshape(&[c, m]);
        let (mean, var) = if training {
            let mean = xt.mean_axis(1, true); // [c,1]
            let centered = xt.sub(&mean);
            let var = centered.square().mean_axis(1, true); // biased
                                                            // Fold into running statistics (detached).
            {
                let mut rm = self.running_mean.borrow_mut();
                let mv = mean.value_clone().reshape(&[c]);
                rm.scale_inplace(1.0 - self.momentum);
                rm.axpy(self.momentum, &mv);
                let mut rv = self.running_var.borrow_mut();
                let vv = var.value_clone().reshape(&[c]);
                rv.scale_inplace(1.0 - self.momentum);
                rv.axpy(self.momentum, &vv);
            }
            (mean, var)
        } else {
            let mean = Var::constant(self.running_mean.borrow().reshape(&[c, 1]));
            let var = Var::constant(self.running_var.borrow().reshape(&[c, 1]));
            (mean, var)
        };
        let inv_std = var.add_scalar(self.eps).sqrt();
        let norm = xt.sub(&mean).div(&inv_std);
        let y = norm.mul(&self.gamma.reshape(&[c, 1])).add(&self.beta.reshape(&[c, 1]));
        y.reshape(&[c, n, h, w]).permute(&[1, 0, 2, 3])
    }

    /// The running mean estimate.
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.borrow().clone()
    }

    /// The running variance estimate.
    pub fn running_var(&self) -> Tensor {
        self.running_var.borrow().clone()
    }
}

impl Module for BatchNorm2d {
    fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Layer normalization over the trailing dimension, as used by the
/// Transformer benchmark.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer normalizing a trailing dimension of width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Var::param(Tensor::ones(&[dim])),
            beta: Var::param(Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalizes the last axis of `x`.
    ///
    /// On the `Blocked` backend this runs as a single fused graph node
    /// (bit-identical to the composition below — see
    /// `mlperf-autograd`'s fused module); the `Reference` backend keeps
    /// the primitive-op composition.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimension differs from `dim`.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        let last_axis = shape.len() - 1;
        assert_eq!(
            shape[last_axis], self.dim,
            "layer norm expects trailing dim {}, got {}",
            self.dim, shape[last_axis]
        );
        if x.value().backend() == BackendKind::Blocked {
            return x.layer_norm_fused(&self.gamma, &self.beta, self.eps);
        }
        let mean = x.mean_axis(last_axis, true);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(last_axis, true);
        let norm = centered.div(&var.add_scalar(self.eps).sqrt());
        norm.mul(&self.gamma).add(&self.beta)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_tensor::TensorRng;

    #[test]
    fn batchnorm_training_normalizes() {
        let mut rng = TensorRng::new(0);
        let bn = BatchNorm2d::new(2);
        let x = Var::constant(rng.normal(&[4, 2, 3, 3], 5.0, 2.0));
        let y = bn.forward(&x, true);
        // Per-channel output mean ~0, var ~1.
        let yv = y.value_clone().permute(&[1, 0, 2, 3]).reshape(&[2, 36]);
        for c in 0..2 {
            let row = &yv.data()[c * 36..(c + 1) * 36];
            let mean: f32 = row.iter().sum::<f32>() / 36.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 36.0;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn batchnorm_updates_running_stats() {
        let mut rng = TensorRng::new(1);
        let bn = BatchNorm2d::new(1);
        let x = Var::constant(rng.normal(&[8, 1, 4, 4], 3.0, 1.0));
        for _ in 0..30 {
            bn.forward(&x, true);
        }
        let rm = bn.running_mean().data()[0];
        assert!((rm - 3.0).abs() < 0.3, "running mean {rm} should approach 3");
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm2d::new(1);
        // With default running stats (mean 0, var 1) eval is identity
        // modulo gamma/beta.
        let x = Var::constant(Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.0], &[1, 1, 2, 2]));
        let y = bn.forward(&x, false);
        let expected: Vec<f32> =
            x.value().data().iter().map(|v| v / (1.0f32 + 1e-5).sqrt()).collect();
        mlperf_tensor::assert_close(y.value().data(), &expected, 1e-5);
    }

    #[test]
    fn batchnorm_gradients_flow_to_gamma_beta() {
        let mut rng = TensorRng::new(2);
        let bn = BatchNorm2d::new(3);
        let x = Var::constant(rng.normal(&[2, 3, 2, 2], 0.0, 1.0));
        bn.forward(&x, true).square().sum().backward();
        assert!(bn.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = TensorRng::new(3);
        let ln = LayerNorm::new(8);
        let x = Var::constant(rng.normal(&[4, 8], -2.0, 5.0));
        let y = ln.forward(&x).value_clone();
        for r in 0..4 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
        }
    }

    #[test]
    fn layernorm_3d_input() {
        let mut rng = TensorRng::new(4);
        let ln = LayerNorm::new(4);
        let x = Var::constant(rng.normal(&[2, 3, 4], 0.0, 1.0));
        assert_eq!(ln.forward(&x).shape(), vec![2, 3, 4]);
    }

    #[test]
    fn layernorm_grad_check() {
        let mut rng = TensorRng::new(5);
        let x0 = rng.normal(&[2, 4], 0.0, 1.0);
        mlperf_autograd::check_gradients(
            |w| {
                let ln = LayerNorm::new(4);
                ln.forward(w).square().mean()
            },
            &x0,
            1e-3,
            1e-2,
        );
    }
}
