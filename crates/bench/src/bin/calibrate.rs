//! Calibration helper: runs one benchmark and prints the quality curve
//! per epoch. Not part of the published experiment set; used to tune
//! the miniaturized workloads so every Table 1 threshold is reachable.

use mlperf_core::benchmarks::build;
use mlperf_core::harness::run_benchmark;
use mlperf_core::suite::BenchmarkId;
use mlperf_core::timing::RealClock;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    for id in BenchmarkId::ALL {
        if which != "all" && id.slug() != which {
            continue;
        }
        let mut bench = build(id);
        let clock = RealClock::new();
        let start = std::time::Instant::now();
        let result = run_benchmark(bench.as_mut(), seed, &clock);
        println!(
            "{:<12} target {:>7.3} reached={} epochs={} quality={:.4} ttt={:.2}s wall={:.2}s",
            id.slug(),
            bench.target(),
            result.reached_target,
            result.epochs,
            result.quality,
            result.time_to_train.as_secs_f64(),
            start.elapsed().as_secs_f64(),
        );
        let curve: Vec<String> = result.quality_history.iter().map(|q| format!("{q:.3}")).collect();
        println!("  curve: {}", curve.join(" "));
    }
}
