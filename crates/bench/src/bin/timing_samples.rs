//! **§3.2.2** — how many timed runs a result needs:
//! "Five runs are required for vision tasks to ensure 90% of entries
//! from the same system were within 5%, and for all other tasks, ten
//! runs are required, so 90% of entries from the same system were
//! within 10%. The fastest and slowest times are dropped, and the
//! arithmetic mean of the remaining runs is the result."
//!
//! This harness measures a real empirical time-to-train distribution
//! (many seeds of the NCF and ResNet benchmarks), then Monte-Carlo
//! samples aggregated results at several runs-per-result settings to
//! show the stabilization the rule buys.

use mlperf_bench::{flush_trace, mean, std_dev, trace_telemetry, write_json};
use mlperf_core::aggregate::stability_fraction;
use mlperf_core::benchmarks::{NcfBenchmark, ResNetBenchmark};
use mlperf_core::harness::{run_benchmark_set_with, Benchmark};
use mlperf_telemetry::Telemetry;
use serde::Serialize;

#[derive(Serialize)]
struct StabilityRow {
    benchmark: String,
    tolerance: f64,
    runs_per_result: usize,
    fraction_within: f64,
}

#[derive(Serialize)]
struct Output {
    ncf_times: Vec<f64>,
    resnet_times: Vec<f64>,
    rows: Vec<StabilityRow>,
}

/// Bisects the smallest tolerance at which `frac` of aggregated
/// results fall within the median.
fn tolerance_for_fraction(times: &[f64], runs: usize, frac: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 2.0f64);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if stability_fraction(times, runs, 2000, mid, 7) >= frac {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

fn sample_times(
    make: impl Fn() -> Box<dyn Benchmark> + Sync,
    seeds: usize,
    telemetry: &Telemetry,
) -> Vec<f64> {
    let seed_list: Vec<u64> = (0..seeds as u64).collect();
    run_benchmark_set_with(make, &seed_list, telemetry)
        .into_iter()
        .map(|r| r.time_to_train.as_secs_f64())
        .collect()
}

fn main() {
    let seeds: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let (telemetry, trace_path) = trace_telemetry();
    println!("Timing-samples study (paper §3.2.2)\n");
    println!("measuring empirical TTT distributions ({seeds} seeds each)…");
    let ncf_times = sample_times(|| Box::new(NcfBenchmark::new()), seeds, &telemetry);
    let resnet_times = sample_times(|| Box::new(ResNetBenchmark::new()), seeds.min(8), &telemetry);
    println!(
        "  NCF:    mean {:.3}s  cv {:.1}%",
        mean(&ncf_times),
        100.0 * std_dev(&ncf_times) / mean(&ncf_times)
    );
    println!(
        "  ResNet: mean {:.3}s  cv {:.1}%\n",
        mean(&resnet_times),
        100.0 * std_dev(&resnet_times) / mean(&resnet_times)
    );

    let mut rows = Vec::new();
    println!("{:<10} {:>10} {:>16} {:>16}", "benchmark", "tolerance", "runs/result", "within tol");
    for (name, times, tol) in [("resnet", &resnet_times, 0.05), ("ncf", &ncf_times, 0.10)] {
        for runs in [3usize, 5, 10] {
            let frac = stability_fraction(times, runs, 2000, tol, 7);
            println!("{name:<10} {:>9.0}% {runs:>16} {:>15.1}%", tol * 100.0, frac * 100.0);
            rows.push(StabilityRow {
                benchmark: name.to_string(),
                tolerance: tol,
                runs_per_result: runs,
                fraction_within: frac,
            });
        }
    }
    // The inverse view: what tolerance does each run count achieve at
    // the paper's 90% confidence? (The miniaturized runs are relatively
    // noisier than production systems, so the absolute tolerances are
    // wider; the *trend* — more runs buy a tighter guarantee — is the
    // rule's justification.)
    println!("\ntolerance achieved by 90% of aggregated results:");
    for (name, times) in [("resnet", &resnet_times), ("ncf", &ncf_times)] {
        for runs in [3usize, 5, 10] {
            let tol = tolerance_for_fraction(times, runs, 0.90);
            println!("  {name:<8} {runs:>2} runs/result -> 90% within {:.1}%", tol * 100.0);
        }
    }
    println!("\npaper rule: vision 5 runs -> 90% within 5%; others 10 runs -> 90% within 10%");
    let path = write_json("timing_samples", &Output { ncf_times, resnet_times, rows });
    println!("wrote {}", path.display());
    flush_trace(&telemetry, trace_path.as_ref());
}
