//! **§6 (future work)** — "Producing a table that maps system scale and
//! precision to recommended hyperparameters for each benchmark."
//!
//! Prints that table for the reproduction's suite: per benchmark and
//! scale-up factor, the recommended global batch, peak learning rate
//! (linear scaling for SGD workloads, √-scaling for Adam workloads),
//! warmup length, and optimizer — including the SGD→LARS switch at
//! large batch that the v0.6 rules enabled.

use mlperf_bench::write_json;
use mlperf_core::recommend::recommendation_table;

fn main() {
    let scales = [1usize, 4, 16, 64, 256];
    let table = recommendation_table(&scales);
    println!("Recommended hyperparameters by system scale (paper §6 future work)\n");
    println!(
        "{:<12} {:>9} {:>14} {:>14} {:>14}",
        "benchmark", "batch", "peak lr", "warmup (ep)", "optimizer"
    );
    let mut last = None;
    for row in &table {
        if last != Some(row.benchmark) {
            println!("{}", "-".repeat(68));
            last = Some(row.benchmark);
        }
        println!(
            "{:<12} {:>9} {:>14.5} {:>14.1} {:>14}",
            row.benchmark.slug(),
            row.batch,
            row.learning_rate,
            row.warmup_epochs,
            row.optimizer.to_string()
        );
    }
    let path = write_json("hparam_table", &table);
    println!("\nwrote {}", path.display());
}
