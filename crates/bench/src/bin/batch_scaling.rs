//! **§2.2.2** — the effect of minibatch scale on epochs-to-target:
//! "MLPerf v0.5 ResNet-50 takes around 64 epochs to reach the target
//! top-1 accuracy … at a minibatch size of 4K, while a minibatch size
//! of 16K can require over 80 epochs … a 30% increase in computation."
//!
//! Two reproductions:
//!
//! 1. the `distsim` convergence model calibrated to the paper's own
//!    data points (prints the 4K/16K numbers exactly);
//! 2. an *empirical* sweep on the miniaturized ResNet benchmark —
//!    batch 16 → 256 with the linear learning-rate scaling rule —
//!    showing the same shape at laptop scale: epochs-to-target grows
//!    with batch size past the critical region.

use mlperf_bench::write_json;
use mlperf_core::benchmarks::ResNetBenchmark;
use mlperf_core::harness::run_benchmark;
use mlperf_core::timing::RealClock;
use mlperf_distsim::ConvergenceModel;
use serde::Serialize;

#[derive(Serialize)]
struct ModelRow {
    batch: usize,
    epochs: f64,
}

#[derive(Serialize)]
struct EmpiricalRow {
    batch: usize,
    epochs_per_seed: Vec<usize>,
    mean_epochs: f64,
}

#[derive(Serialize)]
struct Output {
    paper_model: Vec<ModelRow>,
    empirical: Vec<EmpiricalRow>,
}

fn main() {
    println!("Batch-size scaling study (paper §2.2.2)\n");

    // Part 1: the calibrated analytic model.
    let m = ConvergenceModel::resnet_paper();
    println!("convergence model (calibrated to the paper's ResNet-50 data):");
    println!("{:>8} {:>10}", "batch", "epochs");
    let mut paper_model = Vec::new();
    for batch in [256usize, 1024, 4096, 8192, 16384, 32768, 65536] {
        let e = m.epochs(batch);
        println!("{batch:>8} {e:>10.1}");
        paper_model.push(ModelRow { batch, epochs: e });
    }
    let inflation = m.epochs(16384) / m.epochs(4096);
    println!("4K -> 16K computation increase: {:.0}%  (paper: ~30%)\n", 100.0 * (inflation - 1.0));

    // Part 2: empirical mini-study with linear LR scaling.
    println!("empirical ResNetMini sweep (linear LR scaling rule, 3 seeds):");
    println!("{:>8} {:>14} {:>12}", "batch", "epochs/seed", "mean");
    let mut empirical = Vec::new();
    for batch in [16usize, 32, 64, 128, 256] {
        let mut per_seed = Vec::new();
        for seed in [5u64, 6, 7] {
            let mut bench = ResNetBenchmark::with_batch_size(batch);
            let clock = RealClock::new();
            let result = run_benchmark(&mut bench, seed, &clock);
            per_seed.push(result.epochs);
        }
        let mean = per_seed.iter().sum::<usize>() as f64 / per_seed.len() as f64;
        println!("{batch:>8} {:>14} {mean:>12.1}", format!("{per_seed:?}"));
        empirical.push(EmpiricalRow { batch, epochs_per_seed: per_seed, mean_epochs: mean });
    }
    let small = empirical.first().expect("rows").mean_epochs;
    let large = empirical.last().expect("rows").mean_epochs;
    println!("\nsmallest -> largest batch epoch inflation: {:.2}x (expected > 1)", large / small);
    let path = write_json("batch_scaling", &Output { paper_model, empirical });
    println!("wrote {}", path.display());
}
