//! **Ablation** — the drop-min/max ("olympic") aggregation of §3.2.2
//! versus plain mean and median.
//!
//! DESIGN.md calls this design choice out for ablation: the olympic
//! mean buys robustness to stragglers/outliers that the plain mean
//! lacks, while keeping more sample efficiency than the median. This
//! harness measures all three estimators' stability and outlier
//! sensitivity over a real empirical time-to-train distribution.

use mlperf_bench::{mean, std_dev, write_json};
use mlperf_core::aggregate::olympic_mean;
use mlperf_core::benchmarks::NcfBenchmark;
use mlperf_core::harness::run_benchmark;
use mlperf_core::timing::RealClock;
use serde::Serialize;

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn plain_mean(xs: &[f64]) -> f64 {
    mean(xs)
}

#[derive(Serialize)]
struct EstimatorStats {
    estimator: String,
    spread_clean: f64,
    outlier_shift: f64,
}

fn main() {
    let seeds = 24usize;
    println!("Aggregation ablation: olympic mean vs plain mean vs median\n");
    println!("measuring {seeds} NCF time-to-train runs…");
    let times: Vec<f64> = (0..seeds as u64)
        .map(|seed| {
            let mut bench = NcfBenchmark::new();
            let clock = RealClock::new();
            run_benchmark(&mut bench, seed, &clock).time_to_train.as_secs_f64()
        })
        .collect();
    println!("empirical cv: {:.1}%\n", 100.0 * std_dev(&times) / mean(&times));

    type Estimator = fn(&[f64]) -> f64;
    let estimators: Vec<(&str, Estimator)> =
        vec![("olympic", olympic_mean as Estimator), ("mean", plain_mean), ("median", median)];
    // Bootstrap 5-run results; then inject a 10x straggler into each
    // draw and measure the estimator shift.
    let mut state = 0x1234_5678u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let draws: Vec<Vec<f64>> = (0..500)
        .map(|_| (0..5).map(|_| times[(next() % times.len() as u64) as usize]).collect())
        .collect();
    println!("{:<10} {:>22} {:>22}", "estimator", "spread (cv of result)", "10x-straggler shift");
    let mut rows = Vec::new();
    for (name, est) in estimators {
        let clean: Vec<f64> = draws.iter().map(|d| est(d)).collect();
        let spread = std_dev(&clean) / mean(&clean);
        let shifted: Vec<f64> = draws
            .iter()
            .map(|d| {
                let mut with_outlier = d.clone();
                with_outlier[0] *= 10.0;
                (est(&with_outlier) - est(d)).abs() / est(d)
            })
            .collect();
        let shift = mean(&shifted);
        println!("{name:<10} {:>21.1}% {:>21.1}%", 100.0 * spread, 100.0 * shift);
        rows.push(EstimatorStats {
            estimator: name.to_string(),
            spread_clean: spread,
            outlier_shift: shift,
        });
    }
    println!(
        "\nthe olympic mean should sit between the others: tighter than the plain mean \
         under outliers, more sample-efficient than the median on clean draws"
    );
    let path = write_json("aggregation_ablation", &rows);
    println!("wrote {}", path.display());
}
