//! **Figure 4** — speedup of the fastest 16-chip entry from round v0.5
//! to v0.6, per benchmark, despite the raised quality targets. The
//! paper reports an average of ~1.3×.
//!
//! Reproduced on the `distsim` submission simulator: three vendors,
//! both rounds, 16-chip systems; the v0.6 gains come from software
//! maturation (efficiency + communication overlap) and rule changes,
//! partly offset by the higher targets.

use mlperf_bench::write_json;
use mlperf_distsim::{best_time_at_scale, Round, SimBenchmark, Vendor};
use serde::Serialize;

#[derive(Serialize)]
struct SpeedupRow {
    benchmark: String,
    v05_minutes: f64,
    v06_minutes: f64,
    v05_vendor: String,
    v06_vendor: String,
    speedup: f64,
}

fn main() {
    let chips = 16usize;
    let seed = 1u64;
    let vendors = Vendor::fleet();
    println!("Figure 4: speedup of the fastest {chips}-chip entry, v0.5 -> v0.6\n");
    println!(
        "{:<16} {:>12} {:>12} {:>9}   (v0.5 / v0.6 vendor)",
        "benchmark", "v0.5 (min)", "v0.6 (min)", "speedup"
    );
    let mut rows = Vec::new();
    for bench in SimBenchmark::round_comparison_suite() {
        let v05 = best_time_at_scale(&vendors, Round::V05, &bench, chips, seed)
            .expect("16-chip v0.5 entry feasible");
        let v06 = best_time_at_scale(&vendors, Round::V06, &bench, chips, seed)
            .expect("16-chip v0.6 entry feasible");
        let speedup = v05.minutes / v06.minutes;
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>8.2}x   ({} / {})",
            bench.name, v05.minutes, v06.minutes, speedup, v05.vendor, v06.vendor
        );
        rows.push(SpeedupRow {
            benchmark: bench.name.clone(),
            v05_minutes: v05.minutes,
            v06_minutes: v06.minutes,
            v05_vendor: v05.vendor,
            v06_vendor: v06.vendor,
            speedup,
        });
    }
    let avg = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    println!("\naverage speedup: {avg:.2}x  (paper: ~1.3x, with raised quality targets)");
    let path = write_json("fig4_speedup", &rows);
    println!("wrote {}", path.display());
}
