//! **Figure 2** — run-to-run variation: epochs to reach the quality
//! target across many repetitions with identical hyperparameters and
//! different seeds, for NCF (top) and MiniGo (bottom).
//!
//! The paper uses this figure to motivate the multiple-run timing rule
//! (§3.2.2). The expected shape: a spread of several epochs for NCF and
//! a substantially wider relative spread for MiniGo (whose data comes
//! from game generation, so seed effects compound).

use mlperf_bench::{flush_trace, mean, render_histogram, std_dev, trace_telemetry, write_json};
use mlperf_core::benchmarks::{MiniGoBenchmark, NcfBenchmark};
use mlperf_core::harness::{run_benchmark_set_with, Benchmark};
use mlperf_telemetry::Telemetry;
use serde::Serialize;

#[derive(Serialize)]
struct VarianceResult {
    benchmark: String,
    seeds: usize,
    epochs: Vec<usize>,
    mean_epochs: f64,
    std_epochs: f64,
    relative_spread: f64,
}

fn study(
    name: &str,
    make: impl Fn() -> Box<dyn Benchmark> + Sync,
    seeds: usize,
    telemetry: &Telemetry,
) -> VarianceResult {
    let seed_list: Vec<u64> = (0..seeds as u64).collect();
    // Runs that exhaust the budget are recorded at the budget — visible
    // as the right-edge bucket, like the paper's outliers.
    let epochs: Vec<usize> =
        run_benchmark_set_with(make, &seed_list, telemetry).into_iter().map(|r| r.epochs).collect();
    let as_f64: Vec<f64> = epochs.iter().map(|&e| e as f64).collect();
    let m = mean(&as_f64);
    let s = std_dev(&as_f64);
    println!("--- {name}: epochs to target across {seeds} seeds ---");
    println!("{}", render_histogram(&epochs));
    println!("mean {m:.2} epochs, std {s:.2}, relative spread {:.1}%\n", 100.0 * s / m);
    VarianceResult {
        benchmark: name.to_string(),
        seeds,
        epochs,
        mean_epochs: m,
        std_epochs: s,
        relative_spread: s / m,
    }
}

fn main() {
    let seeds: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let (telemetry, trace_path) = trace_telemetry();
    println!("Figure 2: run-to-run variation in epochs-to-target\n");
    let ncf = study("NCF", || Box::new(NcfBenchmark::new()), seeds, &telemetry);
    let minigo = study("MiniGo", || Box::new(MiniGoBenchmark::new()), seeds, &telemetry);
    println!(
        "MiniGo relative spread {:.2}x the NCF relative spread",
        minigo.relative_spread / ncf.relative_spread.max(1e-9)
    );
    let path = write_json("fig2_variance", &vec![ncf, minigo]);
    println!("wrote {}", path.display());
    flush_trace(&telemetry, trace_path.as_ref());
}
