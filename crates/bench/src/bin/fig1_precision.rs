//! **Figure 1** — validation error over epochs under different weight
//! representations (the AlexNet/ImageNet precision study of Zhu et al.,
//! 2016, reprinted by the paper to show that precision effects are only
//! visible late in training).
//!
//! Trains the same AlexNet-style network from the same seed under each
//! simulated precision (weights rounded to the format's grid after
//! every optimizer step) and prints the validation-error series. The
//! expected shape: curves overlap early, separate after many epochs,
//! and the coarsest formats never reach the fp32 error.

use mlperf_bench::{render_series, write_json};
use mlperf_core::suite::BenchmarkId;
use mlperf_data::{epoch_batches, ImageNetConfig, SyntheticImageNet};
use mlperf_models::AlexNetMini;
use mlperf_nn::Module;
use mlperf_optim::{Optimizer, SgdTorch};
use mlperf_tensor::{Precision, TensorRng};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    precision: String,
    bits: u32,
    val_error: Vec<f64>,
    final_error: f64,
}

fn main() {
    let epochs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed = 2024u64;
    let data = SyntheticImageNet::generate(ImageNetConfig::default(), 0xF16);
    let _ = BenchmarkId::ImageClassification; // context: same task family as Table 1 row 1
    println!("Figure 1: validation error vs epoch under simulated weight precision");
    println!("(AlexNetMini on synthetic ImageNet, identical seed {seed}, {epochs} epochs)\n");

    let mut all = Vec::new();
    for precision in Precision::ALL {
        let mut rng = TensorRng::new(seed);
        let cfg = data.config();
        let net = AlexNetMini::new(cfg.channels, cfg.image_size, cfg.classes, &mut rng);
        let mut opt = SgdTorch::new(net.params(), 0.9, 0.0);
        let mut data_rng = rng.split();
        let mut errors = Vec::with_capacity(epochs);
        for _epoch in 0..epochs {
            for batch in epoch_batches(data.train.len(), 32, &mut data_rng).iter() {
                let (images, labels) = data.train.batch(batch);
                opt.zero_grad();
                net.loss(&images, &labels).backward();
                opt.step(0.03);
                // The precision simulation: weights live on the
                // format's grid.
                net.quantize_weights(precision);
            }
            let acc = net.accuracy(data.val.images(), data.val.labels());
            errors.push(1.0 - acc as f64);
        }
        println!("{}", render_series(&precision.to_string(), &errors, 3));
        all.push(Series {
            precision: precision.to_string(),
            bits: precision.bits(),
            final_error: *errors.last().expect("epochs > 0"),
            val_error: errors,
        });
    }

    // The figure's qualitative claims, checked numerically.
    let fp32_final = all[0].final_error;
    let ternary_final = all.last().expect("non-empty").final_error;
    let early_spread = spread(&all, 1);
    let late_spread = spread(&all, all[0].val_error.len() - 1);
    println!("\nearly-epoch spread {early_spread:.3} vs late-epoch spread {late_spread:.3}");
    println!("fp32 final error {fp32_final:.3}; ternary final error {ternary_final:.3}");
    let path = write_json("fig1_precision", &all);
    println!("wrote {}", path.display());
}

fn spread(all: &[Series], epoch: usize) -> f64 {
    let vals: Vec<f64> = all.iter().map(|s| s.val_error[epoch]).collect();
    let max = vals.iter().cloned().fold(f64::MIN, f64::max);
    let min = vals.iter().cloned().fold(f64::MAX, f64::min);
    max - min
}
