//! **§2.2.4** — the two SGD-with-momentum formulations:
//!
//! - Eq. 1 (Caffe):        `m ← α·m + lr·g`,  `w ← w − m`
//! - Eq. 2 (PyTorch/TF):   `m ← α·m + g`,     `w ← w − lr·m`
//!
//! "The two approaches are not mathematically identical if the learning
//! rate changes during training … it can affect training convergence at
//! higher minibatch sizes."
//!
//! This harness trains identical networks from identical seeds with
//! both optimizers, under (a) a constant learning rate — trajectories
//! coincide — and (b) a step-decay schedule at small and large batch —
//! trajectories diverge, more at large batch (where the learning rate,
//! and hence the variant gap, is larger under linear scaling).

use mlperf_bench::write_json;
use mlperf_core::suite::BenchmarkId;
use mlperf_data::{epoch_batches, ImageNetConfig, SyntheticImageNet};
use mlperf_models::{ResNetConfig, ResNetMini};
use mlperf_nn::Module;
use mlperf_optim::{linear_scaled_lr, LrSchedule, MultiStepDecay, Optimizer, SgdCaffe, SgdTorch};
use mlperf_tensor::TensorRng;
use serde::Serialize;

#[derive(Serialize)]
struct Scenario {
    name: String,
    batch: usize,
    schedule: String,
    caffe_accuracy: Vec<f64>,
    torch_accuracy: Vec<f64>,
    max_weight_divergence: f32,
}

fn train(
    variant: &str,
    batch: usize,
    schedule: &MultiStepDecay,
    epochs: usize,
    data: &SyntheticImageNet,
) -> (Vec<f64>, Vec<f32>) {
    let mut rng = TensorRng::new(99);
    let cfg = data.config();
    let model = ResNetMini::new(
        ResNetConfig {
            in_channels: cfg.channels,
            input_size: cfg.image_size,
            classes: cfg.classes,
            base_width: 8,
            blocks_per_stage: 1,
        },
        &mut rng,
    );
    let mut opt: Box<dyn Optimizer> = match variant {
        "caffe" => Box::new(SgdCaffe::new(model.params(), 0.9, 0.0)),
        _ => Box::new(SgdTorch::new(model.params(), 0.9, 0.0)),
    };
    let mut data_rng = rng.split();
    let mut acc = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let lr = schedule.lr(epoch);
        for idx in epoch_batches(data.train.len(), batch, &mut data_rng).iter() {
            let (images, labels) = data.train.batch(idx);
            opt.zero_grad();
            model.loss(&images, &labels).backward();
            opt.step(lr);
        }
        acc.push(model.accuracy(data.val.images(), data.val.labels()) as f64);
    }
    let weights: Vec<f32> = model.params().iter().flat_map(|p| p.value().data().to_vec()).collect();
    (acc, weights)
}

fn run_scenario(name: &str, batch: usize, decay: bool, data: &SyntheticImageNet) -> Scenario {
    let epochs = 8;
    let base = linear_scaled_lr(0.05, batch, 32);
    let schedule = if decay {
        MultiStepDecay { base, gamma: 0.1, milestones: vec![3, 6] }
    } else {
        MultiStepDecay { base, gamma: 1.0, milestones: vec![] }
    };
    let (caffe_acc, caffe_w) = train("caffe", batch, &schedule, epochs, data);
    let (torch_acc, torch_w) = train("torch", batch, &schedule, epochs, data);
    let max_div =
        caffe_w.iter().zip(torch_w.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    println!(
        "{name:<28} batch {batch:>4}  final acc caffe {:.3} / torch {:.3}  max |w_caffe - w_torch| = {max_div:.2e}",
        caffe_acc.last().expect("epochs"),
        torch_acc.last().expect("epochs"),
    );
    Scenario {
        name: name.to_string(),
        batch,
        schedule: if decay { "step-decay".into() } else { "constant".into() },
        caffe_accuracy: caffe_acc,
        torch_accuracy: torch_acc,
        max_weight_divergence: max_div,
    }
}

fn main() {
    let _ = BenchmarkId::ImageClassification;
    println!("Momentum-variant study (paper §2.2.4, Eq. 1 vs Eq. 2)\n");
    let data = SyntheticImageNet::generate(ImageNetConfig::default(), 0x3344);
    let scenarios = vec![
        run_scenario("constant lr (identical)", 32, false, &data),
        run_scenario("step decay, small batch", 32, true, &data),
        run_scenario("step decay, large batch", 128, true, &data),
    ];
    let const_div = scenarios[0].max_weight_divergence;
    let small_div = scenarios[1].max_weight_divergence;
    let large_div = scenarios[2].max_weight_divergence;
    println!(
        "\nconstant-lr divergence {const_div:.2e} (floating-point rounding only — the two \
         formulations are mathematically identical at constant lr)"
    );
    println!(
        "decay divergence: small batch {small_div:.2e} ({:.0}x constant), large batch {large_div:.2e} ({:.0}x constant)",
        small_div / const_div,
        large_div / const_div
    );
    let path = write_json("momentum_variants", &scenarios);
    println!("wrote {}", path.display());
}
