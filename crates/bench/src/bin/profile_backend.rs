//! Scratch profiler: phase breakdown of a BertMini training epoch per
//! backend. Not part of the shipped CLI surface.
//!
//! `--flame FILE` additionally records the run as telemetry spans and
//! writes a collapsed-stack flamegraph (`stack;frames count`, one line
//! per unique stack, self-time in microseconds — feed to inferno or
//! speedscope), and prints each backend's kernel dispatch counters.

use mlperf_autograd::Var;
use mlperf_data::{epoch_batches, MaskedLmConfig, MaskedSentence, SyntheticMaskedLm};
use mlperf_models::{BertConfig, BertMini};
use mlperf_nn::{LayerNorm, Linear, MaskedLmHead, Module, MultiHeadAttention};
use mlperf_optim::{Adam, Optimizer};
use mlperf_telemetry::{write_collapsed, Telemetry};
use mlperf_tensor::{
    enable_kernel_stats, kernel_stats, reset_kernel_stats, BackendKind, TensorRng,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn time_fwd_bwd(label: &str, iters: u32, f: impl Fn() -> Var) {
    // Warm up.
    for _ in 0..5 {
        f().sum().backward();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let fwd = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..iters {
        f().sum().backward();
    }
    let both = t1.elapsed();
    let per = |d: Duration| d.as_secs_f64() * 1e6 / iters as f64;
    println!("    {label:<28} fwd {:7.1}us  fwd+bwd {:7.1}us", per(fwd), per(both));
}

fn components(kind: BackendKind) {
    println!("  components on {kind}:");
    let mut rng = TensorRng::new(7).with_backend(kind);
    let x = Var::param(rng.normal(&[16, 12, 16], 0.0, 1.0));
    let attn = MultiHeadAttention::new(16, 2, &mut rng);
    time_fwd_bwd("attention [16,12,16]", 200, || attn.self_attention(&x, None));
    let ln = LayerNorm::new(16);
    time_fwd_bwd("layernorm [16,12,16]", 200, || ln.forward(&x));
    let up = Linear::new(16, 32, true, &mut rng);
    let down = Linear::new(32, 16, true, &mut rng);
    time_fwd_bwd("feedforward [16,12,16]", 200, || down.forward(&up.forward(&x).relu()));
    let head = MaskedLmHead::new(16, 24, &mut rng);
    let masked: Vec<(usize, usize, usize)> =
        (0..16).flat_map(|b| [(b, 1usize, 3usize), (b, 7, 5)]).collect();
    time_fwd_bwd("mlm head loss [16,12,16]", 200, || head.loss(&x, &masked));
}

fn print_kernel_stats(kind: BackendKind) {
    let k = kernel_stats();
    println!(
        "  kernels on {kind}: gemm ref {} / direct {} / packed {} \
         (packed {} KiB, {} fanouts, width peak {})",
        k.gemm_reference,
        k.gemm_direct,
        k.gemm_packed,
        k.packed_bytes / 1024,
        k.gemm_fanouts,
        k.fanout_width_peak
    );
}

fn main() -> ExitCode {
    let mut flame: Option<PathBuf> = None;
    let mut cli = std::env::args().skip(1);
    while let Some(flag) = cli.next() {
        match (flag.as_str(), cli.next()) {
            ("--flame", Some(value)) => flame = Some(PathBuf::from(value)),
            _ => {
                eprintln!("usage: profile_backend [--flame FILE]");
                return ExitCode::FAILURE;
            }
        }
    }
    let telemetry = if flame.is_some() { Telemetry::recording() } else { Telemetry::disabled() };
    enable_kernel_stats();

    let data_config = MaskedLmConfig::default();
    let data = SyntheticMaskedLm::generate(data_config, 0x7be2_91a4);
    for kind in BackendKind::ALL {
        reset_kernel_stats();
        let mut scope = telemetry.timeline_scope();
        let backend_span = scope.start("profile", &format!("backend {kind}"));
        let mut rng = TensorRng::new(21).with_backend(kind);
        let model = BertMini::new(
            BertConfig {
                vocab: data_config.vocab,
                max_len: data_config.sentence_len(),
                ..Default::default()
            },
            &mut rng,
        );
        let mut opt = Adam::with_defaults(model.params());
        let mut data_rng = rng.split();
        let (mut t_batch, mut t_fwd, mut t_bwd, mut t_opt) =
            (Duration::ZERO, Duration::ZERO, Duration::ZERO, Duration::ZERO);
        let epochs = 5;
        let mut steps = 0u32;
        for epoch in 0..epochs {
            let epoch_span = scope.start("profile", &format!("epoch {epoch}"));
            for batch in epoch_batches(data.train.len(), 16, &mut data_rng).iter() {
                steps += 1;
                let t0 = Instant::now();
                let chunk: Vec<&MaskedSentence> = scope
                    .record("profile", "batch", || batch.iter().map(|&i| &data.train[i]).collect());
                let t1 = Instant::now();
                opt.zero_grad();
                let loss = scope.record("profile", "forward", || model.loss(&chunk));
                let t2 = Instant::now();
                scope.record("profile", "backward", || loss.backward());
                let t3 = Instant::now();
                scope.record("profile", "optimizer", || opt.step(0.01));
                let t4 = Instant::now();
                t_batch += t1 - t0;
                t_fwd += t2 - t1;
                t_bwd += t3 - t2;
                t_opt += t4 - t3;
            }
            scope.end(epoch_span);
        }
        let per = |d: Duration| d.as_secs_f64() * 1e6 / steps as f64;
        println!(
            "{kind:>10}: batch {:7.1}us  fwd {:7.1}us  bwd {:7.1}us  opt {:7.1}us  total {:7.1}us/step ({steps} steps)",
            per(t_batch),
            per(t_fwd),
            per(t_bwd),
            per(t_opt),
            per(t_batch + t_fwd + t_bwd + t_opt)
        );
        print_kernel_stats(kind);
        components(kind);
        scope.end(backend_span);
    }

    if let Some(path) = flame {
        if let Err(e) = write_collapsed(&telemetry.snapshot(), &path) {
            eprintln!("error: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote flamegraph {}", path.display());
    }
    ExitCode::SUCCESS
}
