//! **Submission-round pipeline CLI** — the end-to-end process of §4
//! over a persistent, disk-backed round archive.
//!
//! ```sh
//! round_pipeline write  --archive DIR [--rounds N] [--seed N]
//! round_pipeline ingest --archive DIR
//! round_pipeline report --archive DIR [--chips N]
//! round_pipeline demo              # all three against a temp archive
//! ```
//!
//! `write` generates synthetic multi-vendor rounds (each with a
//! deliberately corrupted bundle, so ingest has something to
//! quarantine) and persists them as real `:::MLLOG` log files plus
//! JSON manifests. `ingest` reads the archive back, replays review
//! over every round, and reports what was accepted, quarantined, or
//! damaged on disk. `report` renders the per-round leaderboards and
//! the paper's Figure 4/5 cross-round tables — computed from the
//! archived logs alone.

use mlperf_bench::write_json;
use mlperf_core::report::render_leaderboard;
use mlperf_distsim::Round;
use mlperf_submission::{
    leaderboards, synthetic_round, ArchiveReplay, Fault, RoundArchive, SyntheticRoundSpec,
};
use serde_json::json;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: round_pipeline <write|ingest|report|demo> [--archive DIR] [--rounds N] \
         [--seed N] [--chips N]"
    );
    ExitCode::FAILURE
}

/// Parsed command line: subcommand plus flags.
struct Args {
    command: String,
    archive: Option<PathBuf>,
    rounds: usize,
    seed: u64,
    chips: usize,
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "demo".to_string());
    let mut parsed = Args { command, archive: None, rounds: Round::ALL.len(), seed: 21, chips: 16 };
    while let Some(flag) = args.next() {
        let value = args.next()?;
        match flag.as_str() {
            "--archive" => parsed.archive = Some(PathBuf::from(value)),
            "--rounds" => parsed.rounds = value.parse().ok()?,
            "--seed" => parsed.seed = value.parse().ok()?,
            "--chips" => parsed.chips = value.parse().ok()?,
            _ => return None,
        }
    }
    if parsed.rounds == 0 || parsed.rounds > Round::ALL.len() {
        eprintln!("--rounds must be 1..={}", Round::ALL.len());
        return None;
    }
    Some(parsed)
}

/// Each generated round gets a saboteur, so the archive always holds
/// something for review to quarantine.
fn round_spec(round: Round, seed: u64) -> SyntheticRoundSpec {
    let spec = SyntheticRoundSpec::new(round, seed);
    match round {
        Round::V05 => spec.with_fault(Fault::MissingRunStop { org: "Borealis".into() }),
        Round::V06 => spec.with_fault(Fault::GarbageLine { org: "Cumulus".into() }).with_fault(
            Fault::IllegalHyperparameter { org: "Aurora".into(), name: "momentum".into() },
        ),
        Round::V07 => spec.with_fault(Fault::WrongQualityTarget { org: "Borealis".into() }),
    }
}

fn write_archive(dir: &PathBuf, rounds: usize, seed: u64) -> Result<RoundArchive, String> {
    let archive = RoundArchive::create(dir).map_err(|e| e.to_string())?;
    for (i, round) in Round::ALL.into_iter().take(rounds).enumerate() {
        let subs = synthetic_round(&round_spec(round, seed + i as u64));
        let logs: usize =
            subs.bundles.iter().flat_map(|b| &b.run_sets).map(|rs| rs.logs.len()).sum();
        archive.write_round(&subs).map_err(|e| e.to_string())?;
        println!(
            "wrote round {round}: {} bundles, {logs} log files -> {}",
            subs.bundles.len(),
            archive.root().join(round.label()).display()
        );
    }
    Ok(archive)
}

fn ingest_archive(archive: &RoundArchive) -> Result<ArchiveReplay, String> {
    let replay = archive.replay().map_err(|e| e.to_string())?;
    for outcome in replay.history.outcomes() {
        println!(
            "round {}: accepted {} run sets, quarantined {} bundle(s)",
            outcome.round,
            outcome.accepted.len(),
            outcome.quarantined.len()
        );
        for report in &outcome.quarantined {
            for (benchmark, diagnostic) in report.diagnostics() {
                println!("  quarantine {} [{benchmark}]: {diagnostic}", report.org);
            }
        }
        archive.write_outcome(outcome).map_err(|e| e.to_string())?;
    }
    for fault in &replay.faults {
        println!("storage fault: {fault}");
    }
    Ok(replay)
}

fn report_archive(replay: &ArchiveReplay, chips: usize) {
    for outcome in replay.history.outcomes() {
        println!("\n=== round {} leaderboards ===\n", outcome.round);
        for board in leaderboards(outcome) {
            let title = format!("{} ({} division)", board.benchmark, board.division);
            print!("{}", render_leaderboard(&title, &board.rows()));
            println!();
        }
    }
    let speedup = replay.history.speedup_table(chips);
    let scale = replay.history.scale_table();
    println!("{}", speedup.render());
    println!("{}", scale.render());
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    println!("MLPerf submission-round pipeline (Section 4)\n");

    let result = match args.command.as_str() {
        "write" => {
            let Some(dir) = args.archive else {
                eprintln!("write requires --archive DIR");
                return ExitCode::FAILURE;
            };
            write_archive(&dir, args.rounds, args.seed).map(|_| ())
        }
        "ingest" => RoundArchive::open(args.archive.unwrap_or_else(|| PathBuf::from(".")))
            .map_err(|e| e.to_string())
            .and_then(|archive| ingest_archive(&archive).map(|_| ())),
        "report" => RoundArchive::open(args.archive.unwrap_or_else(|| PathBuf::from(".")))
            .map_err(|e| e.to_string())
            .and_then(|archive| {
                let replay = ingest_archive(&archive)?;
                report_archive(&replay, args.chips);
                Ok(())
            }),
        "demo" => {
            let dir = args
                .archive
                .unwrap_or_else(|| mlperf_bench::experiments_dir().join("round_archive"));
            write_archive(&dir, args.rounds, args.seed).and_then(|archive| {
                println!();
                let replay = ingest_archive(&archive)?;
                report_archive(&replay, args.chips);
                let per_round: Vec<_> = replay
                    .history
                    .outcomes()
                    .iter()
                    .map(|o| {
                        json!({
                            "round": o.round.to_string(),
                            "accepted": o.accepted.len(),
                            "quarantined": o.quarantined.len(),
                        })
                    })
                    .collect();
                let summary = json!({
                    "archive": archive.root().display().to_string(),
                    "rounds": per_round,
                    "storage_faults": replay.faults.len(),
                    "avg_speedup_at_chips": replay.history.speedup_table(args.chips).average_ratio(),
                    "avg_scale_growth": replay.history.scale_table().average_ratio(),
                });
                let path = write_json("round_pipeline", &summary);
                println!("wrote {}", path.display());
                Ok(())
            })
        }
        _ => return usage(),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
