//! **Submission-round pipeline CLI** — the end-to-end process of §4
//! over a persistent, disk-backed round archive.
//!
//! ```sh
//! round_pipeline write  --archive DIR [--rounds N] [--seed N] [--bundles N] [--schema N]
//! round_pipeline ingest --archive DIR [--streaming] [--trace FILE] [--sample N]
//! round_pipeline migrate --archive DIR
//! round_pipeline report --archive DIR [--chips N] [--streaming]
//! round_pipeline demo [--trace FILE]  # all three against a temp archive
//! round_pipeline loadgen [--seed N] [--archive DIR] [--log-dir DIR] [--trace FILE]
//! round_pipeline serve [--addr HOST:PORT] [--archive DIR] [--round vX.Y]
//! round_pipeline storm [--clients N] [--bundles N] [--round vX.Y] [--seed N]
//! ```
//!
//! Every subcommand accepts `--backend reference|blocked` to pin the
//! tensor backend the run executes on (default: `reference`).
//!
//! `write` generates synthetic multi-vendor rounds (each with a
//! deliberately corrupted bundle, so ingest has something to
//! quarantine) and persists them as real `:::MLLOG` log files plus
//! JSON manifests; `--bundles N` writes stress rounds of N small
//! single-benchmark bundles instead, for scale runs, and `--schema N`
//! pins an older manifest schema (for migration fixtures and
//! compatibility tests). `migrate` rewrites every manifest in an
//! archive to the current `MANIFEST_SCHEMA` in place — atomically, per
//! manifest, skipping manifests that are already current and
//! quarantining unreadable ones as storage faults. `ingest` reads
//! the archive back, replays review over every round, and reports what
//! was accepted, quarantined, or damaged on disk — with `--streaming`
//! it ingests bundles one directory at a time in bounded memory.
//! `report` renders the per-round leaderboards and the paper's
//! Figure 4/5 cross-round tables — computed from the archived logs
//! alone. Figure 4 anchors at the data-driven common scale of the
//! ingested history unless `--chips` pins one.
//!
//! `loadgen` runs the inference-style scenario driver instead: the
//! SingleStream, Server, and Offline scenarios over simulated served
//! models (NCF and BERT) on a deterministic simulated clock, packages
//! the scenario logs as a submission bundle, reviews it through
//! `run_round`, and renders the scenario leaderboards. With
//! `--archive DIR` the scenario round is persisted through the same
//! `RoundArchive` as training rounds, re-ingested, and checked to
//! review identically from disk. `--log-dir DIR` additionally writes
//! each scenario's raw `:::MLLOG` log there.
//!
//! `--trace FILE` records telemetry for the run — spans and metrics
//! from the harness, ingest, and store layers — writes them as Chrome
//! `trace_event` JSON-lines (load in `chrome://tracing` or Perfetto),
//! and prints a plain-text summary report. `--sample N` arms 1-in-N
//! per-log span sampling once a round crosses
//! [`SPAN_SAMPLING_THRESHOLD`] items, keeping traces of huge rounds
//! small; counters and metrics stay exact.
//!
//! `serve` runs the live submission service (`mlperf-service`): an
//! HTTP server that keeps rounds open, reviews bundles as submitters
//! upload them, and answers leaderboard/status/metrics queries
//! mid-round. `--round vX.Y` opens a round immediately; otherwise
//! clients open rounds themselves with `POST /rounds/{round}/open`.
//! The server runs until `POST /shutdown`. `storm` is the seeded
//! load driver: it starts an in-process server on an ephemeral port,
//! races `--clients` concurrent submitters (default 8) uploading a
//! `--bundles`-bundle stress round (default 240) over real TCP with
//! leaderboard and status polls interleaved throughout, then closes
//! the round and verifies the published outcome is identical to batch
//! ingest of the same bundles.
//!
//! `--metrics FILE` writes a Prometheus text-exposition snapshot of
//! every counter, gauge, histogram, quantile sketch, and windowed
//! time-series at the end of the run, and turns on tensor kernel
//! dispatch counters. `--progress` prints live one-line throughput
//! updates to stderr (bundles/s, logs/s, busy workers) while ingest or
//! a loadgen sweep runs; both flags install a clock-driven [`Reporter`]
//! that samples the hot-path counters into ring-buffered time-series.
//! Every subcommand accepts both flags.

use mlperf_bench::write_json;
use mlperf_core::benchmarks::NcfBenchmark;
use mlperf_core::harness::run_benchmark_with;
use mlperf_core::report::{
    render_leaderboard, render_scenario_leaderboard, render_telemetry_report, SystemDescription,
};
use mlperf_core::suite::BenchmarkId;
use mlperf_core::timing::RealClock;
use mlperf_distsim::Round;
use mlperf_loadgen::{
    loadgen_bundle, loadgen_reference, loadgen_run_set, simulated_scenario_sweep,
};
use mlperf_pool::pool_stats;
use mlperf_service::{http_get, http_post, HttpServer, ServiceCore};
use mlperf_submission::{
    leaderboards, round_references, run_round_with, scenario_leaderboards, synthetic_round,
    synthetic_stress_round, ArchiveReplay, Fault, RoundArchive, RoundSubmissions,
    SyntheticRoundSpec, MANIFEST_SCHEMA,
};
use mlperf_telemetry::{write_prometheus, write_trace, Reporter, SpanSampling, Telemetry};
use mlperf_tensor::{enable_kernel_stats, kernel_stats, set_default_backend, BackendKind};
use serde_json::json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stage size (items) above which `--sample N` starts thinning
/// per-item spans to 1-in-N.
const SPAN_SAMPLING_THRESHOLD: u64 = 512;

/// Reporter sampling interval: short enough that even a fast demo run
/// closes a couple of windows, long enough that progress lines stay
/// readable on a terminal.
const REPORT_INTERVAL: Duration = Duration::from_millis(250);

fn usage() -> ExitCode {
    eprintln!(
        "usage: round_pipeline [write|ingest|report|migrate|demo|loadgen|serve|storm] \
         [--archive DIR] [--rounds N] [--seed N] [--bundles N] [--chips N] [--schema N] \
         [--streaming] [--trace FILE] [--metrics FILE] [--progress] [--sample N] \
         [--log-dir DIR] [--backend reference|blocked] [--addr HOST:PORT] [--clients N] \
         [--round vX.Y]"
    );
    ExitCode::FAILURE
}

/// Parsed command line: subcommand plus flags.
struct Args {
    command: String,
    archive: Option<PathBuf>,
    rounds: usize,
    seed: u64,
    /// `write`: generate stress rounds of this many small bundles
    /// instead of the fleet rounds.
    bundles: Option<usize>,
    /// Figure 4 anchor; `None` means the history's data-driven
    /// common scale.
    chips: Option<usize>,
    /// `write`: pin this manifest schema instead of the current one
    /// (migration fixtures, compatibility tests).
    schema: Option<u64>,
    /// Ingest through the bounded-memory streaming reader.
    streaming: bool,
    trace: Option<PathBuf>,
    /// Write a Prometheus text-exposition snapshot here at exit.
    metrics: Option<PathBuf>,
    /// Print live throughput lines to stderr while the run progresses.
    progress: bool,
    /// 1-in-N span sampling for large rounds.
    sample: Option<u64>,
    /// `loadgen`: also write each scenario's raw `:::MLLOG` log here.
    log_dir: Option<PathBuf>,
    /// Tensor backend the run executes on (process default when unset).
    backend: Option<BackendKind>,
    /// `serve`: listen address (default 127.0.0.1:8090).
    addr: Option<String>,
    /// `storm`: concurrent submitting clients.
    clients: usize,
    /// `serve`: open this round at startup; `storm`: the round to
    /// drive (default v0.6).
    round: Option<Round>,
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1).peekable();
    // A leading flag means the subcommand was omitted: default to demo
    // so `round_pipeline --trace out.jsonl` works.
    let command = match args.peek() {
        Some(first) if !first.starts_with("--") => args.next().unwrap(),
        _ => "demo".to_string(),
    };
    let mut parsed = Args {
        command,
        archive: None,
        rounds: Round::ALL.len(),
        seed: 21,
        bundles: None,
        chips: None,
        schema: None,
        streaming: false,
        trace: None,
        metrics: None,
        progress: false,
        sample: None,
        log_dir: None,
        backend: None,
        addr: None,
        clients: 8,
        round: None,
    };
    while let Some(flag) = args.next() {
        // Boolean flags take no value.
        if flag == "--streaming" {
            parsed.streaming = true;
            continue;
        }
        if flag == "--progress" {
            parsed.progress = true;
            continue;
        }
        let value = args.next()?;
        match flag.as_str() {
            "--archive" => parsed.archive = Some(PathBuf::from(value)),
            "--rounds" => parsed.rounds = value.parse().ok()?,
            "--seed" => parsed.seed = value.parse().ok()?,
            "--bundles" => parsed.bundles = Some(value.parse().ok()?),
            "--chips" => parsed.chips = Some(value.parse().ok()?),
            "--schema" => parsed.schema = Some(value.parse().ok()?),
            "--trace" => parsed.trace = Some(PathBuf::from(value)),
            "--metrics" => parsed.metrics = Some(PathBuf::from(value)),
            "--sample" => parsed.sample = Some(value.parse().ok()?),
            "--log-dir" => parsed.log_dir = Some(PathBuf::from(value)),
            "--backend" => parsed.backend = Some(BackendKind::parse(&value)?),
            "--addr" => parsed.addr = Some(value),
            "--clients" => parsed.clients = value.parse().ok()?,
            "--round" => match value.parse::<Round>() {
                Ok(round) => parsed.round = Some(round),
                Err(e) => {
                    eprintln!("{e}");
                    return None;
                }
            },
            _ => return None,
        }
    }
    if parsed.rounds == 0 || parsed.rounds > Round::ALL.len() {
        eprintln!("--rounds must be 1..={}", Round::ALL.len());
        return None;
    }
    if parsed.bundles == Some(0) || parsed.sample == Some(0) || parsed.clients == 0 {
        eprintln!("--bundles, --sample, and --clients must be positive");
        return None;
    }
    if parsed.schema.is_some_and(|s| !(1..=MANIFEST_SCHEMA).contains(&s)) {
        eprintln!("--schema must be 1..={MANIFEST_SCHEMA}");
        return None;
    }
    Some(parsed)
}

/// Each generated round gets a saboteur, so the archive always holds
/// something for review to quarantine.
fn round_spec(round: Round, seed: u64) -> SyntheticRoundSpec {
    let spec = SyntheticRoundSpec::new(round, seed);
    match round {
        Round::V05 => spec.with_fault(Fault::MissingRunStop { org: "Borealis".into() }),
        Round::V06 => spec.with_fault(Fault::GarbageLine { org: "Cumulus".into() }).with_fault(
            Fault::IllegalHyperparameter { org: "Aurora".into(), name: "momentum".into() },
        ),
        Round::V07 => spec.with_fault(Fault::WrongQualityTarget { org: "Borealis".into() }),
    }
}

fn write_archive(
    dir: &PathBuf,
    rounds: usize,
    seed: u64,
    bundles: Option<usize>,
    schema: Option<u64>,
    telemetry: &Telemetry,
) -> Result<RoundArchive, String> {
    let schema = schema.unwrap_or(MANIFEST_SCHEMA);
    let archive = RoundArchive::create_pinned(dir, schema)
        .map_err(|e| e.to_string())?
        .with_telemetry(telemetry.clone());
    if schema != MANIFEST_SCHEMA {
        println!("pinning manifest schema {schema} (current is {MANIFEST_SCHEMA})");
    }
    for (i, round) in Round::ALL.into_iter().take(rounds).enumerate() {
        let subs = match bundles {
            Some(n) => synthetic_stress_round(round, n, seed + i as u64),
            None => synthetic_round(&round_spec(round, seed + i as u64)),
        };
        let logs: usize =
            subs.bundles.iter().flat_map(|b| &b.run_sets).map(|rs| rs.logs.len()).sum();
        archive.write_round_pinned(&subs, schema).map_err(|e| e.to_string())?;
        println!(
            "wrote round {round}: {} bundles, {logs} log files -> {}",
            subs.bundles.len(),
            archive.root().join(round.label()).display()
        );
    }
    Ok(archive)
}

fn ingest_archive(archive: &RoundArchive, streaming: bool) -> Result<ArchiveReplay, String> {
    let replay = if streaming {
        println!("ingesting archive with the bounded-memory streaming reader");
        archive.replay_streaming().map_err(|e| e.to_string())?
    } else {
        archive.replay().map_err(|e| e.to_string())?
    };
    for outcome in replay.history.outcomes() {
        println!(
            "round {}: accepted {} run sets, quarantined {} bundle(s)",
            outcome.round,
            outcome.accepted.len(),
            outcome.quarantined.len()
        );
        for report in &outcome.quarantined {
            for (benchmark, diagnostic) in report.diagnostics() {
                println!("  quarantine {} [{benchmark}]: {diagnostic}", report.org);
            }
        }
        archive.write_outcome(outcome).map_err(|e| e.to_string())?;
    }
    for fault in &replay.faults {
        println!("storage fault: {fault}");
    }
    Ok(replay)
}

fn report_archive(replay: &ArchiveReplay, chips: Option<usize>) {
    // Anchor Figure 4 at the requested scale, else the data-driven
    // common scale of the ingested history (16 when none is shared).
    let chips = chips.unwrap_or_else(|| replay.history.common_scale().unwrap_or(16));
    for outcome in replay.history.outcomes() {
        println!("\n=== round {} leaderboards ===\n", outcome.round);
        for board in leaderboards(outcome) {
            let title = format!("{} ({} division)", board.benchmark, board.division);
            print!("{}", render_leaderboard(&title, &board.rows()));
            println!();
        }
    }
    let speedup = replay.history.speedup_table(chips);
    let scale = replay.history.scale_table();
    println!("{}", speedup.render());
    println!("{}", scale.render());
}

/// One instrumented real harness run — the NCF benchmark on the wall
/// clock — so a traced demo carries `harness`-layer spans alongside
/// the ingest and store layers.
fn demo_harness_run(telemetry: &Telemetry) {
    let clock = RealClock::new();
    let mut bench = NcfBenchmark::new();
    let result = run_benchmark_with(&mut bench, 7, &clock, telemetry);
    println!(
        "harness run ({}, seed {}): {} epochs, quality {:.4}, reached target: {}\n",
        result.benchmark, result.seed, result.epochs, result.quality, result.reached_target
    );
}

/// The `loadgen` subcommand: scenario sweeps over simulated served
/// models on a deterministic simulated clock, packaged as a Closed
/// bundle, reviewed through `run_round`, and rendered as scenario
/// leaderboards. Every sweep is run twice and checked bit-identical —
/// the driver's determinism contract under `SimClock` — before its
/// logs are submitted.
fn run_loadgen(args: &Args, telemetry: &Telemetry) -> Result<(), String> {
    let benchmarks = [BenchmarkId::Recommendation, BenchmarkId::LanguageModeling];
    let mut references = Vec::new();
    let mut run_sets = Vec::new();
    let mut scenario_rows = Vec::new();
    for benchmark in benchmarks {
        let results = simulated_scenario_sweep(benchmark, args.seed, telemetry);
        let replay = simulated_scenario_sweep(benchmark, args.seed, &Telemetry::disabled());
        if results != replay {
            return Err(format!("{benchmark}: sweep is not deterministic under SimClock"));
        }
        println!("{benchmark}: {} scenarios, bit-identical across repeated sweeps", results.len());
        if let Some(dir) = &args.log_dir {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            for result in &results {
                let path =
                    dir.join(format!("{}_{}.mllog", benchmark.slug(), result.scenario.slug()));
                std::fs::write(&path, &result.log).map_err(|e| e.to_string())?;
                println!("  wrote {}", path.display());
            }
        }
        scenario_rows.extend(results.iter().map(|r| {
            json!({
                "benchmark": r.benchmark.slug(),
                "scenario": r.scenario.slug(),
                "seed": r.seed,
                "queries": r.queries,
                "duration_ms": r.duration.as_millis() as u64,
                "p50_ms": r.p50_ms,
                "p90_ms": r.p90_ms,
                "p99_ms": r.p99_ms,
                "qps": r.qps,
                "slo_ms": r.slo_ms,
                "slo_satisfied": r.slo_satisfied,
            })
        }));
        let reference = loadgen_reference(benchmark);
        run_sets.push(loadgen_run_set(&reference, &results));
        references.push(reference);
    }

    let system = SystemDescription {
        submitter: "SimServe".to_string(),
        system_name: "SimServe-1".to_string(),
        accelerators: 1,
        accelerator_model: "SimChip".to_string(),
        host_processors: 1,
        software: "mlperf-loadgen (simulated clock)".to_string(),
    };
    let bundle = loadgen_bundle("SimServe", system, run_sets);
    let subs = RoundSubmissions { round: Round::V07, references, bundles: vec![bundle] };
    let outcome = run_round_with(&subs, telemetry);
    for report in &outcome.quarantined {
        for (benchmark, diagnostic) in report.diagnostics() {
            eprintln!("quarantine {} [{benchmark}]: {diagnostic}", report.org);
        }
    }
    if !outcome.quarantined.is_empty() {
        return Err("loadgen bundle failed review".to_string());
    }
    println!("\nreview accepted {} scenario measurements\n", outcome.scenarios.len());

    // Persist the scenario round like any training round and prove the
    // archived copy reviews identically when read back from disk.
    if let Some(dir) = &args.archive {
        let archive =
            RoundArchive::create(dir).map_err(|e| e.to_string())?.with_telemetry(telemetry.clone());
        archive.write_round(&subs).map_err(|e| e.to_string())?;
        let replay = if args.streaming {
            archive.replay_streaming().map_err(|e| e.to_string())?
        } else {
            archive.replay().map_err(|e| e.to_string())?
        };
        for fault in &replay.faults {
            println!("storage fault: {fault}");
        }
        let replayed = replay
            .history
            .outcomes()
            .iter()
            .find(|o| o.round == subs.round)
            .ok_or_else(|| "archived scenario round did not re-ingest".to_string())?;
        if replayed.scenarios != outcome.scenarios || !replayed.quarantined.is_empty() {
            return Err(format!(
                "archived scenario round diverged on re-ingest: {} scenario entries \
                 (live review had {}), {} quarantined",
                replayed.scenarios.len(),
                outcome.scenarios.len(),
                replayed.quarantined.len()
            ));
        }
        archive.write_outcome(replayed).map_err(|e| e.to_string())?;
        println!(
            "archived scenario round {} -> {} (re-ingests identically)\n",
            subs.round,
            archive.root().display()
        );
    }

    for board in scenario_leaderboards(&outcome) {
        let title =
            format!("{} {} ({} division)", board.benchmark, board.scenario.slug(), board.division);
        print!("{}", render_scenario_leaderboard(&title, &board.rows()));
        println!();
    }

    let summary = json!({
        "seed": args.seed,
        "deterministic": true,
        "accepted_scenarios": outcome.scenarios.len(),
        "quarantined": outcome.quarantined.len(),
        "archived": args.archive.is_some(),
        "scenarios": scenario_rows,
    });
    let path = write_json("loadgen", &summary);
    println!("wrote {}", path.display());
    Ok(())
}

/// The `serve` subcommand: the live submission service on a real
/// socket, until `POST /shutdown`.
fn run_serve(args: &Args, telemetry: &Telemetry) -> Result<(), String> {
    let dir = args
        .archive
        .clone()
        .unwrap_or_else(|| mlperf_bench::experiments_dir().join("service_archive"));
    let archive =
        RoundArchive::create(&dir).map_err(|e| e.to_string())?.with_telemetry(telemetry.clone());
    let core = Arc::new(ServiceCore::new(archive, telemetry.clone()));
    if let Some(round) = args.round {
        core.open_round(round, round_references(round)).map_err(|e| e.to_string())?;
        println!("opened round {round} for submissions");
    }
    let addr = args.addr.as_deref().unwrap_or("127.0.0.1:8090");
    let server = HttpServer::bind(core, addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let addr = server.local_addr();
    println!("serving on http://{addr} (archive: {})", dir.display());
    println!("  POST /rounds/{{round}}/open         open a round (v0.5, v0.6, v0.7)");
    println!("  POST /rounds/{{round}}/bundles      submit a bundle (JSON body)");
    println!("  GET  /rounds/{{round}}/leaderboard  live leaderboards");
    println!("  GET  /rounds/{{round}}/status       round status");
    println!("  POST /rounds/{{round}}/close        close and publish");
    println!("  GET  /metrics                     Prometheus metrics");
    println!("  POST /shutdown                    stop the server");
    server.serve();
    println!("shutdown requested; server stopped");
    Ok(())
}

/// The `storm` subcommand: a seeded multi-client load test proving the
/// service's core contract — many submitters racing uploads over real
/// TCP, with leaderboard reads hammering the round mid-fill, must
/// publish exactly the outcome batch ingest computes from the same
/// bundles.
fn run_storm(args: &Args, telemetry: &Telemetry) -> Result<(), String> {
    let round = args.round.unwrap_or(Round::V06);
    let bundles = args.bundles.unwrap_or(240);
    let clients = args.clients;
    let dir = args
        .archive
        .clone()
        .unwrap_or_else(|| mlperf_bench::experiments_dir().join("storm_archive"));
    let _ = std::fs::remove_dir_all(&dir);
    let submissions = synthetic_stress_round(round, bundles, args.seed);

    let archive =
        RoundArchive::create(&dir).map_err(|e| e.to_string())?.with_telemetry(telemetry.clone());
    let core = Arc::new(ServiceCore::new(archive, telemetry.clone()));
    core.open_round(round, round_references(round)).map_err(|e| e.to_string())?;
    let server = HttpServer::bind(Arc::clone(&core), args.addr.as_deref().unwrap_or("127.0.0.1:0"))
        .map_err(|e| e.to_string())?;
    let handle = server.serve_background().map_err(|e| e.to_string())?;
    let addr = handle.addr().to_string();
    println!(
        "storm: {clients} clients submitting {bundles} bundles to round {round} on http://{addr}"
    );

    let stop = AtomicBool::new(false);
    let polls = AtomicUsize::new(0);
    let receipts: Vec<(u64, usize)> = std::thread::scope(|scope| {
        // A dedicated poller keeps read pressure on the leaderboard
        // for the whole fill, independent of submission pacing.
        {
            let addr = &addr;
            let stop = &stop;
            let polls = &polls;
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let path = format!("/rounds/{round}/leaderboard");
                    let board = http_get(addr, &path).expect("leaderboard poll");
                    assert_eq!(board.status, 200, "mid-round leaderboard read failed");
                    polls.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let mut workers = Vec::new();
        for client in 0..clients {
            let addr = &addr;
            let submissions = &submissions;
            let polls = &polls;
            workers.push(scope.spawn(move || {
                let mut got = Vec::new();
                for (position, bundle) in
                    submissions.bundles.iter().enumerate().skip(client).step_by(clients)
                {
                    let body = serde_json::to_string(bundle).expect("serialize bundle");
                    let path = format!("/rounds/{round}/bundles");
                    let reply = http_post(addr, &path, Some(&body)).expect("submit");
                    assert_eq!(reply.status, 200, "submit failed: {}", reply.body);
                    let receipt: serde_json::Value =
                        serde_json::from_str(&reply.body).expect("receipt json");
                    let index =
                        receipt["index"].as_u64().expect("receipt carries the assigned index");
                    got.push((index, position));
                    // Interleave the clients' own status reads with
                    // their uploads.
                    if position % 16 == client % 16 {
                        let path = format!("/rounds/{round}/status");
                        let status = http_get(addr, &path).expect("status poll");
                        assert_eq!(status.status, 200);
                        polls.fetch_add(1, Ordering::SeqCst);
                    }
                }
                got
            }));
        }
        let receipts = workers.into_iter().flat_map(|w| w.join().expect("client thread")).collect();
        stop.store(true, Ordering::SeqCst);
        receipts
    });
    println!(
        "all {} uploads accepted; {} mid-round leaderboard/status reads served",
        receipts.len(),
        polls.load(Ordering::SeqCst)
    );

    let metrics = http_get(&addr, "/metrics").map_err(|e| e.to_string())?;
    if !metrics.body.contains(&format!("service_bundles_submitted_total {bundles}")) {
        return Err("metrics endpoint did not report the submitted bundle count".to_string());
    }

    // The equivalence check: close the live round, then batch-ingest
    // the same bundles in service index order.
    let outcome = core.close_round(round).map_err(|e| e.to_string())?;
    let mut ordered = receipts;
    ordered.sort_unstable();
    let batch = RoundSubmissions {
        round,
        references: round_references(round),
        bundles: ordered
            .iter()
            .map(|&(_, position)| submissions.bundles[position].clone())
            .collect(),
    };
    let batch_outcome = run_round_with(&batch, &Telemetry::disabled());
    if outcome != batch_outcome {
        return Err(format!(
            "STORM DIVERGENCE: live round published {} accepted / {} quarantined, batch ingest \
             computed {} / {}",
            outcome.accepted.len(),
            outcome.quarantined.len(),
            batch_outcome.accepted.len(),
            batch_outcome.quarantined.len()
        ));
    }
    println!(
        "round {round} outcome identical to batch ingest: {} accepted entries, {} scenario \
         entries, {} quarantined",
        outcome.accepted.len(),
        outcome.scenarios.len(),
        outcome.quarantined.len()
    );
    handle.shutdown();

    let summary = json!({
        "round": round.label(),
        "clients": clients,
        "bundles": bundles,
        "seed": args.seed,
        "mid_round_reads": polls.load(Ordering::SeqCst),
        "accepted_entries": outcome.accepted.len(),
        "quarantined": outcome.quarantined.len(),
        "identical_to_batch": true,
        "archive": dir.display().to_string(),
    });
    let path = write_json("storm", &summary);
    println!("wrote {}", path.display());
    Ok(())
}

/// Builds and installs the clock-driven [`Reporter`] behind
/// `--metrics`/`--progress` (and always behind `serve`/`storm`, whose
/// `/metrics` endpoint exports the windowed series as `*_per_sec`
/// gauges — the live ingest throughput): the ingest, store, service,
/// and loadgen hot-path counters plus live pool gauges, sampled into
/// ring-buffered time-series every [`REPORT_INTERVAL`].
fn install_reporter(args: &Args, telemetry: &Telemetry) {
    let mut reporter = Reporter::new(REPORT_INTERVAL);
    if args.progress {
        reporter = reporter.with_progress(&args.command);
    }
    reporter.track_counter(
        telemetry,
        "ingest.bundles",
        telemetry.counter("ingest.bundles_reviewed"),
    );
    reporter.track_counter(telemetry, "ingest.logs", telemetry.counter("ingest.logs_parsed"));
    reporter.track_counter(
        telemetry,
        "service.bundles",
        telemetry.counter("service.bundles_submitted"),
    );
    reporter.track_counter(
        telemetry,
        "service.entries",
        telemetry.counter("service.entries_accepted"),
    );
    reporter.track_counter(telemetry, "store.bytes_read", telemetry.counter("store.bytes_read"));
    reporter.track_counter(telemetry, "loadgen.queries", telemetry.counter("loadgen.queries"));
    reporter.track_counter_fn(telemetry, "pool.items", || pool_stats().items_completed as f64);
    reporter.track_gauge_fn(telemetry, "pool.workers_busy", || pool_stats().workers_busy as f64);
    reporter.track_gauge_fn(telemetry, "pool.queue_depth", || pool_stats().queue_depth as f64);
    telemetry.install_reporter(reporter);
}

/// Folds the process-global pool and tensor-kernel stats into the
/// registry so the Prometheus snapshot carries them. Called once at
/// exit: these are end-of-run totals, not windowed series.
fn fold_process_stats(telemetry: &Telemetry) {
    let pool = pool_stats();
    telemetry.counter("pool.items_completed").add(pool.items_completed);
    telemetry.counter("pool.fanouts").add(pool.fanouts);
    // "hwm" (high-water mark), not "_peak": gauge *series* already
    // export a `_peak` reading, and Prometheus families must be unique.
    telemetry.gauge("pool.workers_busy_hwm").set(pool.workers_busy_peak);
    telemetry.gauge("pool.fanout_width_hwm").set(pool.fanout_width_peak);
    let kernels = kernel_stats();
    telemetry.counter("tensor.gemm_reference").add(kernels.gemm_reference);
    telemetry.counter("tensor.gemm_direct").add(kernels.gemm_direct);
    telemetry.counter("tensor.gemm_packed").add(kernels.gemm_packed);
    telemetry.counter("tensor.packed_bytes").add(kernels.packed_bytes);
    telemetry.counter("tensor.gemm_fanouts").add(kernels.gemm_fanouts);
    telemetry.gauge("tensor.fanout_width_hwm").set(kernels.fanout_width_peak);
}

/// Writes the Chrome `trace_event` file and prints the plain-text
/// telemetry summary. No-op without `--trace`.
fn flush_trace(trace: Option<&PathBuf>, telemetry: &Telemetry) -> Result<(), String> {
    let Some(path) = trace else {
        return Ok(());
    };
    let snapshot = telemetry.snapshot();
    write_trace(&snapshot, path).map_err(|e| e.to_string())?;
    println!("\n{}", render_telemetry_report(&snapshot));
    println!("wrote trace {}", path.display());
    Ok(())
}

/// Closes the final reporter window, folds process-global stats into
/// the registry, and writes the Prometheus text-exposition snapshot.
/// No-op without `--metrics`.
fn flush_metrics(metrics: Option<&PathBuf>, telemetry: &Telemetry) -> Result<(), String> {
    let Some(path) = metrics else {
        return Ok(());
    };
    fold_process_stats(telemetry);
    telemetry.flush_reporter();
    write_prometheus(&telemetry.snapshot(), path).map_err(|e| e.to_string())?;
    println!("wrote metrics {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    // serve/storm always record: their /metrics endpoint is the whole
    // point, and the reporter's windowed series are its live
    // throughput readings.
    let service = matches!(args.command.as_str(), "serve" | "storm");
    let observing = service || args.trace.is_some() || args.metrics.is_some() || args.progress;
    let mut telemetry = if observing { Telemetry::recording() } else { Telemetry::disabled() };
    if let Some(every) = args.sample {
        telemetry = telemetry
            .with_span_sampling(SpanSampling { threshold: SPAN_SAMPLING_THRESHOLD, every });
    }
    if service || args.metrics.is_some() || args.progress {
        install_reporter(&args, &telemetry);
    }
    if args.metrics.is_some() {
        enable_kernel_stats();
    }
    if let Some(kind) = args.backend {
        set_default_backend(kind);
    }
    println!("MLPerf submission-round pipeline (Section 4)");
    println!("tensor backend: {}\n", mlperf_tensor::default_backend());

    let result = match args.command.as_str() {
        "write" => {
            let Some(dir) = args.archive.as_ref() else {
                eprintln!("write requires --archive DIR");
                return ExitCode::FAILURE;
            };
            write_archive(dir, args.rounds, args.seed, args.bundles, args.schema, &telemetry)
                .map(|_| ())
        }
        "ingest" => RoundArchive::open(args.archive.clone().unwrap_or_else(|| PathBuf::from(".")))
            .map_err(|e| e.to_string())
            .and_then(|archive| {
                ingest_archive(&archive.with_telemetry(telemetry.clone()), args.streaming)
                    .map(|_| ())
            }),
        "migrate" => RoundArchive::open(args.archive.clone().unwrap_or_else(|| PathBuf::from(".")))
            .map_err(|e| e.to_string())
            .and_then(|archive| {
                let archive = archive.with_telemetry(telemetry.clone());
                let report = archive.migrate().map_err(|e| e.to_string())?;
                for fault in &report.faults {
                    println!("storage fault: {fault}");
                }
                println!("{report}");
                Ok(())
            }),
        "report" => RoundArchive::open(args.archive.clone().unwrap_or_else(|| PathBuf::from(".")))
            .map_err(|e| e.to_string())
            .and_then(|archive| {
                let replay =
                    ingest_archive(&archive.with_telemetry(telemetry.clone()), args.streaming)?;
                report_archive(&replay, args.chips);
                Ok(())
            }),
        "demo" => {
            let dir = args
                .archive
                .clone()
                .unwrap_or_else(|| mlperf_bench::experiments_dir().join("round_archive"));
            write_archive(&dir, args.rounds, args.seed, args.bundles, args.schema, &telemetry)
                .and_then(|archive| {
                    println!();
                    if telemetry.is_enabled() {
                        demo_harness_run(&telemetry);
                    }
                    let replay = ingest_archive(&archive, args.streaming)?;
                    report_archive(&replay, args.chips);
                    let chips =
                        args.chips.unwrap_or_else(|| replay.history.common_scale().unwrap_or(16));
                    let per_round: Vec<_> = replay
                        .history
                        .outcomes()
                        .iter()
                        .map(|o| {
                            json!({
                                "round": o.round.to_string(),
                                "accepted": o.accepted.len(),
                                "quarantined": o.quarantined.len(),
                            })
                        })
                        .collect();
                    let summary = json!({
                        "archive": archive.root().display().to_string(),
                        "rounds": per_round,
                        "storage_faults": replay.faults.len(),
                        "anchor_chips": chips,
                        "avg_speedup_at_chips": replay.history.speedup_table(chips).average_ratio(),
                        "avg_scale_growth": replay.history.scale_table().average_ratio(),
                    });
                    let path = write_json("round_pipeline", &summary);
                    println!("wrote {}", path.display());
                    Ok(())
                })
        }
        "loadgen" => run_loadgen(&args, &telemetry),
        "serve" => run_serve(&args, &telemetry),
        "storm" => run_storm(&args, &telemetry),
        _ => return usage(),
    };
    let result = result
        .and_then(|()| flush_metrics(args.metrics.as_ref(), &telemetry))
        .and_then(|()| flush_trace(args.trace.as_ref(), &telemetry));

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
