//! **Submission-round pipeline** — the end-to-end process of §4: three
//! vendors submit bundles of `:::MLLOG` logs for rounds v0.5 and v0.6,
//! the round pipeline ingests them concurrently, reviews each bundle
//! (parse → compliance → rules → equivalence → aggregation), and
//! publishes per-benchmark leaderboards plus the paper's Figure 4/5
//! cross-round tables — all computed from the ingested logs, not from
//! the simulator's internal numbers.
//!
//! One deliberately corrupted bundle is injected into each round to
//! demonstrate fault-tolerant ingest: review quarantines it with
//! line-level diagnostics and the round completes regardless.

use mlperf_bench::write_json;
use mlperf_core::report::render_leaderboard;
use mlperf_distsim::Round;
use mlperf_submission::{
    leaderboards, run_round, scale_table, speedup_table, synthetic_round, Fault, RoundOutcome,
    SyntheticRoundSpec,
};
use serde_json::json;

fn ingest(round: Round, seed: u64) -> RoundOutcome {
    // Every round gets a saboteur: Borealis's first run set loses its
    // `run_stop` in v0.5; in v0.6 a garbage line lands in Cumulus's log
    // and Aurora tampers with a restricted hyperparameter.
    let spec = match round {
        Round::V05 => SyntheticRoundSpec::new(round, seed)
            .with_fault(Fault::MissingRunStop { org: "Borealis".into() }),
        Round::V06 => SyntheticRoundSpec::new(round, seed)
            .with_fault(Fault::GarbageLine { org: "Cumulus".into() })
            .with_fault(Fault::IllegalHyperparameter {
                org: "Aurora".into(),
                name: "momentum".into(),
            }),
    };
    let submissions = synthetic_round(&spec);
    println!(
        "ingesting round {round}: {} bundles from {} orgs (concurrent review)",
        submissions.bundles.len(),
        3
    );
    let outcome = run_round(&submissions);
    println!(
        "  accepted {} run sets, quarantined {} bundle(s)",
        outcome.accepted.len(),
        outcome.quarantined.len()
    );
    for report in &outcome.quarantined {
        for (benchmark, diagnostic) in report.diagnostics() {
            println!("  quarantine {} [{benchmark}]: {diagnostic}", report.org);
        }
    }
    outcome
}

fn main() {
    println!("MLPerf submission-round pipeline (Section 4)\n");
    let v05 = ingest(Round::V05, 21);
    let v06 = ingest(Round::V06, 22);

    for (round, outcome) in [(Round::V05, &v05), (Round::V06, &v06)] {
        println!("\n=== round {round} leaderboards ===\n");
        for board in leaderboards(outcome) {
            let title = format!("{} ({} division)", board.benchmark, board.division);
            print!("{}", render_leaderboard(&title, &board.rows()));
            println!();
        }
    }

    let speedup = speedup_table(&v05, &v06, 16);
    let scale = scale_table(&v05, &v06);
    println!("{}", speedup.render());
    println!("{}", scale.render());

    let summary = json!({
        "v05_accepted": v05.accepted.len(),
        "v05_quarantined": v05.quarantined.len(),
        "v06_accepted": v06.accepted.len(),
        "v06_quarantined": v06.quarantined.len(),
        "avg_speedup_16_chips": speedup.average_ratio(),
        "avg_scale_growth": scale.average_ratio(),
    });
    let path = write_json("round_pipeline", &summary);
    println!("wrote {}", path.display());
}
