//! **Figure 5** — growth in the number of chips used by the system
//! producing the fastest overall score, v0.5 → v0.6. The paper reports
//! an average increase of ~5.5×, enabled by rule changes (LARS for
//! large-batch ResNet), maturing software stacks, and larger fielded
//! systems.
//!
//! Reproduced on the `distsim` simulator by sweeping every vendor's
//! feasible power-of-two scales in each round and taking the fastest.

use mlperf_bench::write_json;
use mlperf_distsim::{best_overall, Round, SimBenchmark, Vendor};
use serde::Serialize;

#[derive(Serialize)]
struct ScaleRow {
    benchmark: String,
    v05_chips: usize,
    v06_chips: usize,
    v05_minutes: f64,
    v06_minutes: f64,
    v05_batch: usize,
    v06_batch: usize,
    growth: f64,
}

fn main() {
    let seed = 2u64;
    let vendors = Vendor::fleet();
    println!("Figure 5: chips in the fastest overall entry, v0.5 -> v0.6\n");
    println!(
        "{:<16} {:>10} {:>10} {:>8}  {:>11} {:>11}",
        "benchmark", "v0.5 chips", "v0.6 chips", "growth", "v0.5 (min)", "v0.6 (min)"
    );
    let mut rows = Vec::new();
    for bench in SimBenchmark::round_comparison_suite() {
        let v05 = best_overall(&vendors, Round::V05, &bench, seed).expect("v0.5 entry");
        let v06 = best_overall(&vendors, Round::V06, &bench, seed).expect("v0.6 entry");
        let growth = v06.chips as f64 / v05.chips as f64;
        println!(
            "{:<16} {:>10} {:>10} {:>7.1}x  {:>11.1} {:>11.1}",
            bench.name, v05.chips, v06.chips, growth, v05.minutes, v06.minutes
        );
        rows.push(ScaleRow {
            benchmark: bench.name.clone(),
            v05_chips: v05.chips,
            v06_chips: v06.chips,
            v05_minutes: v05.minutes,
            v06_minutes: v06.minutes,
            v05_batch: v05.batch,
            v06_batch: v06.batch,
            growth,
        });
    }
    let avg = rows.iter().map(|r| r.growth).sum::<f64>() / rows.len() as f64;
    println!("\naverage scale growth: {avg:.1}x  (paper: ~5.5x)");
    let path = write_json("fig5_scale", &rows);
    println!("wrote {}", path.display());
}
