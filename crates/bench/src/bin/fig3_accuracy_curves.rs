//! **Figure 3** — top-1 accuracy of the ResNet benchmark over epochs
//! for 5 runs with identical hyperparameters other than the seed,
//! against the 74.9% quality-target line.
//!
//! The paper uses this figure to justify choosing *high* quality
//! thresholds: "the early phase of training is marked by significantly
//! more variability", so a low threshold would amplify run-to-run
//! timing noise.

use mlperf_bench::{render_series, std_dev, write_json};
use mlperf_core::benchmarks::ResNetBenchmark;
use mlperf_core::harness::Benchmark;
use mlperf_core::suite::BenchmarkId;
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    seed: u64,
    accuracy: Vec<f64>,
}

#[derive(Serialize)]
struct Fig3 {
    target: f64,
    curves: Vec<Curve>,
    early_epoch_std: f64,
    late_epoch_std: f64,
}

fn main() {
    let epochs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let target = BenchmarkId::ImageClassification.spec().quality.value;
    println!("Figure 3: ResNet top-1 accuracy over epochs, 5 seeds (target {target})\n");
    let mut curves = Vec::new();
    for seed in [11u64, 22, 33, 44, 55] {
        // Drive the benchmark manually so training continues past the
        // threshold (the figure shows full curves, not stopped runs).
        let mut bench = ResNetBenchmark::new();
        bench.prepare();
        bench.create_model(seed);
        let mut acc = Vec::with_capacity(epochs);
        for e in 0..epochs {
            bench.train_epoch(e);
            acc.push(bench.evaluate());
        }
        println!("{}", render_series(&format!("seed {seed}"), &acc, 3));
        curves.push(Curve { seed, accuracy: acc });
    }
    let at = |e: usize| -> Vec<f64> { curves.iter().map(|c| c.accuracy[e]).collect() };
    let early = std_dev(&at(1));
    let late = std_dev(&at(epochs - 1));
    println!("\ntarget line: {target}");
    println!("across-seed std at epoch 2: {early:.4}; at epoch {epochs}: {late:.4}");
    println!(
        "early-phase variability is {:.1}x the late-phase variability",
        early / late.max(1e-9)
    );
    let path = write_json(
        "fig3_accuracy_curves",
        &Fig3 { target, curves, early_epoch_std: early, late_epoch_std: late },
    );
    println!("wrote {}", path.display());
}
