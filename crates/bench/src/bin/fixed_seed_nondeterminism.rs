//! **Figure 2b (fixed-seed groupings)** — §2.2.3: "For MiniGo, we
//! observed significant variability across runs even when fixing the
//! random seed", which the paper attributes to system-level
//! nondeterminism such as "non-commutativity of floating point
//! additions" and "different gradient accumulation orders" in
//! distributed training.
//!
//! This harness reproduces the mechanism directly: a ResNet training
//! run with a *fixed* seed is repeated under data-parallel gradient
//! aggregation (4 shards), with only the all-reduce summation order
//! permuted between replicas. The orders are mathematically equivalent;
//! the f32 rounding differences they introduce are amplified by
//! training chaos into measurably different trajectories — and
//! sometimes different epochs-to-target.

use mlperf_bench::{render_histogram, write_json};
use mlperf_data::{epoch_batches, ImageNetConfig, SyntheticImageNet};
use mlperf_models::{ResNetConfig, ResNetMini};
use mlperf_nn::Module;
use mlperf_optim::{data_parallel_step, ReductionOrder, SgdTorch};
use mlperf_tensor::TensorRng;
use serde::Serialize;

const SHARDS: usize = 4;
// Above the Table 1 threshold, in the noisy mid-training region, so
// rounding chaos can shift the crossing epoch.
const TARGET: f64 = 0.94;

#[derive(Serialize)]
struct Replica {
    permutation_seed: u64,
    epochs_to_target: usize,
    quality_curve: Vec<f64>,
    final_weight_checksum: f64,
}

fn run_replica(permutation_seed: u64, data: &SyntheticImageNet) -> Replica {
    // Model/data seed FIXED across replicas; only the reduction order
    // differs.
    let mut rng = TensorRng::new(7);
    let cfg = data.config();
    let model = ResNetMini::new(
        ResNetConfig {
            in_channels: cfg.channels,
            input_size: cfg.image_size,
            classes: cfg.classes,
            base_width: 8,
            blocks_per_stage: 1,
        },
        &mut rng,
    );
    let mut opt = SgdTorch::new(model.params(), 0.9, 1e-4);
    let mut data_rng = rng.split();
    let mut order_rng = TensorRng::new(0xDEAD ^ permutation_seed);
    let params = model.params();
    let mut curve = Vec::new();
    let mut epochs_to_target = 0usize;
    let max_epochs = 12;
    for epoch in 0..max_epochs {
        for batch in epoch_batches(data.train.len(), 32, &mut data_rng).iter() {
            // Shard the minibatch across simulated workers.
            let per_shard = batch.len().div_ceil(SHARDS);
            let mut order: Vec<usize> = (0..SHARDS).collect();
            order_rng.shuffle(&mut order);
            let batch = batch.clone();
            let model_ref = &model;
            let data_ref = data;
            data_parallel_step(
                &params,
                SHARDS,
                &ReductionOrder::Permuted(order),
                &mut opt,
                0.08,
                |shard| {
                    let lo = (shard * per_shard).min(batch.len().saturating_sub(1));
                    let hi = ((shard + 1) * per_shard).min(batch.len());
                    let idx = &batch[lo..hi.max(lo + 1)];
                    let (images, labels) = data_ref.train.batch(idx);
                    model_ref.loss(&images, &labels)
                },
            );
        }
        let acc = model.accuracy(data.val.images(), data.val.labels()) as f64;
        curve.push(acc);
        if epochs_to_target == 0 && acc >= TARGET {
            epochs_to_target = epoch + 1;
        }
    }
    if epochs_to_target == 0 {
        epochs_to_target = max_epochs;
    }
    let checksum =
        params.iter().map(|p| p.value().data().iter().map(|&x| x as f64).sum::<f64>()).sum();
    Replica {
        permutation_seed,
        epochs_to_target,
        quality_curve: curve,
        final_weight_checksum: checksum,
    }
}

fn main() {
    let replicas: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    println!(
        "Fixed-seed nondeterminism study (paper §2.2.3 / Figure 2b groupings)\n\
         model seed fixed; only the {SHARDS}-shard all-reduce order varies\n"
    );
    let data = SyntheticImageNet::generate(ImageNetConfig::default(), 0x1357_9bdf);
    let results: Vec<Replica> = (0..replicas as u64)
        .map(|i| {
            let r = run_replica(i, &data);
            println!(
                "replica {i}: epochs-to-target {} | final-weight checksum {:+.6}",
                r.epochs_to_target, r.final_weight_checksum
            );
            r
        })
        .collect();
    // Per-epoch across-replica spread: zero while trajectories are
    // still bit-identical, nonzero once rounding chaos takes over.
    let n_epochs = results[0].quality_curve.len();
    print!("\nacross-replica accuracy spread per epoch:");
    for e in 0..n_epochs {
        let vals: Vec<f64> = results.iter().map(|r| r.quality_curve[e]).collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        print!(" {spread:.3}");
    }
    println!();
    let epochs: Vec<usize> = results.iter().map(|r| r.epochs_to_target).collect();
    println!("\nepochs-to-target histogram (fixed seed!):");
    println!("{}", render_histogram(&epochs));
    let checksums: Vec<f64> = results.iter().map(|r| r.final_weight_checksum).collect();
    let spread = checksums.iter().cloned().fold(f64::MIN, f64::max)
        - checksums.iter().cloned().fold(f64::MAX, f64::min);
    println!("final-weight checksum spread across replicas: {spread:.3e}");
    println!("(zero would mean bitwise-identical runs; nonzero shows rounding-order chaos)");
    let path = write_json("fixed_seed_nondeterminism", &results);
    println!("wrote {}", path.display());
}
