//! **§6 / Figure 4 context** — what raising the quality targets costs.
//!
//! Figure 4 reports that v0.6 entries got faster "despite the higher
//! quality targets". This harness measures the other side of that
//! trade on the *real* miniaturized benchmarks: training the same
//! workload to the v0.5 threshold and then to the raised v0.6
//! threshold, and reporting the epoch inflation the raised target
//! alone causes.

use mlperf_bench::{flush_trace, mean, trace_telemetry, write_json};
use mlperf_core::benchmarks::{ResNetBenchmark, SsdBenchmark};
use mlperf_core::harness::{run_benchmark_set_with, Benchmark};
use mlperf_core::suite::SuiteVersion;
use mlperf_telemetry::Telemetry;
use serde::Serialize;

#[derive(Serialize)]
struct RoundRow {
    benchmark: String,
    version: String,
    target: f64,
    epochs_per_seed: Vec<usize>,
    reached: Vec<bool>,
    mean_epochs: f64,
}

fn measure(
    name: &str,
    make: impl Fn() -> Box<dyn Benchmark> + Sync,
    version: SuiteVersion,
    seeds: &[u64],
    telemetry: &Telemetry,
) -> RoundRow {
    let target = make().target();
    let results = run_benchmark_set_with(make, seeds, telemetry);
    let epochs: Vec<usize> = results.iter().map(|r| r.epochs).collect();
    let reached: Vec<bool> = results.iter().map(|r| r.reached_target).collect();
    let mean_epochs = mean(&epochs.iter().map(|&e| e as f64).collect::<Vec<_>>());
    println!(
        "{name:<8} {version}  target {target:>6.3}  epochs {epochs:?}  mean {mean_epochs:.1}  all-reached {}",
        reached.iter().all(|&r| r)
    );
    RoundRow {
        benchmark: name.to_string(),
        version: version.to_string(),
        target,
        epochs_per_seed: epochs,
        reached,
        mean_epochs,
    }
}

fn main() {
    let seeds = [3u64, 4, 5];
    let (telemetry, trace_path) = trace_telemetry();
    println!("Raised-quality-target study: the same workloads to v0.5 vs v0.6 thresholds\n");
    let mut rows = Vec::new();
    for version in [SuiteVersion::V05, SuiteVersion::V06] {
        rows.push(measure(
            "resnet",
            || Box::new(ResNetBenchmark::new().with_version(version)),
            version,
            &seeds,
            &telemetry,
        ));
        rows.push(measure(
            "ssd",
            || Box::new(SsdBenchmark::new().with_version(version)),
            version,
            &seeds,
            &telemetry,
        ));
    }
    for name in ["resnet", "ssd"] {
        let v05 = rows.iter().find(|r| r.benchmark == name && r.version == "v0.5").expect("row");
        let v06 = rows.iter().find(|r| r.benchmark == name && r.version == "v0.6").expect("row");
        println!(
            "\n{name}: raised target costs {:.2}x the epochs ({:.1} -> {:.1})",
            v06.mean_epochs / v05.mean_epochs,
            v05.mean_epochs,
            v06.mean_epochs
        );
    }
    let path = write_json("round_targets", &rows);
    println!("\nwrote {}", path.display());
    flush_trace(&telemetry, trace_path.as_ref());
}
