//! **Table 1** — the MLPerf Training v0.5 benchmark suite.
//!
//! Prints the suite definition (area, dataset, model, quality
//! threshold) and, for each row, actually trains the miniaturized
//! reference implementation to its threshold, reporting the measured
//! epochs and time-to-train. Pass `--full` to run each benchmark the
//! §3.2.2-required number of times (5 vision / 10 other) and report the
//! official aggregated score.

use mlperf_bench::write_json;
use mlperf_core::aggregate::{aggregate_runs, RunSummary};
use mlperf_core::benchmarks::build;
use mlperf_core::harness::run_benchmark;
use mlperf_core::suite::BenchmarkId;
use mlperf_core::timing::RealClock;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: &'static str,
    area: &'static str,
    dataset: &'static str,
    model: &'static str,
    metric: &'static str,
    threshold: f64,
    runs: usize,
    epochs: Vec<usize>,
    quality: Vec<f64>,
    seconds: Vec<f64>,
    aggregated_seconds: Option<f64>,
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("MLPerf Training v0.5 benchmark suite (Table 1), reproduced\n");
    println!(
        "{:<12} {:<9} {:<34} {:<30} {:<20} {:>9} {:>6} {:>8} {:>9}",
        "benchmark", "area", "dataset", "model", "metric", "threshold", "runs", "epochs", "ttt(s)"
    );
    let mut rows = Vec::new();
    for id in BenchmarkId::ALL {
        let spec = id.spec();
        let runs = if full { id.runs_required() } else { 1 };
        let mut epochs = Vec::new();
        let mut quality = Vec::new();
        let mut seconds = Vec::new();
        let mut summaries = Vec::new();
        for run in 0..runs {
            let mut bench = build(id);
            let clock = RealClock::new();
            let result = run_benchmark(bench.as_mut(), 1000 + run as u64, &clock);
            assert!(result.reached_target, "{id} failed to reach its threshold on run {run}");
            epochs.push(result.epochs);
            quality.push(result.quality);
            seconds.push(result.time_to_train.as_secs_f64());
            summaries.push(RunSummary {
                seconds: result.time_to_train.as_secs_f64(),
                reached_target: true,
            });
        }
        let aggregated_seconds = if full {
            Some(aggregate_runs(id, &summaries).expect("aggregation succeeds"))
        } else {
            None
        };
        let mean_epochs = epochs.iter().sum::<usize>() as f64 / epochs.len() as f64;
        let mean_secs = seconds.iter().sum::<f64>() / seconds.len() as f64;
        println!(
            "{:<12} {:<9} {:<34} {:<30} {:<20} {:>9.3} {:>6} {:>8.1} {:>9.2}",
            id.slug(),
            spec.area,
            spec.dataset,
            spec.model,
            spec.quality.metric,
            spec.quality.value,
            runs,
            mean_epochs,
            aggregated_seconds.unwrap_or(mean_secs),
        );
        rows.push(Row {
            benchmark: id.slug(),
            area: spec.area,
            dataset: spec.dataset,
            model: spec.model,
            metric: spec.quality.metric,
            threshold: spec.quality.value,
            runs,
            epochs,
            quality,
            seconds,
            aggregated_seconds,
        });
    }
    let path = write_json("table1", &rows);
    println!("\nwrote {}", path.display());
}
