//! Shared plumbing for the experiment harnesses in `src/bin/`: the
//! output directory, machine-readable result dumps, and small
//! text-rendering helpers (series and histograms) used to print the
//! tables and figure data the paper reports.

#![warn(missing_docs)]

use mlperf_telemetry::{write_trace, Telemetry};
use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Directory where harnesses drop machine-readable results.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a serializable result as pretty JSON under
/// `target/experiments/<name>.json` and returns the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("results serialize");
    std::fs::write(&path, json).expect("write experiment results");
    path
}

/// Renders a labelled numeric series as one line: `label: v v v …`.
pub fn render_series(label: &str, values: &[f64], precision: usize) -> String {
    let mut out = format!("{label:>10}:");
    for v in values {
        write!(out, " {v:.precision$}").expect("string write");
    }
    out
}

/// Renders an ASCII histogram of integer-valued observations
/// (e.g. epochs-to-target per seed, Figure 2's quantity).
pub fn render_histogram(values: &[usize]) -> String {
    if values.is_empty() {
        return String::from("(no data)");
    }
    let lo = *values.iter().min().expect("non-empty");
    let hi = *values.iter().max().expect("non-empty");
    let mut out = String::new();
    for bucket in lo..=hi {
        let count = values.iter().filter(|&&v| v == bucket).count();
        writeln!(out, "{bucket:>4} | {}", "#".repeat(count)).expect("string write");
    }
    out
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Telemetry for a figure harness: recording when `--trace FILE` is on
/// the command line, disabled (and free) otherwise. Pair with
/// [`flush_trace`] at the end of `main`.
pub fn trace_telemetry() -> (Telemetry, Option<PathBuf>) {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    while let Some(flag) = args.next() {
        if flag == "--trace" {
            path = args.next().map(PathBuf::from);
        }
    }
    match path {
        Some(path) => (Telemetry::recording(), Some(path)),
        None => (Telemetry::disabled(), None),
    }
}

/// Writes the recorded trace as Chrome `trace_event` JSON-lines when
/// [`trace_telemetry`] returned a path; a no-op otherwise.
pub fn flush_trace(telemetry: &Telemetry, path: Option<&PathBuf>) {
    let Some(path) = path else {
        return;
    };
    write_trace(&telemetry.snapshot(), path).expect("write trace file");
    println!("wrote trace {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_buckets() {
        let h = render_histogram(&[3, 3, 4, 6]);
        assert!(h.contains("   3 | ##"));
        assert!(h.contains("   4 | #"));
        assert!(h.contains("   6 | #"));
    }

    #[test]
    fn series_formats() {
        let s = render_series("acc", &[0.5, 0.75], 2);
        assert!(s.ends_with("0.50 0.75"));
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }
}
