//! Criterion benchmarks at the suite level: a complete time-to-train
//! run for the fastest benchmark, plus the methodology machinery whose
//! cost the rules assume negligible (log rendering/parsing, compliance
//! checking, aggregation, submission simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use mlperf_core::aggregate::{olympic_mean, stability_fraction};
use mlperf_core::benchmarks::NcfBenchmark;
use mlperf_core::compliance::check_log;
use mlperf_core::harness::run_benchmark;
use mlperf_core::mllog::MlLogger;
use mlperf_core::timing::RealClock;
use mlperf_distsim::{best_overall, Round, SimBenchmark, Vendor};
use std::hint::black_box;

fn bench_ncf_time_to_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("ncf_time_to_train", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            let mut bench = NcfBenchmark::new();
            let clock = RealClock::new();
            seed += 1;
            run_benchmark(&mut bench, seed, &clock)
        })
    });
    group.finish();
}

fn bench_log_machinery(c: &mut Criterion) {
    // A realistic run log to exercise render/parse/compliance.
    let mut bench = NcfBenchmark::new();
    let clock = RealClock::new();
    let result = run_benchmark(&mut bench, 1, &clock);
    let text = result.log.render();
    c.bench_function("mllog_render", |b| b.iter(|| black_box(&result.log).render()));
    c.bench_function("mllog_parse", |b| {
        b.iter(|| MlLogger::parse(black_box(&text)).expect("parses"))
    });
    c.bench_function("compliance_check", |b| b.iter(|| check_log(black_box(result.log.entries()))));
}

fn bench_aggregation(c: &mut Criterion) {
    let times: Vec<f64> = (0..10).map(|i| 100.0 + i as f64).collect();
    c.bench_function("olympic_mean_10", |b| b.iter(|| olympic_mean(black_box(&times))));
    c.bench_function("stability_mc_500", |b| {
        b.iter(|| stability_fraction(black_box(&times), 5, 500, 0.05, 7))
    });
}

fn bench_submission_simulation(c: &mut Criterion) {
    let vendors = Vendor::fleet();
    let suite = SimBenchmark::round_comparison_suite();
    c.bench_function("distsim_best_overall_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for bench in &suite {
                for round in Round::ALL {
                    total += best_overall(black_box(&vendors), round, bench, 1)
                        .expect("feasible")
                        .minutes;
                }
            }
            total
        })
    });
}

criterion_group!(
    benches,
    bench_ncf_time_to_train,
    bench_log_machinery,
    bench_aggregation,
    bench_submission_simulation
);
criterion_main!(benches);
