//! Criterion benchmarks of one training step (forward + backward +
//! optimizer update) for each reference model — the throughput quantity
//! the paper contrasts with time-to-train (§2.2.1: throughput alone
//! cannot rank systems, but it is still what each step costs).

use criterion::{criterion_group, criterion_main, Criterion};
use mlperf_data::{
    reference_games, CfConfig, GoDataset, ImageNetConfig, ShapesConfig, SyntheticCf,
    SyntheticImageNet, SyntheticShapes, SyntheticTranslation, TranslationConfig,
};
use mlperf_models::{
    GnmtConfig, GnmtMini, MiniGoConfig, MiniGoNet, Ncf, NcfConfig, ResNetConfig, ResNetMini,
    SsdConfig, SsdMini, TransformerConfig, TransformerMini,
};
use mlperf_nn::Module;
use mlperf_optim::{Adam, Optimizer, SgdTorch};
use mlperf_tensor::TensorRng;
use std::hint::black_box;

fn bench_resnet_step(c: &mut Criterion) {
    let mut rng = TensorRng::new(0);
    let data = SyntheticImageNet::generate(ImageNetConfig::default(), 0);
    let model = ResNetMini::new(ResNetConfig::default(), &mut rng);
    let mut opt = SgdTorch::new(model.params(), 0.9, 0.0);
    let (images, labels) = data.train.batch(&(0..32).collect::<Vec<_>>());
    c.bench_function("step/resnet_b32", |b| {
        b.iter(|| {
            opt.zero_grad();
            model.loss(black_box(&images), black_box(&labels)).backward();
            opt.step(0.05);
        })
    });
}

fn bench_ssd_step(c: &mut Criterion) {
    let mut rng = TensorRng::new(1);
    let data = SyntheticShapes::generate(ShapesConfig::default(), 1);
    let model = SsdMini::new(SsdConfig::default(), &mut rng);
    let mut opt = Adam::with_defaults(model.params());
    let samples: Vec<_> = data.train.iter().take(16).collect();
    c.bench_function("step/ssd_b16", |b| {
        b.iter(|| {
            opt.zero_grad();
            model.loss(black_box(&samples)).backward();
            opt.step(0.004);
        })
    });
}

fn bench_transformer_step(c: &mut Criterion) {
    let mut rng = TensorRng::new(2);
    let data_cfg = TranslationConfig::default();
    let data = SyntheticTranslation::generate(data_cfg, 2);
    let model = TransformerMini::new(
        TransformerConfig {
            vocab: data_cfg.vocab,
            max_len: data_cfg.max_len + 2,
            ..Default::default()
        },
        &mut rng,
    );
    let mut opt = Adam::with_defaults(model.params());
    let pairs: Vec<_> = data.train.iter().take(32).collect();
    let batch = SyntheticTranslation::pad_batch(&pairs, data_cfg.max_len);
    c.bench_function("step/transformer_b32", |b| {
        b.iter(|| {
            opt.zero_grad();
            model.loss(black_box(&batch)).backward();
            opt.step(0.01);
        })
    });
}

fn bench_gnmt_step(c: &mut Criterion) {
    let mut rng = TensorRng::new(3);
    let data_cfg = TranslationConfig::default();
    let data = SyntheticTranslation::generate(data_cfg, 3);
    let model = GnmtMini::new(
        GnmtConfig { vocab: data_cfg.vocab, max_len: data_cfg.max_len + 2, ..Default::default() },
        &mut rng,
    );
    let mut opt = Adam::with_defaults(model.params());
    let pairs: Vec<_> = data.train.iter().take(32).collect();
    let batch = SyntheticTranslation::pad_batch(&pairs, data_cfg.max_len);
    c.bench_function("step/gnmt_b32", |b| {
        b.iter(|| {
            opt.zero_grad();
            model.loss(black_box(&batch)).backward();
            opt.step(0.01);
        })
    });
}

fn bench_ncf_step(c: &mut Criterion) {
    let mut rng = TensorRng::new(4);
    let cf_cfg = CfConfig::default();
    let data = SyntheticCf::generate(cf_cfg, 4);
    let model = Ncf::new(
        NcfConfig { users: cf_cfg.users, items: cf_cfg.items, ..Default::default() },
        &mut rng,
    );
    let mut opt = Adam::with_defaults(model.params());
    let triples: Vec<_> = data.training_triples(2, &mut rng).into_iter().take(64).collect();
    c.bench_function("step/ncf_b64", |b| {
        b.iter(|| {
            opt.zero_grad();
            model.loss(black_box(&triples)).backward();
            opt.step(0.01);
        })
    });
}

fn bench_minigo_step(c: &mut Criterion) {
    let mut rng = TensorRng::new(5);
    let ds = GoDataset::from_games(&reference_games(2, 9, 5));
    let model = MiniGoNet::new(MiniGoConfig::default(), &mut rng);
    let mut opt = Adam::with_defaults(model.params());
    let idx: Vec<usize> = (0..32.min(ds.len())).collect();
    let (features, moves, outcomes) = ds.batch(&idx);
    c.bench_function("step/minigo_b32", |b| {
        b.iter(|| {
            opt.zero_grad();
            model.loss(black_box(&features), black_box(&moves), black_box(&outcomes)).backward();
            opt.step(0.005);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_resnet_step, bench_ssd_step, bench_transformer_step,
              bench_gnmt_step, bench_ncf_step, bench_minigo_step
}
criterion_main!(benches);
