//! Criterion benchmarks for the numerical kernels underlying every
//! benchmark in the suite, including the im2col-vs-direct convolution
//! ablation (§2.2.4 discusses algorithmic variants of the same
//! operator as a source of cross-framework numerical differences; the
//! performance gap between lowerings is why frameworks pick per-shape
//! algorithms at all).

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};
use mlperf_distsim::{allreduce_time, Interconnect};
use mlperf_gomini::{Board, Player, RandomPlayer};
use mlperf_tensor::{Conv2dSpec, TensorRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = TensorRng::new(0);
    for n in [16usize, 32, 64] {
        let a = rng.normal(&[n, n], 0.0, 1.0);
        let b = rng.normal(&[n, n], 0.0, 1.0);
        group.bench_with_input(CriterionId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    group.finish();
}

fn bench_conv_lowerings(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = TensorRng::new(1);
    let x = rng.normal(&[4, 8, 12, 12], 0.0, 1.0);
    let w = rng.normal(&[16, 8, 3, 3], 0.0, 0.5);
    let spec = Conv2dSpec::new(3, 1, 1);
    group.bench_function("im2col", |b| b.iter(|| black_box(&x).conv2d(black_box(&w), None, spec)));
    group.bench_function("direct", |b| {
        b.iter(|| black_box(&x).conv2d_direct(black_box(&w), None, spec))
    });
    group.finish();
}

fn bench_softmax_and_reductions(c: &mut Criterion) {
    let mut rng = TensorRng::new(2);
    let logits = rng.normal(&[256, 64], 0.0, 2.0);
    c.bench_function("softmax_256x64", |b| b.iter(|| black_box(&logits).softmax_last_axis()));
    let t = rng.normal(&[64, 64, 8], 0.0, 1.0);
    c.bench_function("sum_axis_mid", |b| b.iter(|| black_box(&t).sum_axis(1, false)));
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = TensorRng::new(3);
    let w = rng.normal(&[4096], 0.0, 1.0);
    let mut group = c.benchmark_group("quantize");
    for p in mlperf_tensor::Precision::ALL {
        group.bench_with_input(CriterionId::from_parameter(p), &p, |b, &p| {
            b.iter(|| black_box(&w).quantize(p))
        });
    }
    group.finish();
}

fn bench_allreduce_model(c: &mut Criterion) {
    let fabric = Interconnect { bandwidth_gbs: 100.0, latency_us: 3.0 };
    c.bench_function("allreduce_model_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [2usize, 8, 64, 512, 4096] {
                acc += allreduce_time(black_box(1e8), n, fabric);
            }
            acc
        })
    });
}

fn bench_go_engine(c: &mut Criterion) {
    let mut board = Board::new(9);
    // Mid-game position.
    let mut player = RandomPlayer::new(5);
    for _ in 0..30 {
        let mv = player.select_move(&board);
        board.play(mv).expect("engine move legal");
    }
    c.bench_function("go_legal_moves_midgame", |b| b.iter(|| black_box(&board).legal_moves()));
    c.bench_function("go_score_midgame", |b| b.iter(|| black_box(&board).score(7.5)));
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv_lowerings,
    bench_softmax_and_reductions,
    bench_quantization,
    bench_allreduce_model,
    bench_go_engine
);
criterion_main!(benches);
