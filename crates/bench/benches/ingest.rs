//! Criterion benchmarks for the archive-ingest hot path (ROADMAP names
//! the `:::MLLOG` parser as dominating review time): `parse_mllog_line`
//! in isolation, whole-log parsing, reading a round back off disk, and
//! `run_round`'s parallel review over a full synthetic round — both
//! straight from memory and re-ingested from a written archive.
//! Baseline numbers live in `BENCH.md` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use mlperf_core::mllog::{parse_mllog_line, parse_mllog_line_serde, MlLogger};
use mlperf_distsim::Round;
use mlperf_submission::{
    run_round, run_round_with, synthetic_round, RoundArchive, SyntheticRoundSpec,
};
use mlperf_telemetry::Telemetry;
use std::hint::black_box;

/// One synthetic round at the default fleet size: 6 bundles, ~200 log
/// files — the unit of work `ingest` and `report` process per round.
fn round() -> mlperf_submission::RoundSubmissions {
    synthetic_round(&SyntheticRoundSpec::new(Round::V05, 97))
}

fn bench_parse_mllog_line(c: &mut Criterion) {
    let subs = round();
    let log = &subs.bundles[0].run_sets[0].logs[0];
    // A mid-log line with a structured value: the common case.
    let line = log.lines().nth(log.lines().count() / 2).expect("log has lines").to_string();
    let mut group = c.benchmark_group("mllog");
    group.bench_function("parse_line", |b| {
        b.iter(|| parse_mllog_line(black_box(&line)).expect("line parses"))
    });
    // The pure-serde reference path the zero-copy scanner is measured
    // against (and falls back to on non-canonical lines).
    group.bench_function("parse_line_serde", |b| {
        b.iter(|| parse_mllog_line_serde(black_box(&line)).expect("line parses"))
    });
    group.bench_function("parse_log", |b| {
        b.iter(|| MlLogger::parse(black_box(log)).expect("log parses"))
    });
    group.finish();
}

fn bench_run_round(c: &mut Criterion) {
    let subs = round();
    let logs: usize = subs.bundles.iter().flat_map(|b| &b.run_sets).map(|rs| rs.logs.len()).sum();
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    group.bench_function(format!("run_round_{}_bundles_{logs}_logs", subs.bundles.len()), |b| {
        b.iter(|| run_round(black_box(&subs)))
    });
    // The same workload with telemetry recording: the gap between this
    // and the line above is the full cost of span + metric capture
    // (per-log spans included); BENCH.md tracks both.
    group.bench_function("run_round_traced", |b| {
        b.iter(|| {
            let telemetry = Telemetry::recording();
            run_round_with(black_box(&subs), &telemetry)
        })
    });
    group.finish();
}

fn bench_archive_ingest(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("mlperf-bench-archive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let archive = RoundArchive::create(&dir).expect("create archive");
    archive.write_round(&round()).expect("write round");

    let mut group = c.benchmark_group("archive");
    group.sample_size(10);
    group.bench_function("read_round", |b| {
        b.iter(|| {
            let ingest = archive.read_round(black_box(Round::V05)).expect("read round");
            assert!(ingest.faults.is_empty());
            ingest
        })
    });
    group.bench_function("read_round_and_review", |b| {
        b.iter(|| {
            let ingest = archive.read_round(black_box(Round::V05)).expect("read round");
            run_round(&ingest.submissions)
        })
    });
    // The bounded-memory streaming path over the same round: parse and
    // review per bundle as it comes off disk, never materializing the
    // round.
    group.bench_function("stream_round_and_review", |b| {
        b.iter(|| {
            let (outcome, faults) =
                archive.review_round_streaming(black_box(Round::V05)).expect("stream round");
            assert!(faults.is_empty());
            outcome
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_parse_mllog_line, bench_run_round, bench_archive_ingest);
criterion_main!(benches);
