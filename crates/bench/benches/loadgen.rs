//! Criterion benchmarks for the loadgen scenario driver's dispatch
//! hot path: the Server scenario's Poisson arrival loop and QPS binary
//! search with the model stubbed out (a fixed-cost `SimClock` advance
//! per query), so the numbers isolate driver overhead — arrival
//! pacing, latency bookkeeping, mllog rendering — from model compute.
//! Baseline numbers live in `BENCH.md` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use mlperf_core::rules::Scenario;
use mlperf_core::suite::BenchmarkId;
use mlperf_core::timing::SimClock;
use mlperf_loadgen::{
    simulated_scenario_sweep, LoadGenDriver, ScenarioConfig, ServeModel, SimPacer,
};
use mlperf_telemetry::Telemetry;
use std::hint::black_box;
use std::time::Duration;

/// The stub: every query costs exactly `cost` on the shared
/// `SimClock`, nothing else. All remaining time in a scenario run is
/// the driver's own dispatch loop.
struct StubModel {
    clock: SimClock,
    cost: Duration,
}

impl ServeModel for StubModel {
    fn benchmark(&self) -> BenchmarkId {
        BenchmarkId::Recommendation
    }

    fn serve(&mut self, _query: u64) {
        self.clock.advance(self.cost);
    }
}

fn bench_server_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("loadgen");
    group.sample_size(20);
    // One full Server scenario: doubling probes to find the SLO
    // ceiling, then bisection — each probe an open arrival loop of at
    // least 128 queries.
    group.bench_function("server_dispatch_stubbed", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            let pacer = SimPacer(clock.clone());
            let telemetry = Telemetry::disabled();
            let driver = LoadGenDriver::new(&clock, &pacer, &telemetry);
            let mut model = StubModel { clock: clock.clone(), cost: Duration::from_micros(800) };
            let config = ScenarioConfig::new(black_box(11), 0.635).with_slo_ms(6.4);
            driver.run(&mut model, Scenario::Server, &config)
        })
    });
    // The same loop with per-query telemetry recording: the gap is the
    // full cost of span/histogram capture on the dispatch path.
    group.bench_function("server_dispatch_stubbed_traced", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            let pacer = SimPacer(clock.clone());
            let telemetry = Telemetry::recording();
            let driver = LoadGenDriver::new(&clock, &pacer, &telemetry);
            let mut model = StubModel { clock: clock.clone(), cost: Duration::from_micros(800) };
            let config = ScenarioConfig::new(black_box(11), 0.635).with_slo_ms(6.4);
            driver.run(&mut model, Scenario::Server, &config)
        })
    });
    // The whole three-scenario sweep over the simulated NCF model —
    // what the CLI demo and the review round-trip integration test run.
    group.bench_function("simulated_sweep_ncf", |b| {
        b.iter(|| {
            simulated_scenario_sweep(
                black_box(BenchmarkId::Recommendation),
                black_box(11),
                &Telemetry::disabled(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_server_dispatch);
criterion_main!(benches);
