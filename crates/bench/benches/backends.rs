//! Criterion benchmarks comparing the `Reference` and `Blocked` tensor
//! backends on the kernels the backend abstraction exists for, plus a
//! whole BertMini training epoch through the harness. The measured
//! ratios are recorded in `BENCH.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};
use mlperf_core::benchmarks::BertBenchmark;
use mlperf_core::harness::Benchmark;
use mlperf_tensor::{BackendKind, Conv2dSpec, TensorRng};
use std::hint::black_box;

/// The GEMM shapes that dominate the suite's training steps:
/// `192x16x16` is BertMini's token-by-hidden projection (batch 16 ×
/// seq 12 rows), `256^3` a square shape big enough to leave L1 and
/// take the Blocked backend's packed-panel path.
fn bench_matmul_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/matmul");
    let mut rng = TensorRng::new(0);
    for (m, k, n) in [(192usize, 16usize, 16usize), (256, 256, 256)] {
        let a = rng.normal(&[m, k], 0.0, 1.0);
        let b = rng.normal(&[k, n], 0.0, 1.0);
        for kind in BackendKind::ALL {
            let a = a.clone().on(kind);
            let b = b.clone().on(kind);
            let id = CriterionId::new(kind.label(), format!("{m}x{k}x{n}"));
            group.bench_with_input(id, &kind, |bch, _| {
                bch.iter(|| black_box(&a).matmul(black_box(&b)))
            });
        }
    }
    group.finish();
}

fn bench_conv_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/conv2d");
    let mut rng = TensorRng::new(1);
    let x = rng.normal(&[4, 8, 12, 12], 0.0, 1.0);
    let w = rng.normal(&[16, 8, 3, 3], 0.0, 0.5);
    let bias = rng.normal(&[16], 0.0, 0.5);
    let spec = Conv2dSpec::new(3, 1, 1);
    for kind in BackendKind::ALL {
        let x = x.clone().on(kind);
        group.bench_function(CriterionId::from_parameter(kind.label()), |b| {
            b.iter(|| black_box(&x).conv2d(black_box(&w), Some(&bias), spec))
        });
    }
    group.finish();
}

/// One full BertMini training epoch (all batches: forward, backward,
/// Adam update) per backend — the epoch time behind the suite's
/// time-to-train scores, and the number the `BENCH.md` speedup table
/// quotes.
fn bench_bert_epoch_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/bert_mini_epoch");
    group.sample_size(10);
    for kind in BackendKind::ALL {
        let mut bench = BertBenchmark::new().with_backend(kind);
        bench.prepare();
        bench.create_model(21);
        group.bench_function(CriterionId::from_parameter(kind.label()), |b| {
            b.iter(|| bench.train_epoch(0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul_backends, bench_conv_backends, bench_bert_epoch_backends);
criterion_main!(benches);
