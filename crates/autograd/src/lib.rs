//! Reverse-mode automatic differentiation over [`mlperf_tensor`].
//!
//! The central type is [`Var`]: a node in a dynamically built computation
//! graph. Operations on `Var`s evaluate eagerly and record a backward
//! closure; calling [`Var::backward`] on a scalar loss walks the graph in
//! reverse topological order and accumulates gradients into every
//! parameter (a `Var` created with [`Var::param`]).
//!
//! # Example
//!
//! ```
//! use mlperf_autograd::Var;
//! use mlperf_tensor::Tensor;
//!
//! let w = Var::param(Tensor::from_slice(&[2.0]));
//! let x = Var::constant(Tensor::from_slice(&[3.0]));
//! let loss = w.mul(&x).square().mean(); // (w*x)^2 = 36, d/dw = 2*w*x^2 = 36
//! loss.backward();
//! assert_eq!(loss.value().item(), 36.0);
//! assert_eq!(w.grad().unwrap().data(), &[36.0]);
//! ```
//!
//! Design notes:
//!
//! - Nodes are reference-counted ([`std::rc::Rc`]); graphs are per-thread
//!   (the benchmark harness runs each training run on its own thread and
//!   builds an independent graph there).
//! - Node ids increase monotonically at creation, and an operation's
//!   parents always exist before it, so *descending id order is a valid
//!   reverse topological order* — `backward` exploits this instead of an
//!   explicit sort.
//! - Operations whose parents are all constants skip recording a
//!   backward closure entirely, so evaluation-only forward passes build
//!   no tape.

#![warn(missing_docs)]

mod check;
mod fused;
mod nnops;
mod ops;
mod var;

pub use check::{check_gradients, numeric_gradient};
pub use var::Var;
