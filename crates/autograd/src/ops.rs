//! Differentiable arithmetic, shape and reduction operations on [`Var`].

use crate::var::Var;
use mlperf_tensor::Tensor;

impl Var {
    /// Elementwise addition with broadcasting.
    pub fn add(&self, rhs: &Var) -> Var {
        let out = &*self.value() + &*rhs.value();
        let (sa, sb) = (self.shape(), rhs.shape());
        Var::from_op(
            out,
            vec![self.clone(), rhs.clone()],
            Box::new(move |g| vec![Some(g.sum_to(&sa)), Some(g.sum_to(&sb))]),
        )
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, rhs: &Var) -> Var {
        let out = &*self.value() - &*rhs.value();
        let (sa, sb) = (self.shape(), rhs.shape());
        Var::from_op(
            out,
            vec![self.clone(), rhs.clone()],
            Box::new(move |g| vec![Some(g.sum_to(&sa)), Some((-g).sum_to(&sb))]),
        )
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, rhs: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let out = &a * &b;
        let (sa, sb) = (self.shape(), rhs.shape());
        Var::from_op(
            out,
            vec![self.clone(), rhs.clone()],
            Box::new(move |g| vec![Some((g * &b).sum_to(&sa)), Some((g * &a).sum_to(&sb))]),
        )
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, rhs: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let out = &a / &b;
        let (sa, sb) = (self.shape(), rhs.shape());
        Var::from_op(
            out,
            vec![self.clone(), rhs.clone()],
            Box::new(move |g| {
                let ga = (g / &b).sum_to(&sa);
                let gb = (-(g * &a) / (&b * &b)).sum_to(&sb);
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        let out = -&*self.value();
        Var::from_op(out, vec![self.clone()], Box::new(|g| vec![Some(-g)]))
    }

    /// Multiplication by a scalar.
    pub fn scale(&self, s: f32) -> Var {
        let out = self.value().scale(s);
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![Some(g.scale(s))]))
    }

    /// Addition of a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        let out = self.value().add_scalar(s);
        Var::from_op(out, vec![self.clone()], Box::new(|g| vec![Some(g.clone())]))
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let a = self.value_clone();
        let out = a.square();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![Some(g * a.scale(2.0))]))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let out = self.value().sqrt();
        let o = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![Some(g * o.scale(2.0).recip())]),
        )
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Var {
        let out = self.value().exp();
        let o = out.clone();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![Some(g * &o)]))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        let a = self.value_clone();
        let out = a.ln();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![Some(g * a.recip())]))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let a = self.value_clone();
        let out = a.relu();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let mask = a.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                vec![Some(g * mask)]
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.value().sigmoid();
        let o = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let ds = o.zip_broadcast(&o, |s, _| s * (1.0 - s));
                vec![Some(g * ds)]
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = self.value().tanh();
        let o = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let dt = o.map(|t| 1.0 - t * t);
                vec![Some(g * dt)]
            }),
        )
    }

    /// Sum of all elements, as a scalar node.
    pub fn sum(&self) -> Var {
        let out = Tensor::scalar(self.value().sum());
        let shape = self.shape();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![Some(Tensor::full(&shape, g.item()))]),
        )
    }

    /// Mean of all elements, as a scalar node.
    pub fn mean(&self) -> Var {
        let n = self.value().len() as f32;
        self.sum().scale(1.0 / n)
    }

    /// Sum along `axis` (keeping the dimension as extent 1 when
    /// `keepdim`).
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Var {
        let out = self.value().sum_axis(axis, keepdim);
        let in_shape = self.shape();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                // Re-insert the axis if it was squeezed, then broadcast.
                let mut gshape = g.shape().to_vec();
                if gshape.len() != in_shape.len() {
                    gshape.insert(axis, 1);
                }
                let g = g.reshape(&gshape);
                vec![Some(g.broadcast_to(&in_shape))]
            }),
        )
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Var {
        let extent = self.shape()[axis] as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / extent)
    }

    /// Reshape (same element count).
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let out = self.value().reshape(shape);
        let in_shape = self.shape();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![Some(g.reshape(&in_shape))]))
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Var {
        let out = self.value().transpose();
        Var::from_op(out, vec![self.clone()], Box::new(|g| vec![Some(g.transpose())]))
    }

    /// Permutes dimensions.
    pub fn permute(&self, perm: &[usize]) -> Var {
        let out = self.value().permute(perm);
        // Inverse permutation for the backward pass.
        let mut inv = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![Some(g.permute(&inv))]))
    }

    /// Matrix multiplication of 2-D nodes.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let out = a.matmul(&b);
        Var::from_op(
            out,
            vec![self.clone(), rhs.clone()],
            Box::new(move |g| vec![Some(g.matmul_abt(&b)), Some(a.matmul_atb(g))]),
        )
    }

    /// Fused affine map `self · rhs + bias` (dense-layer forward) —
    /// numerically identical to `matmul` followed by `add`, in one
    /// kernel pass with no intermediate tensor.
    pub fn matmul_bias(&self, rhs: &Var, bias: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let bias_shape = bias.shape();
        let out = a.matmul_bias(&b, &bias.value());
        Var::from_op(
            out,
            vec![self.clone(), rhs.clone(), bias.clone()],
            Box::new(move |g| {
                vec![Some(g.matmul_abt(&b)), Some(a.matmul_atb(g)), Some(g.sum_to(&bias_shape))]
            }),
        )
    }

    /// Batched matrix multiplication of 3-D nodes.
    pub fn bmm(&self, rhs: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let out = a.bmm(&b);
        Var::from_op(
            out,
            vec![self.clone(), rhs.clone()],
            Box::new(move |g| vec![Some(g.bmm_abt(&b)), Some(a.bmm_atb(g))]),
        )
    }

    /// Narrow along an axis (the gradient scatters back into a
    /// zero-padded tensor of the original shape).
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var {
        let out = self.value().narrow(axis, start, len);
        let in_shape = self.shape();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let mut full = Tensor::zeros(&in_shape);
                scatter_narrow(&mut full, g, axis, start);
                vec![Some(full)]
            }),
        )
    }

    /// Concatenates nodes along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or shapes disagree outside `axis`.
    pub fn concat(vars: &[&Var], axis: usize) -> Var {
        assert!(!vars.is_empty(), "concat of zero vars");
        let values: Vec<Tensor> = vars.iter().map(|v| v.value_clone()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat(&refs, axis);
        let extents: Vec<usize> = values.iter().map(|t| t.shape()[axis]).collect();
        let parents: Vec<Var> = vars.iter().map(|&v| v.clone()).collect();
        Var::from_op(
            out,
            parents,
            Box::new(move |g| {
                let mut grads = Vec::with_capacity(extents.len());
                let mut start = 0;
                for &e in &extents {
                    grads.push(Some(g.narrow(axis, start, e)));
                    start += e;
                }
                grads
            }),
        )
    }

    /// Gathers rows of a 2-D node (embedding lookup). The gradient
    /// scatter-adds into the source rows.
    pub fn gather_rows(&self, indices: &[usize]) -> Var {
        let out = self.value().gather_rows(indices);
        let idx = indices.to_vec();
        let in_shape = self.shape();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let cols = in_shape[1];
                let mut full = Tensor::zeros(&in_shape);
                for (r, &i) in idx.iter().enumerate() {
                    for c in 0..cols {
                        full.data_mut()[i * cols + c] += g.data()[r * cols + c];
                    }
                }
                vec![Some(full)]
            }),
        )
    }

    /// Gathers arbitrary flat elements into a 1-D node; the gradient
    /// scatter-adds back.
    pub fn gather_flat(&self, indices: &[usize]) -> Var {
        let out = self.value().gather_flat(indices);
        let idx = indices.to_vec();
        let in_shape = self.shape();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let mut full = Tensor::zeros(&in_shape);
                for (r, &i) in idx.iter().enumerate() {
                    full.data_mut()[i] += g.data()[r];
                }
                vec![Some(full)]
            }),
        )
    }

    /// Broadcasts to a larger shape (gradient sums back).
    pub fn broadcast_to(&self, dims: &[usize]) -> Var {
        let out = self.value().broadcast_to(dims);
        let in_shape = self.shape();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![Some(g.sum_to(&in_shape))]))
    }
}

/// Writes `src` into `dst` at offset `start` along `axis` (adjoint of
/// narrow).
fn scatter_narrow(dst: &mut Tensor, src: &Tensor, axis: usize, start: usize) {
    let dims = dst.shape().to_vec();
    let src_extent = src.shape()[axis];
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    for o in 0..outer {
        let dst_base = o * dims[axis] * inner + start * inner;
        let src_base = o * src_extent * inner;
        dst.data_mut()[dst_base..dst_base + src_extent * inner]
            .copy_from_slice(&src.data()[src_base..src_base + src_extent * inner]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_tensor::assert_close;

    fn grad_of(loss: &Var, w: &Var) -> Tensor {
        w.zero_grad();
        loss.backward();
        w.grad().expect("gradient present")
    }

    #[test]
    fn add_broadcast_grad_sums() {
        let w = Var::param(Tensor::from_slice(&[1.0, 2.0])); // [2]
        let x = Var::constant(Tensor::ones(&[3, 2]));
        let loss = x.add(&w).sum();
        let g = grad_of(&loss, &w);
        assert_eq!(g.data(), &[3.0, 3.0]);
    }

    #[test]
    fn mul_grad() {
        let a = Var::param(Tensor::from_slice(&[2.0, 3.0]));
        let b = Var::param(Tensor::from_slice(&[5.0, 7.0]));
        let loss = a.mul(&b).sum();
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[5.0, 7.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn div_grad() {
        let a = Var::param(Tensor::from_slice(&[6.0]));
        let b = Var::param(Tensor::from_slice(&[3.0]));
        let loss = a.div(&b).sum();
        loss.backward();
        assert_close(a.grad().unwrap().data(), &[1.0 / 3.0], 1e-6);
        assert_close(b.grad().unwrap().data(), &[-6.0 / 9.0], 1e-6);
    }

    #[test]
    fn matmul_grads() {
        let a = Var::param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = Var::param(Tensor::eye(2));
        let loss = a.matmul(&b).sum();
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0; 4]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn bmm_grads_match_matmul_per_batch() {
        let a = Var::param(Tensor::arange(8, 0.5, 0.25).reshape(&[2, 2, 2]));
        let b = Var::param(Tensor::arange(8, -0.5, 0.5).reshape(&[2, 2, 2]));
        let loss = a.bmm(&b).sum();
        loss.backward();
        let ga = a.grad().unwrap();

        // Compare against independent per-batch matmul graphs.
        for bi in 0..2 {
            let a2 = Var::param(a.value().narrow(0, bi, 1).reshape(&[2, 2]));
            let b2 = Var::constant(b.value().narrow(0, bi, 1).reshape(&[2, 2]));
            let l2 = a2.matmul(&b2).sum();
            l2.backward();
            let expected = a2.grad().unwrap();
            let got = ga.narrow(0, bi, 1).reshape(&[2, 2]);
            assert_close(got.data(), expected.data(), 1e-5);
        }
    }

    #[test]
    fn relu_masks_gradient() {
        let w = Var::param(Tensor::from_slice(&[-1.0, 2.0]));
        let loss = w.relu().sum();
        loss.backward();
        assert_eq!(w.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_grad_peak_at_zero() {
        let w = Var::param(Tensor::from_slice(&[0.0]));
        let loss = w.sigmoid().sum();
        loss.backward();
        assert_close(w.grad().unwrap().data(), &[0.25], 1e-6);
    }

    #[test]
    fn tanh_grad_at_zero_is_one() {
        let w = Var::param(Tensor::from_slice(&[0.0]));
        let loss = w.tanh().sum();
        loss.backward();
        assert_close(w.grad().unwrap().data(), &[1.0], 1e-6);
    }

    #[test]
    fn exp_ln_chain() {
        // loss = ln(exp(w)) = w, gradient 1 everywhere.
        let w = Var::param(Tensor::from_slice(&[0.3, -0.7]));
        let loss = w.exp().ln().sum();
        loss.backward();
        assert_close(w.grad().unwrap().data(), &[1.0, 1.0], 1e-5);
    }

    #[test]
    fn mean_axis_grad_uniform() {
        let w = Var::param(Tensor::ones(&[2, 4]));
        let loss = w.mean_axis(1, false).sum();
        loss.backward();
        assert_close(w.grad().unwrap().data(), &[0.25; 8], 1e-6);
    }

    #[test]
    fn sum_axis_keepdim_grad() {
        let w = Var::param(Tensor::ones(&[2, 3]));
        let loss = w.sum_axis(0, true).sum();
        loss.backward();
        assert_eq!(w.grad().unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn reshape_transpose_roundtrip_grad() {
        let w = Var::param(Tensor::arange(6, 0.0, 1.0).reshape(&[2, 3]));
        let loss = w.transpose().reshape(&[6]).sum();
        loss.backward();
        assert_eq!(w.grad().unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn narrow_grad_zero_padded() {
        let w = Var::param(Tensor::arange(6, 0.0, 1.0).reshape(&[2, 3]));
        let loss = w.narrow(1, 1, 2).sum();
        loss.backward();
        assert_eq!(w.grad().unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_splits_gradient() {
        let a = Var::param(Tensor::ones(&[1, 2]));
        let b = Var::param(Tensor::ones(&[1, 3]));
        let cat = Var::concat(&[&a, &b], 1);
        let loss =
            cat.mul(&Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 5]))).sum();
        loss.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 2.0]);
        assert_eq!(b.grad().unwrap().data(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn gather_rows_scatter_adds() {
        let table = Var::param(Tensor::zeros(&[4, 2]));
        let emb = table.gather_rows(&[1, 1, 3]);
        let loss = emb.sum();
        loss.backward();
        let g = table.grad().unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn gather_flat_scatter_adds() {
        let w = Var::param(Tensor::zeros(&[5]));
        let picked = w.gather_flat(&[0, 0, 4]);
        picked.sum().backward();
        assert_eq!(w.grad().unwrap().data(), &[2.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn permute_grad_inverse() {
        let w = Var::param(Tensor::arange(24, 0.0, 1.0).reshape(&[2, 3, 4]));
        let loss = w.permute(&[2, 0, 1]).sum();
        loss.backward();
        assert_eq!(w.grad().unwrap().data(), &vec![1.0; 24][..]);
    }

    #[test]
    fn broadcast_to_grad_sums_back() {
        let w = Var::param(Tensor::from_slice(&[1.0, 2.0]));
        let loss = w.broadcast_to(&[5, 2]).sum();
        loss.backward();
        assert_eq!(w.grad().unwrap().data(), &[5.0, 5.0]);
    }
}
