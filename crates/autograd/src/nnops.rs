//! Differentiable neural-network operations: convolution, pooling,
//! softmax and the loss functions used across the benchmark suite.

use crate::var::Var;
use mlperf_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d_backward, max_pool2d, max_pool2d_backward, Conv2dSpec,
    Tensor,
};

impl Var {
    /// 2-D convolution (NCHW). `bias` is optional; see
    /// [`Tensor::conv2d`] for shape conventions.
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, spec: Conv2dSpec) -> Var {
        let x = self.value_clone();
        let w = weight.value_clone();
        let out = x.conv2d(&w, bias.map(|b| b.value_clone()).as_ref(), spec);
        let mut parents = vec![self.clone(), weight.clone()];
        let has_bias = bias.is_some();
        if let Some(b) = bias {
            parents.push(b.clone());
        }
        Var::from_op(
            out,
            parents,
            Box::new(move |g| {
                let (gx, gw, gb) = conv2d_backward(&x, &w, g, spec);
                if has_bias {
                    vec![Some(gx), Some(gw), Some(gb)]
                } else {
                    vec![Some(gx), Some(gw)]
                }
            }),
        )
    }

    /// Max pooling over square windows (NCHW).
    pub fn max_pool2d(&self, spec: Conv2dSpec) -> Var {
        let (out, argmax) = max_pool2d(&self.value(), spec);
        let in_shape = self.shape();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![Some(max_pool2d_backward(g, &argmax, &in_shape))]),
        )
    }

    /// Average pooling over square windows (NCHW).
    pub fn avg_pool2d(&self, spec: Conv2dSpec) -> Var {
        let out = avg_pool2d(&self.value(), spec);
        let in_shape = self.shape();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| vec![Some(avg_pool2d_backward(g, &in_shape, spec))]),
        )
    }

    /// Global average pooling: `[n, c, h, w] -> [n, c]`.
    pub fn global_avg_pool(&self) -> Var {
        let s = self.shape();
        assert_eq!(s.len(), 4, "global_avg_pool expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        self.reshape(&[n, c, h * w]).mean_axis(2, false).reshape(&[n, c])
    }

    /// Softmax along the last axis.
    pub fn softmax_last_axis(&self) -> Var {
        let out = self.value().softmax_last_axis();
        let s = out.clone();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                // dx = s * (g - sum(g*s, last axis, keepdim))
                let last = s.ndim() - 1;
                let dot = (g * &s).sum_axis(last, true);
                vec![Some(&s * (g - dot.broadcast_to(g.shape())))]
            }),
        )
    }

    /// Log-softmax along the last axis.
    pub fn log_softmax_last_axis(&self) -> Var {
        let out = self.value().log_softmax_last_axis();
        let softmax = self.value().softmax_last_axis();
        Var::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                let last = softmax.ndim() - 1;
                let gsum = g.sum_axis(last, true);
                vec![Some(g - &softmax * gsum.broadcast_to(g.shape()))]
            }),
        )
    }

    /// Mean cross-entropy between logits `[batch, classes]` and integer
    /// class labels, fused with softmax for numerical stability.
    ///
    /// # Panics
    ///
    /// Panics if the node is not 2-D, `labels.len()` differs from the
    /// batch size, or any label is out of range.
    pub fn cross_entropy_logits(&self, labels: &[usize]) -> Var {
        let s = self.shape();
        assert_eq!(s.len(), 2, "cross_entropy_logits expects [batch, classes]");
        let (batch, classes) = (s[0], s[1]);
        assert_eq!(labels.len(), batch, "label count must equal batch size");
        for &l in labels {
            assert!(l < classes, "label {l} out of range for {classes} classes");
        }
        let logp = self.value().log_softmax_last_axis();
        let mut loss = 0.0;
        for (b, &l) in labels.iter().enumerate() {
            loss -= logp.data()[b * classes + l];
        }
        loss /= batch as f32;
        let softmax = self.value().softmax_last_axis();
        let labels = labels.to_vec();
        Var::from_op(
            Tensor::scalar(loss),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.item() / batch as f32;
                let mut dx = softmax.clone();
                for (b, &l) in labels.iter().enumerate() {
                    dx.data_mut()[b * classes + l] -= 1.0;
                }
                dx.scale_inplace(scale);
                vec![Some(dx)]
            }),
        )
    }

    /// Label-smoothed mean cross-entropy (Szegedy et al., as used by
    /// the Transformer reference): the target distribution is
    /// `(1-ε)·onehot + ε/classes`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Var::cross_entropy_logits`], or if `smoothing` is outside
    /// `[0, 1)`.
    pub fn cross_entropy_logits_smoothed(&self, labels: &[usize], smoothing: f32) -> Var {
        assert!((0.0..1.0).contains(&smoothing), "smoothing must be in [0, 1), got {smoothing}");
        let s = self.shape();
        assert_eq!(s.len(), 2, "cross entropy expects [batch, classes]");
        let (batch, classes) = (s[0], s[1]);
        assert_eq!(labels.len(), batch, "label count must equal batch size");
        for &l in labels {
            assert!(l < classes, "label {l} out of range for {classes} classes");
        }
        let logp = self.value().log_softmax_last_axis();
        let uniform_share = smoothing / classes as f32;
        let mut loss = 0.0;
        for (b, &l) in labels.iter().enumerate() {
            let row = &logp.data()[b * classes..(b + 1) * classes];
            loss -= (1.0 - smoothing) * row[l];
            loss -= uniform_share * row.iter().sum::<f32>();
        }
        loss /= batch as f32;
        let softmax = self.value().softmax_last_axis();
        let labels = labels.to_vec();
        Var::from_op(
            Tensor::scalar(loss),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.item() / batch as f32;
                let mut dx = softmax.clone();
                for (b, &l) in labels.iter().enumerate() {
                    for c in 0..classes {
                        dx.data_mut()[b * classes + c] -= uniform_share;
                    }
                    dx.data_mut()[b * classes + l] -= 1.0 - smoothing;
                }
                dx.scale_inplace(scale);
                vec![Some(dx)]
            }),
        )
    }

    /// Mean binary cross-entropy between logits and {0,1} targets of the
    /// same shape, fused with the sigmoid (stable for large |logits|).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn bce_with_logits(&self, targets: &Tensor) -> Var {
        assert_eq!(&self.shape()[..], targets.shape(), "bce_with_logits shape mismatch");
        let x = self.value_clone();
        let n = x.len() as f32;
        // loss = max(x,0) - x*t + ln(1 + exp(-|x|))
        let mut loss = 0.0;
        for (&xi, &ti) in x.data().iter().zip(targets.data().iter()) {
            loss += xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln();
        }
        loss /= n;
        let t = targets.clone();
        Var::from_op(
            Tensor::scalar(loss),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.item() / n;
                let dx = x.sigmoid().zip_broadcast(&t, |s, t| s - t).scale(scale);
                vec![Some(dx)]
            }),
        )
    }

    /// Mean squared error against a constant target of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&self, target: &Tensor) -> Var {
        assert_eq!(&self.shape()[..], target.shape(), "mse shape mismatch");
        let t = Var::constant(target.clone());
        self.sub(&t).square().mean()
    }

    /// Mean smooth-L1 (Huber, delta = 1) loss against a constant target,
    /// the box-regression loss used by the detection benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn smooth_l1(&self, target: &Tensor) -> Var {
        assert_eq!(&self.shape()[..], target.shape(), "smooth_l1 shape mismatch");
        let x = self.value_clone();
        let n = x.len() as f32;
        let mut loss = 0.0;
        for (&xi, &ti) in x.data().iter().zip(target.data().iter()) {
            let d = xi - ti;
            loss += if d.abs() < 1.0 { 0.5 * d * d } else { d.abs() - 0.5 };
        }
        loss /= n;
        let t = target.clone();
        Var::from_op(
            Tensor::scalar(loss),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.item() / n;
                let dx = x
                    .zip_broadcast(&t, |xi, ti| {
                        let d = xi - ti;
                        if d.abs() < 1.0 {
                            d
                        } else {
                            d.signum()
                        }
                    })
                    .scale(scale);
                vec![Some(dx)]
            }),
        )
    }

    /// Applies a fixed 0/1 mask scaled by `1/keep_prob` — inverted
    /// dropout with an externally generated mask so that randomness
    /// stays under the caller's seed control.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `keep_prob` is not in (0, 1].
    pub fn dropout_mask(&self, mask: &Tensor, keep_prob: f32) -> Var {
        assert!(
            keep_prob > 0.0 && keep_prob <= 1.0,
            "keep_prob must be in (0, 1], got {keep_prob}"
        );
        assert_eq!(&self.shape()[..], mask.shape(), "dropout mask shape mismatch");
        let m = Var::constant(mask.scale(1.0 / keep_prob));
        self.mul(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_tensor::assert_close;

    #[test]
    fn conv2d_grads_flow_to_all_parents() {
        let x = Var::param(Tensor::ones(&[1, 1, 3, 3]));
        let w = Var::param(Tensor::ones(&[1, 1, 3, 3]));
        let b = Var::param(Tensor::zeros(&[1]));
        let y = x.conv2d(&w, Some(&b), Conv2dSpec::new(3, 1, 0));
        y.sum().backward();
        assert!(x.grad().is_some());
        assert_eq!(w.grad().unwrap().data(), &[1.0; 9]);
        assert_eq!(b.grad().unwrap().data(), &[1.0]);
    }

    #[test]
    fn max_pool_grad_routes_to_max() {
        let x = Var::param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        let y = x.max_pool2d(Conv2dSpec::new(2, 2, 0));
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_shape_and_grad() {
        let x = Var::param(Tensor::ones(&[2, 3, 4, 4]));
        let y = x.global_avg_pool();
        assert_eq!(y.shape(), vec![2, 3]);
        y.sum().backward();
        assert_close(&x.grad().unwrap().data()[..4], &[1.0 / 16.0; 4], 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_sums_to_zero() {
        let x = Var::param(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0], &[2, 2]));
        let s = x.softmax_last_axis();
        let picked = s.mul(&Var::constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])));
        picked.sum().backward();
        let g = x.grad().unwrap();
        // Gradient of softmax output w.r.t. logits sums to zero per row.
        assert!((g.data()[0] + g.data()[1]).abs() < 1e-6);
        assert!((g.data()[2] + g.data()[3]).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        // Uniform logits over 4 classes: loss = ln(4).
        let x = Var::param(Tensor::zeros(&[2, 4]));
        let loss = x.cross_entropy_logits(&[0, 3]);
        assert_close(&[loss.value().item()], &[4f32.ln()], 1e-5);
        loss.backward();
        let g = x.grad().unwrap();
        // d/dlogit = (softmax - onehot)/batch = (0.25 - onehot)/2.
        assert_close(&[g.data()[0]], &[(0.25 - 1.0) / 2.0], 1e-5);
        assert_close(&[g.data()[1]], &[0.25 / 2.0], 1e-5);
    }

    #[test]
    fn cross_entropy_perfect_prediction_low_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[1] = 20.0;
        let x = Var::param(logits);
        let loss = x.cross_entropy_logits(&[1]);
        assert!(loss.value().item() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_bad_label_panics() {
        let x = Var::param(Tensor::zeros(&[1, 3]));
        x.cross_entropy_logits(&[3]);
    }

    #[test]
    fn smoothed_ce_reduces_to_plain_at_zero() {
        let x = Var::param(Tensor::from_vec(vec![0.3, -0.5, 1.2, 0.0, 0.7, -2.0], &[2, 3]));
        let plain = x.cross_entropy_logits(&[0, 2]);
        let smoothed0 = x.cross_entropy_logits_smoothed(&[0, 2], 0.0);
        mlperf_tensor::assert_close(&[plain.value().item()], &[smoothed0.value().item()], 1e-6);
    }

    #[test]
    fn smoothed_ce_penalizes_overconfidence() {
        // A saturated correct prediction has near-zero plain CE but
        // positive smoothed CE (the point of label smoothing).
        let mut logits = Tensor::zeros(&[1, 4]);
        logits.data_mut()[1] = 30.0;
        let x = Var::param(logits);
        assert!(x.cross_entropy_logits(&[1]).value().item() < 1e-6);
        assert!(x.cross_entropy_logits_smoothed(&[1], 0.1).value().item() > 0.5);
    }

    #[test]
    fn smoothed_ce_gradient_checks() {
        let mut rng = mlperf_tensor::TensorRng::new(17);
        let x0 = rng.normal(&[3, 5], 0.0, 1.0);
        crate::check_gradients(
            |w| w.cross_entropy_logits_smoothed(&[0, 2, 4], 0.1),
            &x0,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn bce_with_logits_stable_and_correct() {
        let x = Var::param(Tensor::from_slice(&[0.0, 100.0, -100.0]));
        let t = Tensor::from_slice(&[0.5, 1.0, 0.0]);
        let loss = x.bce_with_logits(&t);
        // At logit 0, target 0.5: loss = ln 2. Saturated correct logits: ~0.
        assert_close(&[loss.value().item()], &[2f32.ln() / 3.0], 1e-4);
        loss.backward();
        assert!(x.grad().unwrap().all_finite());
    }

    #[test]
    fn mse_grad() {
        let x = Var::param(Tensor::from_slice(&[1.0, 3.0]));
        let loss = x.mse(&Tensor::from_slice(&[0.0, 0.0]));
        assert_close(&[loss.value().item()], &[5.0], 1e-6);
        loss.backward();
        assert_close(x.grad().unwrap().data(), &[1.0, 3.0], 1e-6);
    }

    #[test]
    fn smooth_l1_quadratic_then_linear() {
        let x = Var::param(Tensor::from_slice(&[0.5, 3.0]));
        let loss = x.smooth_l1(&Tensor::zeros(&[2]));
        let expected = (0.5 * 0.25 + 2.5) / 2.0;
        assert_close(&[loss.value().item()], &[expected], 1e-6);
        loss.backward();
        assert_close(x.grad().unwrap().data(), &[0.25, 0.5], 1e-6);
    }

    #[test]
    fn dropout_mask_scales() {
        let x = Var::param(Tensor::ones(&[4]));
        let mask = Tensor::from_slice(&[1.0, 0.0, 1.0, 0.0]);
        let y = x.dropout_mask(&mask, 0.5);
        assert_eq!(y.value().data(), &[2.0, 0.0, 2.0, 0.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[2.0, 0.0, 2.0, 0.0]);
    }
}
