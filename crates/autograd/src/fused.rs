//! Fused multi-op graph nodes for the Blocked backend.
//!
//! The layer implementations in `mlperf-nn` are written as compositions
//! of primitive [`Var`] ops; on the tiny tensors the miniaturized
//! benchmarks train on, the per-node cost of that composition
//! (allocation, operand clones captured by backward closures, gradient
//! map traffic) dwarfs the arithmetic. The ops here collapse a whole
//! composition into ONE graph node with hand-written forward and
//! backward passes.
//!
//! # Bit-identity contract
//!
//! Each fused op is required to produce *bit-identical* forwards AND
//! gradients to the composition it replaces — the harness asserts that
//! training trajectories match across backends, and f32 trajectories
//! diverge chaotically under any reordering. Every loop below therefore
//! replicates the composed ops' arithmetic element by element in the
//! same order:
//!
//! - reductions accumulate in the same ascending order as
//!   `Tensor::sum_axis`, starting from `+0.0`;
//! - where the composition applies two ops in sequence (e.g. `mul` then
//!   `add`), the fused loop performs two separate rounded operations —
//!   never a fused multiply-add;
//! - where a gradient receives two contributions, they are added in the
//!   same arrival order as the backward pass's descending-id walk;
//! - matrix products reuse the backend GEMM kernels, which are bitwise
//!   interchangeable by construction (see `mlperf-tensor`'s parity
//!   suite); products commuted relative to the composition are exact
//!   because f32 multiplication commutes.
//!
//! The differential tests in `mlperf-nn` (`tests/fused_parity.rs`) hold
//! the fused paths to `to_bits()` equality against the compositions.

use crate::var::Var;
use mlperf_tensor::Tensor;

/// Reorders token-major `[b, t, h*dh]` data into head-major
/// `[b*h, t, dh]` (the `reshape → permute([0,2,1,3]) → reshape` of
/// `split_heads`, as one copy).
fn to_heads(src: &[f32], b: usize, t: usize, h: usize, dh: usize) -> Vec<f32> {
    let d = h * dh;
    let mut out = vec![0.0f32; src.len()];
    for bi in 0..b {
        for hi in 0..h {
            for ti in 0..t {
                let dst = ((bi * h + hi) * t + ti) * dh;
                let s = (bi * t + ti) * d + hi * dh;
                out[dst..dst + dh].copy_from_slice(&src[s..s + dh]);
            }
        }
    }
    out
}

/// Inverse of [`to_heads`]: head-major `[b*h, t, dh]` back to
/// token-major `[b, t, h*dh]`.
fn from_heads(src: &[f32], b: usize, t: usize, h: usize, dh: usize) -> Vec<f32> {
    let d = h * dh;
    let mut out = vec![0.0f32; src.len()];
    for bi in 0..b {
        for hi in 0..h {
            for ti in 0..t {
                let s = ((bi * h + hi) * t + ti) * dh;
                let dst = (bi * t + ti) * d + hi * dh;
                out[dst..dst + dh].copy_from_slice(&src[s..s + dh]);
            }
        }
    }
    out
}

impl Var {
    /// Fused layer normalization over the trailing axis: one graph node
    /// replacing the ~11-node `mean / center / var / normalize / affine`
    /// composition, bit-identical to it in both value and gradients.
    ///
    /// `gamma` and `beta` must be `[d]` where `d` is the trailing
    /// dimension of `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn layer_norm_fused(&self, gamma: &Var, beta: &Var, eps: f32) -> Var {
        let shape = self.shape();
        let d = *shape.last().expect("layer_norm_fused needs at least 1-D input");
        assert_eq!(gamma.shape(), vec![d], "layer_norm_fused gamma shape");
        assert_eq!(beta.shape(), vec![d], "layer_norm_fused beta shape");
        let kind = self.value().backend();
        let inv = 1.0 / d as f32;

        let rows = self.value().len() / d;
        let mut centered = vec![0.0f32; rows * d];
        let mut norm = vec![0.0f32; rows * d];
        let mut denom = vec![0.0f32; rows];
        let mut y = vec![0.0f32; rows * d];
        {
            let x = self.value();
            let xs = x.data();
            let gamma_b = gamma.value();
            let beta_b = beta.value();
            let gd = gamma_b.data();
            let bd = beta_b.data();
            for r in 0..rows {
                let row = &xs[r * d..(r + 1) * d];
                // mean_axis = ascending sum, then scale by 1/d.
                let mut sum = 0.0f32;
                for &v in row {
                    sum += v;
                }
                let mean = sum * inv;
                let cr = &mut centered[r * d..(r + 1) * d];
                for i in 0..d {
                    cr[i] = row[i] - mean;
                }
                let mut sumsq = 0.0f32;
                for &c in cr.iter() {
                    sumsq += c * c;
                }
                let var = sumsq * inv;
                let den = (var + eps).sqrt();
                denom[r] = den;
                let nr = &mut norm[r * d..(r + 1) * d];
                for i in 0..d {
                    nr[i] = cr[i] / den;
                }
                let yr = &mut y[r * d..(r + 1) * d];
                for i in 0..d {
                    // Two rounded ops (mul, then add), like the
                    // composition — not a fused multiply-add.
                    let scaled = nr[i] * gd[i];
                    yr[i] = scaled + bd[i];
                }
            }
        }

        let gamma_data = gamma.value().data().to_vec();
        let out_shape = shape.clone();
        let value = Tensor::from_vec(y, &out_shape).on(kind);
        // `x` appears TWICE as a parent: the composition delivers two
        // separate gradient contributions to it (one through the
        // centering subtraction, one through the mean), and when `x`
        // has other consumers (e.g. a residual connection) the
        // accumulation order `(g_prior + A) + B` is not associative
        // with a pre-summed `g_prior + (A + B)`. Returning the two
        // pieces separately replays the composition's arrival order
        // bit for bit.
        Var::from_op(
            value,
            vec![self.clone(), self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g| {
                let gs = g.data();
                // Reductions over the leading axes must reproduce
                // `sum_to`'s axis-by-axis summation tree, so they go
                // through the real tensor ops.
                let g_beta = g.sum_to(&[d]);
                let mut prod = vec![0.0f32; gs.len()];
                for i in 0..gs.len() {
                    prod[i] = gs[i] * norm[i];
                }
                let g_gamma = Tensor::from_vec(prod, &out_shape).on(kind).sum_to(&[d]);

                // First contribution to `x`: the accumulated centered
                // gradient passed through the subtraction's identity.
                let mut gx_a = vec![0.0f32; gs.len()];
                // Second contribution: the mean chain, broadcast back.
                let mut gx_b = vec![0.0f32; gs.len()];
                for r in 0..rows {
                    let gr = &gs[r * d..(r + 1) * d];
                    let cr = &centered[r * d..(r + 1) * d];
                    let den = denom[r];
                    let dd = den * den;
                    let gxr = &mut gx_a[r * d..(r + 1) * d];
                    // div backward: centered's first contribution and
                    // the ascending-sum reduction onto denom.
                    let mut g_denom = 0.0f32;
                    for i in 0..d {
                        let g_norm = gr[i] * gamma_data[i];
                        gxr[i] = g_norm / den;
                        g_denom += -(g_norm * cr[i]) / dd;
                    }
                    // sqrt → add_scalar (identity) → mean scale.
                    let g_veps = g_denom * (1.0 / (2.0 * den));
                    let g_sq_s = g_veps * inv;
                    // square backward arrives second at `centered`
                    // (descending-id order: div before square), then
                    // sub backward reduces -g_centered onto the mean.
                    let mut g_mean = 0.0f32;
                    for i in 0..d {
                        let g_c2 = g_sq_s * (2.0 * cr[i]);
                        gxr[i] += g_c2;
                        g_mean += -gxr[i];
                    }
                    let g_x2 = g_mean * inv;
                    for i in 0..d {
                        gx_b[r * d + i] = g_x2;
                    }
                }
                vec![
                    Some(Tensor::from_vec(gx_a, &out_shape).on(kind)),
                    Some(Tensor::from_vec(gx_b, &out_shape).on(kind)),
                    Some(g_gamma),
                    Some(g_beta),
                ]
            }),
        )
    }

    /// Fused scaled-dot-product attention core: one graph node covering
    /// everything between the q/k/v projections and the output
    /// projection (head split, `q·kᵀ`, scale, optional mask, softmax,
    /// `attn·v`, head merge) — bit-identical to the ~16-node
    /// composition in value and gradients.
    ///
    /// `q` is `[b, tq, d]`, `k`/`v` are `[b, tk, d]`, `mask` (if any)
    /// is `[tq, tk]`, and `d` must be divisible by `heads`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn attention_core(q: &Var, k: &Var, v: &Var, mask: Option<&Tensor>, heads: usize) -> Var {
        let qs = q.shape();
        let ks = k.shape();
        assert_eq!(qs.len(), 3, "attention_core expects [b, t, d] query, got {qs:?}");
        let (b, tq, d) = (qs[0], qs[1], qs[2]);
        let tk = ks[1];
        assert_eq!(ks, vec![b, tk, d], "attention_core key shape");
        assert_eq!(v.shape(), vec![b, tk, d], "attention_core value shape");
        assert_eq!(d % heads, 0, "model dim {d} not divisible by {heads} heads");
        let h = heads;
        let dh = d / h;
        let kind = q.value().backend();
        let inv_sqrt = 1.0 / (dh as f32).sqrt();

        let qh =
            Tensor::from_vec(to_heads(q.value().data(), b, tq, h, dh), &[b * h, tq, dh]).on(kind);
        let kh =
            Tensor::from_vec(to_heads(k.value().data(), b, tk, h, dh), &[b * h, tk, dh]).on(kind);
        let vh =
            Tensor::from_vec(to_heads(v.value().data(), b, tk, h, dh), &[b * h, tk, dh]).on(kind);
        // q·kᵀ via the transposed-GEMM kernel ≡ bmm against a permuted
        // key (bitwise, per the backend parity suite), then the same
        // scale → mask-add op order as the composition.
        let mut scores = qh.bmm_abt(&kh).scale(inv_sqrt);
        if let Some(m) = mask {
            assert_eq!(m.shape(), &[tq, tk], "mask must be [t_q, t_k]");
            scores = &scores + m;
        }
        let attn = scores.softmax_last_axis();
        let ctx = attn.bmm(&vh);
        let merged = Tensor::from_vec(from_heads(ctx.data(), b, tq, h, dh), &[b, tq, d]).on(kind);

        Var::from_op(
            merged,
            vec![q.clone(), k.clone(), v.clone()],
            Box::new(move |g| {
                let g_ctx =
                    Tensor::from_vec(to_heads(g.data(), b, tq, h, dh), &[b * h, tq, dh]).on(kind);
                let g_attn = g_ctx.bmm_abt(&vh);
                let g_vh = attn.bmm_atb(&g_ctx);

                // Softmax backward, row-wise: dot = Σ g·s ascending,
                // then s · (g − dot) — exactly the composed
                // `(g*s).sum_axis` / broadcast-subtract / multiply.
                let a = attn.data();
                let ga = g_attn.data();
                let mut g_scores = vec![0.0f32; ga.len()];
                for r in 0..b * h * tq {
                    let ar = &a[r * tk..(r + 1) * tk];
                    let gr = &ga[r * tk..(r + 1) * tk];
                    let mut dot = 0.0f32;
                    for i in 0..tk {
                        dot += gr[i] * ar[i];
                    }
                    let out = &mut g_scores[r * tk..(r + 1) * tk];
                    for i in 0..tk {
                        out[i] = ar[i] * (gr[i] - dot);
                    }
                }
                // Mask-add backward is the identity; scale backward
                // scales by the same factor.
                for vsc in g_scores.iter_mut() {
                    *vsc *= inv_sqrt;
                }
                let g_s0 = Tensor::from_vec(g_scores, &[b * h, tq, tk]).on(kind);

                // g_qh = g_s0 · kh  (≡ composed bmm_abt against the
                // permuted key); g_kh = g_s0ᵀ · qh (≡ composed
                // `qh.bmm_atb(g_s0)` then inverse permute — products
                // commuted, sums in the same ascending order).
                let g_qh = g_s0.bmm(&kh);
                let g_kh = g_s0.bmm_atb(&qh);

                vec![
                    Some(
                        Tensor::from_vec(from_heads(g_qh.data(), b, tq, h, dh), &[b, tq, d])
                            .on(kind),
                    ),
                    Some(
                        Tensor::from_vec(from_heads(g_kh.data(), b, tk, h, dh), &[b, tk, d])
                            .on(kind),
                    ),
                    Some(
                        Tensor::from_vec(from_heads(g_vh.data(), b, tk, h, dh), &[b, tk, d])
                            .on(kind),
                    ),
                ]
            }),
        )
    }
}
