//! The [`Var`] graph node and the backward pass.

use mlperf_tensor::Tensor;
use std::cell::{Ref, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// The backward closure of an operation: maps the gradient flowing into
/// the node to one optional gradient per parent (in parent order).
/// `None` means "no gradient for this parent" (e.g. integer-indexed
/// inputs).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Option<Tensor>>>;

pub(crate) struct Recorded {
    pub parents: Vec<Var>,
    pub backward: BackwardFn,
}

pub(crate) struct VarInner {
    id: u64,
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    /// True for trainable leaves and for any node derived from one.
    requires_grad: bool,
    op: Option<Recorded>,
}

/// A node in the autograd graph: an eagerly computed tensor plus,
/// when gradient tracking is active, the recipe to backpropagate
/// through the operation that produced it.
///
/// Cloning a `Var` is cheap (reference count bump) and refers to the
/// *same* node.
#[derive(Clone)]
pub struct Var {
    pub(crate) inner: Rc<VarInner>,
}

impl Var {
    fn make(value: Tensor, requires_grad: bool, op: Option<Recorded>) -> Var {
        Var {
            inner: Rc::new(VarInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                op,
            }),
        }
    }

    /// Creates a trainable leaf. Gradients accumulate into it across
    /// backward passes until [`Var::zero_grad`].
    pub fn param(value: Tensor) -> Var {
        Var::make(value, true, None)
    }

    /// Creates a non-trainable leaf (input data, targets, masks).
    pub fn constant(value: Tensor) -> Var {
        Var::make(value, false, None)
    }

    /// Records the result of an operation over `parents`.
    ///
    /// If no parent requires gradients the tape entry is elided and the
    /// result is a plain constant.
    pub(crate) fn from_op(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        let requires = parents.iter().any(|p| p.inner.requires_grad);
        if requires {
            Var::make(value, true, Some(Recorded { parents, backward }))
        } else {
            Var::make(value, false, None)
        }
    }

    /// Unique id of this node (monotonically increasing with creation).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Borrows the node's value.
    ///
    /// # Panics
    ///
    /// Panics if the value is currently mutably borrowed (only possible
    /// during [`Var::update_value`]).
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.inner.value.borrow()
    }

    /// Clones the node's value out.
    pub fn value_clone(&self) -> Tensor {
        self.inner.value.borrow().clone()
    }

    /// The shape of the node's value.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.value.borrow().shape().to_vec()
    }

    /// Replaces the value of a leaf in place (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-leaf node (that would silently
    /// invalidate recorded backward closures) or if the new shape
    /// differs.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        assert!(self.inner.op.is_none(), "update_value is only valid on leaf nodes");
        let mut v = self.inner.value.borrow_mut();
        let shape_before = v.shape().to_vec();
        f(&mut v);
        assert_eq!(v.shape(), &shape_before[..], "update_value must preserve shape");
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Detaches the value from the graph as a fresh constant.
    pub fn detach(&self) -> Var {
        Var::constant(self.value_clone())
    }

    /// Runs backpropagation from this node, accumulating gradients into
    /// every reachable leaf created with [`Var::param`].
    ///
    /// # Panics
    ///
    /// Panics if the node is not scalar (one element). Use
    /// [`Var::backward_with`] to seed a non-scalar output.
    pub fn backward(&self) {
        let n = self.value().len();
        assert_eq!(n, 1, "backward() requires a scalar loss, got {n} elements");
        let seed = Tensor::ones(&self.shape());
        self.backward_with(seed);
    }

    /// Runs backpropagation seeding this node's gradient with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed`'s shape differs from the node's value shape.
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(seed.shape(), &self.shape()[..], "backward seed shape mismatch");
        if !self.inner.requires_grad {
            return;
        }
        // Gather all reachable grad-requiring nodes. Descending id order
        // is a valid reverse topological order (parents precede
        // children at creation time).
        let mut reachable: HashMap<u64, Var> = HashMap::new();
        let mut stack = vec![self.clone()];
        while let Some(v) = stack.pop() {
            if !v.inner.requires_grad || reachable.contains_key(&v.inner.id) {
                continue;
            }
            if let Some(op) = &v.inner.op {
                for p in &op.parents {
                    stack.push(p.clone());
                }
            }
            reachable.insert(v.inner.id, v);
        }
        let mut order: Vec<u64> = reachable.keys().copied().collect();
        order.sort_unstable_by(|a, b| b.cmp(a));

        let mut grads: HashMap<u64, Tensor> = HashMap::new();
        grads.insert(self.inner.id, seed);
        for id in order {
            let node = &reachable[&id];
            let Some(grad) = grads.remove(&id) else {
                continue;
            };
            match &node.inner.op {
                None => {
                    // Trainable leaf: accumulate.
                    let mut slot = node.inner.grad.borrow_mut();
                    match slot.as_mut() {
                        Some(existing) => existing.axpy(1.0, &grad),
                        None => *slot = Some(grad),
                    }
                }
                Some(op) => {
                    let parent_grads = (op.backward)(&grad);
                    assert_eq!(
                        parent_grads.len(),
                        op.parents.len(),
                        "backward closure returned wrong arity"
                    );
                    for (p, g) in op.parents.iter().zip(parent_grads) {
                        let Some(g) = g else { continue };
                        if !p.inner.requires_grad {
                            continue;
                        }
                        debug_assert_eq!(
                            g.shape(),
                            &p.shape()[..],
                            "gradient shape mismatch for parent {}",
                            p.inner.id
                        );
                        grads.entry(p.inner.id).and_modify(|acc| acc.axpy(1.0, &g)).or_insert(g);
                    }
                }
            }
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.inner.id)
            .field("requires_grad", &self.inner.requires_grad)
            .field("value", &*self.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_accumulates_across_backwards() {
        let w = Var::param(Tensor::from_slice(&[1.0, 2.0]));
        let loss = w.sum();
        loss.backward();
        loss.backward();
        assert_eq!(w.grad().unwrap().data(), &[2.0, 2.0]);
        w.zero_grad();
        assert!(w.grad().is_none());
    }

    #[test]
    fn constants_build_no_tape() {
        let a = Var::constant(Tensor::from_slice(&[1.0]));
        let b = Var::constant(Tensor::from_slice(&[2.0]));
        let c = a.add(&b);
        assert!(!c.requires_grad());
        assert!(c.inner.op.is_none());
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // loss = w + w ; dloss/dw = 2
        let w = Var::param(Tensor::scalar(3.0));
        let loss = w.add(&w);
        loss.backward();
        assert_eq!(w.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn shared_subexpression() {
        // y = w*w; loss = y + y = 2w^2; d/dw = 4w = 12
        let w = Var::param(Tensor::scalar(3.0));
        let y = w.mul(&w);
        let loss = y.add(&y);
        loss.backward();
        assert_eq!(w.grad().unwrap().item(), 12.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_on_vector_panics() {
        let w = Var::param(Tensor::from_slice(&[1.0, 2.0]));
        w.backward();
    }

    #[test]
    fn update_value_preserves_graph_leaves() {
        let w = Var::param(Tensor::from_slice(&[1.0]));
        w.update_value(|t| t.data_mut()[0] = 5.0);
        assert_eq!(w.value().data(), &[5.0]);
    }

    #[test]
    #[should_panic(expected = "leaf nodes")]
    fn update_value_on_derived_panics() {
        let w = Var::param(Tensor::scalar(1.0));
        let y = w.add(&w);
        y.update_value(|_| {});
    }

    #[test]
    fn detach_stops_gradient() {
        let w = Var::param(Tensor::scalar(2.0));
        let y = w.mul(&w).detach();
        let loss = y.mul(&w).sum();
        loss.backward();
        // d/dw (4 * w) = 4, not 3w^2 = 12.
        assert_eq!(w.grad().unwrap().item(), 4.0);
    }

    #[test]
    fn backward_with_seed() {
        let w = Var::param(Tensor::from_slice(&[1.0, 2.0]));
        let y = w.scale(3.0);
        y.backward_with(Tensor::from_slice(&[1.0, 10.0]));
        assert_eq!(w.grad().unwrap().data(), &[3.0, 30.0]);
    }
}
