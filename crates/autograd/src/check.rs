//! Numerical gradient checking, used by this crate's tests and by the
//! model crates to validate their composite layers.

use crate::var::Var;
use mlperf_tensor::Tensor;

/// Central-difference numerical gradient of `f` at `x`.
///
/// `f` must be a pure function of its input tensor.
pub fn numeric_gradient(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(x.shape());
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        grad.data_mut()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
    }
    grad
}

/// Verifies that autograd's gradient of `build` with respect to a
/// parameter initialized at `x` matches the numerical gradient.
///
/// `build` maps a freshly created parameter to a scalar loss node; it is
/// called many times (once per probe), so keep the graph small.
///
/// # Panics
///
/// Panics (with the offending element index) if any component differs by
/// more than `tol`.
pub fn check_gradients(build: impl Fn(&Var) -> Var, x: &Tensor, eps: f32, tol: f32) {
    let w = Var::param(x.clone());
    let loss = build(&w);
    loss.backward();
    let analytic = w.grad().expect("parameter received no gradient");
    let numeric = numeric_gradient(
        |t| {
            let w = Var::param(t.clone());
            build(&w).value().item()
        },
        x,
        eps,
    );
    for i in 0..x.len() {
        let (a, n) = (analytic.data()[i], numeric.data()[i]);
        assert!(
            (a - n).abs() <= tol,
            "gradient mismatch at element {i}: analytic {a} vs numeric {n} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_tensor::{Conv2dSpec, TensorRng};

    #[test]
    fn checks_simple_quadratic() {
        let x = Tensor::from_slice(&[1.0, -2.0, 0.5]);
        check_gradients(|w| w.square().sum(), &x, 1e-3, 1e-2);
    }

    #[test]
    fn checks_composite_mlp_loss() {
        let mut rng = TensorRng::new(3);
        let x = rng.normal(&[4, 3], 0.0, 0.5);
        let input = rng.normal(&[2, 4], 0.0, 1.0);
        check_gradients(
            |w| {
                let inp = Var::constant(input.clone());
                inp.matmul(w).tanh().square().mean()
            },
            &x,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn checks_softmax_cross_entropy() {
        let mut rng = TensorRng::new(5);
        let x = rng.normal(&[3, 4], 0.0, 1.0);
        check_gradients(|w| w.cross_entropy_logits(&[0, 2, 3]), &x, 1e-3, 1e-2);
    }

    #[test]
    fn checks_conv_chain() {
        let mut rng = TensorRng::new(7);
        let w0 = rng.normal(&[2, 1, 3, 3], 0.0, 0.5);
        let input = rng.normal(&[1, 1, 5, 5], 0.0, 1.0);
        check_gradients(
            |w| {
                let x = Var::constant(input.clone());
                x.conv2d(w, None, Conv2dSpec::new(3, 1, 1)).relu().mean()
            },
            &w0,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn checks_bce_and_smooth_l1() {
        let mut rng = TensorRng::new(9);
        let x = rng.normal(&[6], 0.0, 1.0);
        let targets = Tensor::from_slice(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        check_gradients(|w| w.bce_with_logits(&targets), &x, 1e-3, 1e-2);
        let box_targets = rng.normal(&[6], 0.0, 2.0);
        check_gradients(|w| w.smooth_l1(&box_targets), &x, 1e-3, 1e-2);
    }

    #[test]
    fn checks_log_softmax() {
        let mut rng = TensorRng::new(11);
        let x = rng.normal(&[2, 5], 0.0, 1.0);
        let pick = rng.normal(&[2, 5], 0.0, 1.0);
        check_gradients(
            |w| w.log_softmax_last_axis().mul(&Var::constant(pick.clone())).sum(),
            &x,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn checks_pooling() {
        let mut rng = TensorRng::new(13);
        let x = rng.normal(&[1, 2, 4, 4], 0.0, 1.0);
        check_gradients(|w| w.avg_pool2d(Conv2dSpec::new(2, 2, 0)).square().sum(), &x, 1e-3, 1e-2);
    }
}
