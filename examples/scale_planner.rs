//! Domain example: planning system scale with the distributed-training
//! simulator.
//!
//! For the ResNet workload, sweeps system sizes for one vendor in both
//! benchmark rounds and prints the time-to-train curve — showing why
//! "more chips" stops paying off (epoch inflation past the critical
//! batch size, §2.2.2) and how the v0.6 rules (LARS) move the optimum.
//! Also computes the cloud scale metric (§4.2.3) for each system.
//!
//! ```sh
//! cargo run --release --example scale_planner
//! ```

use mlperf_suite::distsim::{
    cloud_scale, simulate_submission, CloudSystemDescription, Round, SimBenchmark, Vendor,
};

fn main() {
    let vendor = &Vendor::fleet()[0];
    let bench = &SimBenchmark::round_comparison_suite()[0]; // ResNet-50
    println!(
        "scale sweep: {} on {} ({} chips max in v0.5 / {} in v0.6)\n",
        bench.name,
        vendor.name,
        vendor.max_chips(Round::V05),
        vendor.max_chips(Round::V06),
    );
    println!(
        "{:>7} {:>13} {:>13} {:>10} {:>12}",
        "chips", "v0.5 (min)", "v0.6 (min)", "v0.6 batch", "cloud scale"
    );
    let mut chips = 8usize;
    while chips <= vendor.max_chips(Round::V06) {
        let v05 = simulate_submission(vendor, Round::V05, bench, chips, 1);
        let v06 = simulate_submission(vendor, Round::V06, bench, chips, 1);
        let desc = CloudSystemDescription {
            host_processors: 8 * chips,
            host_memory_gib: 61.0 * chips as f64,
            accelerators: chips,
            accelerator_weight: 1.0,
        };
        println!(
            "{chips:>7} {:>13} {:>13} {:>10} {:>12.1}",
            v05.map_or("-".into(), |r| format!("{:.1}", r.minutes)),
            v06.as_ref().map_or("-".into(), |r| format!("{:.1}", r.minutes)),
            v06.map_or("-".into(), |r| format!("{}", r.batch)),
            cloud_scale(&desc),
        );
        chips *= 2;
    }
    println!(
        "\nNote how v0.6 keeps improving to larger systems than v0.5: the LARS rule \
         change raises the critical batch size, so large global batches stop \
         inflating the epoch count as quickly."
    );
}
