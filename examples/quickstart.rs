//! Quickstart: time one benchmark to its quality target.
//!
//! Runs the recommendation benchmark (the fastest in the suite) through
//! the time-to-train harness, then prints the result and the first
//! lines of the structured submission log.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mlperf_suite::core::benchmarks::NcfBenchmark;
use mlperf_suite::core::compliance::check_log;
use mlperf_suite::core::harness::run_benchmark;
use mlperf_suite::core::timing::RealClock;

fn main() {
    let mut benchmark = NcfBenchmark::new();
    let clock = RealClock::new();
    let seed = 42;

    println!("running the NCF (recommendation) benchmark, seed {seed}…\n");
    let result = run_benchmark(&mut benchmark, seed, &clock);

    println!("benchmark:      {}", result.benchmark);
    println!("quality target: {}", result.benchmark.spec().quality.value);
    println!("reached:        {}", result.reached_target);
    println!("final quality:  {:.4} (HR@10)", result.quality);
    println!("epochs:         {}", result.epochs);
    println!("time to train:  {:.3}s", result.time_to_train.as_secs_f64());
    println!("excluded time:  {:.3}s (data prep + model creation)", result.excluded.as_secs_f64());

    let issues = check_log(result.log.entries());
    println!("\ncompliance check: {}", if issues.is_empty() { "PASS" } else { "FAIL" });
    for issue in &issues {
        println!("  issue: {issue}");
    }

    println!("\nfirst lines of the submission log:");
    for line in result.log.render().lines().take(6) {
        println!("  {line}");
    }
}
