//! A complete submission workflow, as a submitter would run it:
//!
//! 1. run the required number of timed runs (§3.2.2) for two
//!    benchmarks;
//! 2. aggregate each run set (drop fastest/slowest, mean the rest);
//! 3. validate the hyperparameters against the Closed-division rules
//!    and demonstrate review-period borrowing (§4.1);
//! 4. check every run log for compliance;
//! 5. render the results-table entry (no summary score — §4.2.4);
//! 6. switch sides and run the organization's round pipeline over a
//!    synthetic multi-vendor round: persist it to a disk archive of
//!    `:::MLLOG` files, re-ingest it, quarantine the corrupted bundle,
//!    and publish a leaderboard — all from the archived logs.
//!
//! ```sh
//! cargo run --release --example submission_workflow
//! ```

use mlperf_suite::core::aggregate::{aggregate_runs, RunSummary};
use mlperf_suite::core::benchmarks::{MaskRcnnBenchmark, NcfBenchmark};
use mlperf_suite::core::compliance::check_log;
use mlperf_suite::core::harness::{run_benchmark, Benchmark};
use mlperf_suite::core::report::{
    render_leaderboard, render_results_table, BenchmarkScore, Submission, SystemDescription,
};
use mlperf_suite::core::rules::{
    borrow_hyperparameters, Category, Division, HyperparameterRules, SystemType,
};
use mlperf_suite::core::suite::BenchmarkId;
use mlperf_suite::core::timing::RealClock;
use mlperf_suite::distsim::Round;
use mlperf_suite::submission::{
    leaderboards, run_round, synthetic_round, Fault, RoundArchive, SyntheticRoundSpec,
};
use std::collections::BTreeMap;

fn timed_runs(make: impl Fn() -> Box<dyn Benchmark>, id: BenchmarkId) -> Vec<RunSummary> {
    let runs = id.runs_required();
    println!("  {id}: running {runs} timed runs…");
    (0..runs as u64)
        .map(|seed| {
            let mut bench = make();
            let clock = RealClock::new();
            let result = run_benchmark(bench.as_mut(), seed, &clock);
            let issues = check_log(result.log.entries());
            assert!(issues.is_empty(), "non-compliant log: {issues:?}");
            RunSummary {
                seconds: result.time_to_train.as_secs_f64(),
                reached_target: result.reached_target,
            }
        })
        .collect()
}

fn main() {
    println!("== 1-2. timed runs + aggregation ==");
    let ncf_runs = timed_runs(|| Box::new(NcfBenchmark::new()), BenchmarkId::Recommendation);
    let ncf_score =
        aggregate_runs(BenchmarkId::Recommendation, &ncf_runs).expect("NCF run set aggregates");
    let mask_runs =
        timed_runs(|| Box::new(MaskRcnnBenchmark::new()), BenchmarkId::InstanceSegmentation);
    let mask_score = aggregate_runs(BenchmarkId::InstanceSegmentation, &mask_runs)
        .expect("Mask R-CNN run set aggregates");
    println!("  aggregated NCF score:        {ncf_score:.3}s");
    println!("  aggregated Mask R-CNN score: {mask_score:.3}s");

    println!("\n== 3. hyperparameter rules ==");
    let rules = HyperparameterRules::closed_division(BenchmarkId::Recommendation);
    let reference: BTreeMap<String, f64> = [
        ("learning_rate".to_string(), 0.01),
        ("batch_size".to_string(), 64.0),
        ("negative_samples".to_string(), 2.0),
        ("adam_beta1".to_string(), 0.9),
    ]
    .into();
    let mut ours = reference.clone();
    ours.insert("learning_rate".into(), 0.02); // allowed
    let violations = rules.violations(&reference, &ours);
    println!("  our deltas violate the Closed rules: {violations:?} (empty = compliant)");
    // A rival published a better learning rate during review; borrow it.
    let mut rival = reference.clone();
    rival.insert("learning_rate".into(), 0.03);
    let adopted = borrow_hyperparameters(&rules, &rival, &mut ours);
    println!("  borrowed from rival submission: {adopted:?} -> lr now {}", ours["learning_rate"]);

    println!("\n== 4-5. results table ==");
    let submission = Submission {
        system: SystemDescription {
            submitter: "Example Labs".into(),
            system_name: "example-node-1".into(),
            accelerators: 0,
            accelerator_model: "CPU (reproduction)".into(),
            host_processors: 1,
            software: "mlperf-suite 0.1 (pure Rust)".into(),
        },
        division: Division::Closed,
        category: Category::Research,
        system_type: SystemType::OnPremise,
        scores: vec![
            BenchmarkScore {
                benchmark: BenchmarkId::Recommendation,
                minutes: ncf_score / 60.0,
                runs: ncf_runs.len(),
            },
            BenchmarkScore {
                benchmark: BenchmarkId::InstanceSegmentation,
                minutes: mask_score / 60.0,
                runs: mask_runs.len(),
            },
        ],
    };
    print!("{}", render_results_table(&[submission]));

    println!("\n== 6. the organization's side: a full round, via the archive ==");
    let spec = SyntheticRoundSpec::new(Round::V05, 5)
        .with_fault(Fault::GarbageLine { org: "Borealis".into() });
    let archive_dir =
        std::env::temp_dir().join(format!("mlperf-workflow-archive-{}", std::process::id()));
    let archive = RoundArchive::create(&archive_dir).expect("create round archive");
    archive.write_round(&synthetic_round(&spec)).expect("persist the round");
    let ingest = archive.read_round(Round::V05).expect("re-ingest the round");
    println!("  archived round v0.5 under {}", archive.root().display());
    // The injected garbage line is malformed *on disk* too, so the
    // store flags the damaged file by path — and still hands the
    // bundle to review, which quarantines it below.
    assert!(!ingest.faults.is_empty(), "the corrupted log should be flagged");
    for fault in &ingest.faults {
        println!("  storage fault: {fault}");
    }
    let outcome = run_round(&ingest.submissions);
    println!(
        "  re-ingested {} bundles: {} run sets accepted, {} bundle(s) quarantined",
        outcome.reports.len(),
        outcome.accepted.len(),
        outcome.quarantined.len()
    );
    for report in &outcome.quarantined {
        for (benchmark, diagnostic) in report.diagnostics() {
            println!("  quarantined {} [{benchmark}]: {diagnostic}", report.org);
        }
    }
    let boards = leaderboards(&outcome);
    let board = boards.first().expect("at least one leaderboard");
    let title = format!("\n{} ({} division)", board.benchmark, board.division);
    print!("{}", render_leaderboard(&title, &board.rows()));
    let _ = std::fs::remove_dir_all(&archive_dir);
}
