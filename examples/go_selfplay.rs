//! Domain example: the MiniGo substrate on its own.
//!
//! Plays a full 9×9 game between the engine players, prints the final
//! position and score, then trains the policy/value network on a small
//! batch of games and shows its move-prediction accuracy improving —
//! the raw ingredients behind the suite's reinforcement-learning
//! benchmark (§3.1.4).
//!
//! ```sh
//! cargo run --release --example go_selfplay
//! ```

use mlperf_suite::autograd::Var;
use mlperf_suite::data::{reference_games, GoDataset};
use mlperf_suite::gomini::{
    encode_features, play_game, Board, HeuristicPlayer, MctsPlayer, Move, RandomPlayer,
    FEATURE_PLANES,
};
use mlperf_suite::models::{MiniGoConfig, MiniGoNet};
use mlperf_suite::nn::Module;
use mlperf_suite::optim::{Adam, Optimizer};
use mlperf_suite::tensor::TensorRng;

fn main() {
    // 1. One exhibition game: heuristic engine (Black) vs random (White).
    let mut black = HeuristicPlayer::new(7);
    let mut white = RandomPlayer::new(8);
    let record = play_game(&mut black, &mut white, 9, 7.5, 200);
    println!(
        "exhibition game: {} moves, winner {} by {:.1}",
        record.moves.len(),
        record.winner,
        record.margin.abs()
    );
    // Replay to show the final position.
    let mut board = Board::new(9);
    for &mv in &record.moves {
        board.play(mv).expect("recorded moves replay");
    }
    println!("{board}");
    let legal = board.legal_moves().len();
    println!("legal moves remaining: {legal}; captures (B, W): {:?}\n", board.captures());
    let _ = Move::Pass; // (see `Move` for the move representation)

    // 2. Supervised training on engine games.
    let train_games = reference_games(6, 9, 1001);
    let eval_games = reference_games(3, 9, 9999);
    let train = GoDataset::from_games(&train_games);
    let eval = GoDataset::from_games(&eval_games);
    println!(
        "training on {} positions from {} games; evaluating on {} held-out positions",
        train.len(),
        train_games.len(),
        eval.len()
    );
    let mut rng = TensorRng::new(0);
    let net = std::rc::Rc::new(MiniGoNet::new(MiniGoConfig::default(), &mut rng));
    let mut opt = Adam::with_defaults(net.params());
    println!("move-match accuracy before training: {:.3}", net.move_match_accuracy(&eval));
    let indices: Vec<usize> = (0..train.len()).collect();
    for round in 1..=6 {
        for chunk in indices.chunks(32) {
            let (features, moves, outcomes) = train.batch(chunk);
            opt.zero_grad();
            net.loss(&features, &moves, &outcomes).backward();
            opt.step(0.005);
        }
        println!("after pass {round}: move-match accuracy {:.3}", net.move_match_accuracy(&eval));
    }

    // 3. AlphaGo-style search: MCTS with the trained policy as prior.
    //    (The MiniGo reference interleaves exactly this search with
    //    training — §3.1.4's "many forward passes … to generate
    //    actions".)
    let prior_net = std::rc::Rc::clone(&net);
    let mut searcher = MctsPlayer::new(11, 60).with_prior(Box::new(move |board: &Board| {
        let feats = mlperf_suite::tensor::Tensor::from_vec(
            encode_features(board),
            &[1, FEATURE_PLANES, board.size(), board.size()],
        );
        let (policy, _) = prior_net.forward(&Var::constant(feats));
        let dist = policy.value().softmax_last_axis().into_vec();
        dist
    }));
    let mut opening = Board::new(9);
    let dist = searcher.analyze(&opening);
    println!(
        "
network-guided MCTS opening (top 3 by visits):"
    );
    for (mv, visits) in dist.iter().take(3) {
        println!("  {mv:?}: {visits} visits");
    }
    opening.play(dist[0].0).expect("searched move is legal");
}
